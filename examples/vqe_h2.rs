//! VQE scenario (paper Sec. IV-C): estimate the H2 ground-state energy
//! with Pauli-grouped simultaneous measurement, running all measurement
//! circuits in parallel on a model of IBM Q 65 Manhattan.
//!
//! ```text
//! cargo run --release -p qucp-bench --example vqe_h2
//! ```

use qucp_core::strategy;
use qucp_device::ibm;
use qucp_vqe::{h2_hamiltonian, run_h2_experiment, VqeExperiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = ibm::manhattan();
    let h = h2_hamiltonian();
    println!("H2 at 0.735 A, parity-mapped to {} qubits:", h.num_qubits());
    for (p, c) in h.terms() {
        println!("  {c:+.6} * {p}");
    }
    println!(
        "commuting groups: {} (naive measurement would need {} circuits per point)\n",
        h.commuting_groups().len(),
        h.terms().len()
    );

    let exp = VqeExperiment {
        theta_points: 8,
        reps: 2,
        shots: 4096,
        seed: 42,
        strategy: strategy::qucp(4.0),
    };
    let report = run_h2_experiment(&device, &exp)?;

    println!("theta      E(simulator)  E(PG)     E(QuCP+PG)");
    for p in &report.points {
        println!(
            "{:>+6.3}    {:>10.4}  {:>8.4}  {:>10.4}",
            p.theta, p.energy_sim, p.energy_pg, p.energy_parallel
        );
    }
    println!();
    println!("exact ground energy : {:.5} Ha", report.exact);
    println!(
        "PG       : E_min {:.5}  dE_theory {:.1}%  throughput {:.1}%",
        report.pg_min,
        report.delta_theory_pg(),
        100.0 * report.pg_throughput
    );
    println!(
        "QuCP+PG  : E_min {:.5}  dE_theory {:.1}%  throughput {:.1}%  ({} circuits at once)",
        report.parallel_min,
        report.delta_theory_parallel(),
        100.0 * report.parallel_throughput,
        report.nc
    );
    Ok(())
}
