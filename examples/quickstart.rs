//! Quickstart: run two benchmark circuits *simultaneously* on a model of
//! IBM Q 27 Toronto with the QuCP crosstalk-aware policy, and inspect
//! fidelity, throughput and runtime gain. The 8192-shot trajectory
//! loops themselves run shot-sharded across the host's cores
//! (deterministic in the shard count, independent of the core count)
//! on the survival-skip kernel, which samples clean shots from a
//! cached alias table instead of replaying every gate.
//!
//! ```text
//! cargo run --release -p qucp-bench --example quickstart
//! ```

use qucp_circuit::library;
use qucp_core::{execute_parallel, strategy, ParallelConfig};
use qucp_device::ibm;
use qucp_sim::{ExecutionConfig, ShotParallelism, TrajectoryKernel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A NISQ device model: topology + calibration + crosstalk.
    let device = ibm::toronto();
    println!(
        "device: {} ({} qubits, {} links)",
        device.name(),
        device.num_qubits(),
        device.topology().num_links()
    );

    // Two programs from the paper's Table II benchmark suite.
    let programs = vec![
        library::by_name("fredkin").unwrap().circuit(),
        library::by_name("adder").unwrap().circuit(),
    ];
    for p in &programs {
        println!("program: {p}");
    }

    // QuCP with the paper's σ = 4: crosstalk-aware partitioning with no
    // characterization overhead. Each program's 8192 shots split into 8
    // deterministic shards executed on all available cores, and each
    // shot runs on the fast survival-skip kernel (counts stay a pure
    // function of seed, shards, and kernel).
    let outcome = execute_parallel(
        &device,
        &programs,
        &strategy::qucp(4.0),
        &ParallelConfig {
            execution: ExecutionConfig::default()
                .with_shots(8192)
                .with_parallelism(ShotParallelism::sharded(8))
                .with_kernel(TrajectoryKernel::SurvivalSkip),
            optimize: true,
        },
    )?;

    println!();
    for r in &outcome.programs {
        println!(
            "{:<10} partition {:?}  swaps {}  PST {}  JSD {:.3}",
            r.name,
            r.partition,
            r.swap_count,
            r.pst.map_or("-".into(), |p| format!("{p:.3}")),
            r.jsd,
        );
    }
    println!();
    println!("hardware throughput : {:.1}%", 100.0 * outcome.throughput);
    println!(
        "cross-program CNOT conflicts suffered: {}",
        outcome.conflict_count
    );
    println!(
        "runtime: {:.0} ns merged vs {:.0} ns serial ({:.1}x reduction)",
        outcome.makespan,
        outcome.serial_runtime,
        outcome.runtime_reduction()
    );
    Ok(())
}
