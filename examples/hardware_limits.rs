//! Hardware-limits scenario (paper Sec. IV-B / Fig. 4): how many copies
//! of a circuit can IBM Q 65 Manhattan run at once before fidelity
//! collapses? Sweeps the fidelity threshold that gates admission.
//!
//! ```text
//! cargo run --release -p qucp-bench --example hardware_limits
//! ```

use qucp_circuit::library;
use qucp_core::{efs_difference, strategy, threshold_sweep, ParallelConfig};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = ibm::manhattan();
    let circuit = library::by_name("4mod5-v1_22").unwrap().circuit();
    let strat = strategy::qucp(4.0);
    println!("circuit: {circuit}");
    println!(
        "device : {} ({} qubits)\n",
        device.name(),
        device.num_qubits()
    );

    // EFS-estimated fidelity cost of each parallelism level.
    println!("copies  estimated fidelity difference (EFS)");
    for k in 1..=6 {
        let d = efs_difference(&device, &circuit, k, &strat)?;
        println!("{k:>6}  {d:.4}");
    }

    // Thresholds spanning the admission range.
    let thresholds = [0.0, 0.01, 0.03, 0.05, 0.08, 0.50];
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default().with_shots(4096),
        optimize: true,
    };
    let points = threshold_sweep(&device, &circuit, &thresholds, 6, &strat, &cfg)?;

    println!("\nthreshold  copies  throughput  avg PST");
    for p in &points {
        println!(
            "{:>9.3}  {:>6}  {:>9.1}%  {:>7.3}",
            p.threshold,
            p.parallel_count,
            100.0 * p.throughput,
            p.mean_pst.unwrap_or(f64::NAN)
        );
    }
    println!("\nPick the threshold where the PST you can tolerate meets the");
    println!("throughput you need — the paper finds the knee near 38% throughput.");
    Ok(())
}
