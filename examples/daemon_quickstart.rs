//! Daemon quickstart: run `qucpd` on a unix socket in a temp dir,
//! submit a small skewed workload through the blocking [`Client`], and
//! print the final [`ServiceReport`].
//!
//! ```sh
//! cargo run --release --example daemon_quickstart
//! ```
//!
//! The daemon here is spawned in process via [`Daemon::spawn_unix`] —
//! the same accept loop, connection threads and wall-clock driver the
//! standalone `qucpd` binary runs — so the example is a faithful,
//! self-contained client/server round trip.

use std::time::Duration;

use qucp_daemon::{Client, Daemon, DaemonConfig};
use qucp_device::ibm;
use qucp_runtime::{skewed_jobs, JobRequest, Service};

fn main() {
    let socket = std::env::temp_dir().join(format!("qucpd-example-{}.sock", std::process::id()));

    // A two-device fleet with the paper's default QuCP strategy; the
    // wall-clock driver folds real elapsed time into tick/advance_drift
    // every 2 ms.
    let service = Service::builder()
        .device(ibm::melbourne())
        .device(ibm::toronto())
        .max_parallel(3)
        .default_shots(128)
        .seed(7)
        .build()
        .expect("build service");
    let handle = Daemon::spawn_unix(
        &socket,
        service,
        DaemonConfig {
            driver_cadence: Some(Duration::from_millis(2)),
        },
    )
    .expect("bind daemon socket");
    println!("qucpd listening on {}", socket.display());

    let mut client = Client::connect_unix(&socket).expect("connect");
    println!("negotiated protocol version {}", client.version());

    // A skewed workload: mostly small circuits plus periodic wide ones.
    let jobs: Vec<JobRequest> = skewed_jobs(8, 12, 400.0, 128, 0xC10D)
        .iter()
        .map(JobRequest::from_job)
        .collect();
    let submitted = jobs.len();
    let mut tickets = Vec::with_capacity(submitted);
    for job in jobs {
        let ticket = client.submit(job).expect("submit");
        println!("submitted job {} (seq {})", ticket.id, ticket.seq);
        tickets.push(ticket);
    }

    // Ticket-level retrieval (protocol v2): serve everything, then
    // claim each result exactly once. Claims don't evict — the drained
    // report below still carries every job.
    client.tick(f64::INFINITY).expect("tick");
    for &ticket in &tickets {
        let result = client
            .take_result(ticket)
            .expect("take_result")
            .expect("ticket completed by the infinite tick");
        println!(
            "claimed job {:>2} [{}] turnaround {:.1} ns",
            result.job_id, result.result.name, result.turnaround
        );
        // The ticket is spent: a second claim yields nothing.
        assert!(client.take_result(ticket).expect("take_result").is_none());
    }

    // Graceful shutdown: the daemon drains every admitted job, replies
    // with the final report, and exits its accept loop.
    let report = client.shutdown().expect("shutdown");
    handle.join();

    println!("\n=== final ServiceReport ===");
    println!(
        "jobs completed : {} / {submitted}",
        report.job_results.len()
    );
    println!("batches        : {}", report.stats.batches);
    println!("mean waiting   : {:.1} ns", report.stats.mean_waiting);
    println!("mean turnaround: {:.1} ns", report.stats.mean_turnaround);
    println!("makespan       : {:.1} ns", report.stats.makespan);
    for device in &report.per_device {
        println!(
            "  {:<10} {} jobs, {} batches",
            device.device, device.jobs, device.stats.batches
        );
    }
    for result in &report.job_results {
        println!(
            "  job {:>2} [{}] pst={} jsd={:.4}",
            result.job_id,
            result.result.name,
            result
                .result
                .pst
                .map(|p| format!("{p:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            result.result.jsd,
        );
    }

    // The CI smoke step greps this line and the count above.
    assert_eq!(report.job_results.len(), submitted, "no job lost");
    println!("completed-jobs={}", report.job_results.len());
}
