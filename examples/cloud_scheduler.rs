//! Cloud-queue scenario: a burst of small jobs arrives at a shared
//! 27-qubit device (the Sec. I motivation — "it takes several days to
//! get the result on IBM public chips"). Compare dedicated service with
//! multi-programmed service, then run one actual packed batch through
//! the QuCP pipeline to show the fidelity price paid.
//!
//! ```text
//! cargo run --release -p qucp-bench --example cloud_scheduler
//! ```

use qucp_circuit::library;
use qucp_core::queue::{simulate_queue, synthetic_workload};
use qucp_core::{execute_parallel, strategy, ParallelConfig};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- queue-level view -------------------------------------------------
    let jobs = synthetic_workload(100, 7);
    println!("100 queued jobs (2-6 qubits each) on a 27-qubit device\n");
    println!("{:<14} {:>12} {:>12} {:>12}", "mode", "mean wait", "makespan", "throughput");
    for (label, k) in [("dedicated", 1usize), ("pack 2", 2), ("pack 4", 4)] {
        let s = simulate_queue(&jobs, 27, k);
        println!(
            "{label:<14} {:>12.1} {:>12.1} {:>11.1}%",
            s.mean_waiting,
            s.makespan,
            100.0 * s.mean_throughput
        );
    }

    // --- circuit-level view: what one packed batch actually costs ---------
    println!("\nOne packed batch of three users' circuits under QuCP:\n");
    let device = ibm::toronto();
    let programs = vec![
        library::by_name("fredkin").unwrap().circuit(),
        library::by_name("linearsolver").unwrap().circuit(),
        library::by_name("bell").unwrap().circuit(),
    ];
    let batch = execute_parallel(
        &device,
        &programs,
        &strategy::qucp(4.0),
        &ParallelConfig {
            execution: ExecutionConfig::default().with_shots(4096),
            optimize: true,
        },
    )?;
    for r in &batch.programs {
        println!(
            "  {:<14} JSD {:.3}{}",
            r.name,
            r.jsd,
            r.pst.map_or(String::new(), |p| format!("  PST {p:.3}")),
        );
    }
    println!(
        "\nbatch throughput {:.1}%, runtime reduction {:.1}x, conflicts {}",
        100.0 * batch.throughput,
        batch.runtime_reduction(),
        batch.conflict_count
    );
    Ok(())
}
