//! Cloud-queue scenario, four times over: the *analytical* model of
//! Sec. I/II-A (abstract durations), the **event-driven service**
//! runtime serving the same kind of burst through the staged QuCP
//! pipeline (dedicated vs. multi-programmed, same `QueueStats`
//! head-to-head), an **admission-policy shoot-out** on a skewed
//! workload where wide GHZ jobs block the FIFO head of line — the
//! situation `Backfill` and `ShortestJobFirst` exist for — and a
//! **routing shoot-out** on a two-chip fleet whose calibrations differ
//! ~3×, where `CalibrationAware` routing must beat `EarliestFree` on
//! delivered fidelity at bounded turnaround cost — then the streaming
//! side of the same service: per-ticket result claims (`take_result`,
//! exactly-once, drain-invariant) and per-job routing overrides that
//! steer individual submissions without touching the fleet default.
//!
//! ```text
//! cargo run --release -p qucp-bench --example cloud_scheduler
//! ```

use qucp_core::queue::{simulate_queue, synthetic_workload};
use qucp_core::strategy;
use qucp_device::ibm;
use qucp_runtime::{
    skewed_jobs, synthetic_jobs, AdmissionPolicy, Backfill, CalibrationAware, EarliestFree,
    ExecutionMode, Fifo, Job, JobRequest, Service, ServiceReport, ShortestJobFirst,
};

fn serve(
    jobs: &[Job],
    policy: impl AdmissionPolicy + 'static,
    device: qucp_device::Device,
    max_parallel: usize,
) -> Result<(ServiceReport, qucp_runtime::RouteCacheStats), qucp_runtime::RuntimeError> {
    let mut service = Service::builder()
        .device(device)
        .strategy(strategy::qucp(4.0))
        .policy(policy)
        .max_parallel(max_parallel)
        .seed(0x5EED)
        .build()?;
    for job in jobs {
        service.submit(JobRequest::from_job(job))?;
    }
    let report = service.run_until_drained()?;
    let cache = service.route_cache_stats();
    Ok((report, cache))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- analytical queue model -------------------------------------------
    let jobs = synthetic_workload(100, 7);
    println!("Analytical model: 100 queued jobs (2-6 qubits) on a 27-qubit device\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "mode", "mean wait", "makespan", "throughput"
    );
    for (label, k) in [("dedicated", 1usize), ("pack 2", 2), ("pack 4", 4)] {
        let s = simulate_queue(&jobs, 27, k)?;
        println!(
            "{label:<14} {:>12.1} {:>12.1} {:>11.1}%",
            s.mean_waiting,
            s.makespan,
            100.0 * s.mean_throughput
        );
    }

    // --- the real runtime: same story, actually executed -------------------
    println!("\nService runtime (FIFO): 18 library circuits on ibm::toronto()\n");
    let stream = synthetic_jobs(18, 400.0, 1024, 0xC10D);
    println!(
        "{:<14} {:>8} {:>14} {:>14} {:>11} {:>10}",
        "mode", "batches", "mean wait ns", "turnaround ns", "throughput", "mean JSD"
    );
    let mut reports = Vec::new();
    for (label, k) in [("dedicated", 1usize), ("pack 2", 2), ("pack 4", 4)] {
        let (report, _) = serve(&stream, Fifo, ibm::toronto(), k)?;
        let mean_jsd: f64 = report.job_results.iter().map(|r| r.result.jsd).sum::<f64>()
            / report.job_results.len() as f64;
        println!(
            "{label:<14} {:>8} {:>14.0} {:>14.0} {:>10.1}% {:>10.3}",
            report.stats.batches,
            report.stats.mean_waiting,
            report.stats.mean_turnaround,
            100.0 * report.stats.mean_throughput,
            mean_jsd
        );
        reports.push((label, report));
    }

    // --- what one packed batch actually cost -------------------------------
    let (_, packed) = &reports[2];
    let widest = packed
        .batches
        .iter()
        .max_by_key(|b| b.job_ids.len())
        .expect("at least one batch");
    println!(
        "\nWidest batch under 4-way packing: jobs {:?} on {} qubits, {} conflicts",
        widest.job_ids, widest.used_qubits, widest.conflict_count
    );
    for r in packed
        .job_results
        .iter()
        .filter(|r| r.batch_index == widest.batch_index)
    {
        println!(
            "  {:<18} JSD {:.3}{}  (waited {:.0} ns)",
            r.result.name,
            r.result.jsd,
            r.result
                .pst
                .map_or(String::new(), |p| format!("  PST {p:.3}")),
            r.waiting,
        );
    }

    let (_, dedicated) = &reports[0];
    println!(
        "\nRuntime turnaround reduction, 4-way over dedicated: {:.2}x",
        dedicated.stats.mean_turnaround / packed.stats.mean_turnaround
    );

    // --- admission-policy comparison on a skewed workload ------------------
    //
    // Every third job is a 13-qubit GHZ chain: on the 15-qubit
    // Melbourne chip it cannot share the device with anything, so under
    // FIFO it stalls every small job queued behind it. Backfill lets
    // the small jobs jump (bounded overtaking); SJF serves them first
    // outright.
    println!("\nAdmission policies, skewed burst (12 jobs, 13q GHZ every 3rd) on melbourne:\n");
    println!(
        "{:<14} {:>8} {:>14} {:>14} {:>11}",
        "policy", "batches", "mean wait ns", "turnaround ns", "throughput"
    );
    let skewed = skewed_jobs(12, 13, 50.0, 512, 7);
    let (fifo, fifo_cache) = serve(&skewed, Fifo, ibm::melbourne(), 3)?;
    let (backfill, backfill_cache) =
        serve(&skewed, Backfill { max_overtakes: 2 }, ibm::melbourne(), 3)?;
    let (sjf, sjf_cache) = serve(&skewed, ShortestJobFirst, ibm::melbourne(), 3)?;
    for (label, report) in [("FIFO", &fifo), ("Backfill", &backfill), ("SJF", &sjf)] {
        println!(
            "{label:<14} {:>8} {:>14.0} {:>14.0} {:>10.1}%",
            report.stats.batches,
            report.stats.mean_waiting,
            report.stats.mean_turnaround,
            100.0 * report.stats.mean_throughput,
        );
    }
    println!(
        "\nBackfill turnaround gain over FIFO: {:.2}x (SJF: {:.2}x)",
        fifo.stats.mean_turnaround / backfill.stats.mean_turnaround,
        fifo.stats.mean_turnaround / sjf.stats.mean_turnaround,
    );

    // The whole-plan cache behind those runs: the skewed burst repeats
    // two circuit shapes, so once each (device, member-shapes) batch
    // has been planned, later batches replay the committed plan instead
    // of re-running partition + mapping + merging.
    println!("\nWhole-plan cache across the policy runs:\n");
    for (label, c) in [
        ("FIFO", &fifo_cache),
        ("Backfill", &backfill_cache),
        ("SJF", &sjf_cache),
    ] {
        let lookups = c.plan_hits + c.plan_misses;
        println!(
            "{label:<14} {:>4} hits {:>4} misses {:>4} entries   {:>5.1}% of batches replayed",
            c.plan_hits,
            c.plan_misses,
            c.plan_entries,
            100.0 * c.plan_hits as f64 / lookups.max(1) as f64,
        );
    }

    // --- routing shoot-out on the skewed two-chip fleet --------------------
    //
    // The fleet pairs ibm::toronto() with a twin whose calibration is
    // ~3x worse across the board (the noisy twin is registered first,
    // so earliest-free ties favour it). EarliestFree splits the load
    // and delivers half the jobs at the noisy chip's fidelity;
    // CalibrationAware scores each candidate by the head circuit's
    // solo-best EFS partition (cached across batches) plus queue
    // pressure, and steers the burst to the good chip.
    println!("\nRouting policies, 18-job burst on [toronto_noisy, toronto]:\n");
    println!(
        "{:<18} {:>10} {:>10} {:>14} {:>12} {:>12}",
        "routing", "mean EFS", "mean JSD", "turnaround ns", "noisy jobs", "good jobs"
    );
    // Serial == concurrent bit-for-bit: routing is deterministic.
    fn shoot<R: qucp_runtime::RoutingPolicy + Copy + 'static>(
        routing: R,
    ) -> qucp_bench::ShootoutOutcome {
        let serial = qucp_bench::routing_shootout(routing, ExecutionMode::Serial);
        let concurrent = qucp_bench::routing_shootout(routing, ExecutionMode::Concurrent);
        assert_eq!(
            serial, concurrent,
            "{} routing must be deterministic",
            concurrent.policy
        );
        concurrent
    }
    let earliest = shoot(EarliestFree);
    let aware = shoot(CalibrationAware::default());
    for o in [&earliest, &aware] {
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>14.0} {:>12} {:>12}",
            o.policy,
            o.mean_efs,
            o.mean_jsd,
            o.mean_turnaround,
            o.per_device_jobs[0].1,
            o.per_device_jobs[1].1,
        );
    }
    assert!(
        aware.mean_efs < earliest.mean_efs && aware.mean_jsd < earliest.mean_jsd,
        "calibration-aware routing must win on delivered fidelity"
    );
    println!(
        "\nCalibrationAware delivered-fidelity win: EFS -{:.1}%, JSD -{:.1}% \
         (turnaround {:.2}x, partition-probe cache {} hits / {} misses)",
        100.0 * (earliest.mean_efs - aware.mean_efs) / earliest.mean_efs,
        100.0 * (earliest.mean_jsd - aware.mean_jsd) / earliest.mean_jsd,
        aware.mean_turnaround / earliest.mean_turnaround,
        aware.cache.hits,
        aware.cache.misses,
    );

    // --- the live fleet: calibration drift flips the chips ------------------
    //
    // The fleet is not frozen: between the two bursts a deterministic
    // seesaw drift anneals the noisy twin to good while the good chip
    // degrades ~3.4x. Epoch-aware cache invalidation re-probes the
    // current calibration and re-routes the second burst; the
    // stale-cache ablation keeps chasing the chip it remembers as good.
    println!("\nCalibration drift (seesaw flip between two 9-job bursts), CalibrationAware:\n");
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "cache mode", "EFS pre-drift", "EFS post-drift", "JSD post-drift", "invalidations"
    );
    let drift_aware = qucp_bench::drift_shootout(
        qucp_runtime::CacheInvalidation::EpochAware,
        ExecutionMode::Concurrent,
    );
    let drift_stale = qucp_bench::drift_shootout(
        qucp_runtime::CacheInvalidation::Never,
        ExecutionMode::Concurrent,
    );
    for (label, o) in [("epoch-aware", &drift_aware), ("stale cache", &drift_stale)] {
        println!(
            "{label:<14} {:>14.4} {:>14.4} {:>14.4} {:>14}",
            o.mean_efs_before, o.mean_efs_after, o.mean_jsd_after, o.cache.invalidated,
        );
    }
    assert!(
        drift_aware.mean_efs_after < drift_stale.mean_efs_after
            && drift_aware.mean_jsd_after < drift_stale.mean_jsd_after,
        "epoch-aware invalidation must win under drift"
    );
    println!(
        "\nEpoch-aware invalidation win on the post-drift burst: EFS -{:.1}%, JSD -{:.1}% \
         ({} epoch bumps, post-drift jobs on annealed twin: {} vs {})",
        100.0 * (drift_stale.mean_efs_after - drift_aware.mean_efs_after)
            / drift_stale.mean_efs_after,
        100.0 * (drift_stale.mean_jsd_after - drift_aware.mean_jsd_after)
            / drift_stale.mean_jsd_after,
        drift_aware.epoch_bumps,
        drift_aware.fresh_jobs_per_device[0].1,
        drift_stale.fresh_jobs_per_device[0].1,
    );

    // --- streaming retrieval + per-job routing overrides --------------------
    //
    // Campaign-style consumers don't wait for the drain: each ticket's
    // result is claimed exactly once as soon as its batch completes.
    // Claims never disturb the final report (the service keeps the
    // canonical copy), and any job may carry its own routing override —
    // here every *odd* job pins CalibrationAware routing for the batch
    // it heads, while even jobs ride the service default.
    println!("\nStreaming retrieval on [toronto_noisy, toronto], per-job routing overrides:\n");
    let mut service = Service::builder()
        .registry(qucp_bench::skewed_fleet())
        .strategy(strategy::qucp(4.0))
        .max_parallel(3)
        .default_shots(256)
        .seed(0x5EED)
        .build()?;
    let mut tickets = Vec::new();
    for (i, job) in synthetic_jobs(8, 400.0, 256, 0xC10D).iter().enumerate() {
        let mut request = JobRequest::from_job(job);
        if i % 2 == 1 {
            request = request.with_routing(qucp_runtime::RoutingChoice::CalibrationAware {
                pressure_per_ns: CalibrationAware::DEFAULT_PRESSURE_PER_NS,
            });
        }
        tickets.push(service.submit(request)?);
    }
    // Drive the clock in slices; claim every ticket the moment its
    // completion is announced.
    let mut claimed = 0usize;
    let mut now = 0.0;
    while claimed < tickets.len() {
        now += 5_000.0;
        for ticket in service.tick(now)? {
            let result = service
                .take_result(&ticket)
                .expect("a completed ticket claims exactly once");
            claimed += 1;
            println!(
                "  claimed job {:>2} [{:<16}] turnaround {:>8.0} ns",
                result.job_id, result.result.name, result.turnaround
            );
            // The ticket is spent; the canonical copy stays for the drain.
            assert!(service.take_result(&ticket).is_none());
        }
    }
    let report = service.run_until_drained()?;
    assert_eq!(
        report.job_results.len(),
        tickets.len(),
        "claims must not evict results from the drained report"
    );
    println!(
        "\nAll {} results claimed mid-stream; drained report still carries {} jobs.",
        claimed,
        report.job_results.len()
    );
    Ok(())
}
