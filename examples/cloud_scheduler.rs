//! Cloud-queue scenario, twice over: first the *analytical* model of
//! Sec. I/II-A (abstract durations), then the **real** `qucp-runtime`
//! batch scheduler serving the same kind of burst — planning every
//! batch through the staged QuCP pipeline, executing batch members
//! concurrently, and reporting the same `QueueStats` for a head-to-head
//! comparison of dedicated vs. multi-programmed service, plus the
//! fidelity price each job actually paid.
//!
//! ```text
//! cargo run --release -p qucp-bench --example cloud_scheduler
//! ```

use qucp_core::queue::{simulate_queue, synthetic_workload};
use qucp_core::strategy;
use qucp_device::ibm;
use qucp_runtime::{synthetic_jobs, BatchScheduler, ExecutionMode, RuntimeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- analytical queue model -------------------------------------------
    let jobs = synthetic_workload(100, 7);
    println!("Analytical model: 100 queued jobs (2-6 qubits) on a 27-qubit device\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "mode", "mean wait", "makespan", "throughput"
    );
    for (label, k) in [("dedicated", 1usize), ("pack 2", 2), ("pack 4", 4)] {
        let s = simulate_queue(&jobs, 27, k)?;
        println!(
            "{label:<14} {:>12.1} {:>12.1} {:>11.1}%",
            s.mean_waiting,
            s.makespan,
            100.0 * s.mean_throughput
        );
    }

    // --- the real runtime: same story, actually executed -------------------
    println!("\nBatch-scheduler runtime: 18 library circuits on ibm::toronto()\n");
    let device = ibm::toronto();
    let stream = synthetic_jobs(18, 400.0, 1024, 0xC10D);
    println!(
        "{:<14} {:>8} {:>14} {:>14} {:>11} {:>10}",
        "mode", "batches", "mean wait ns", "turnaround ns", "throughput", "mean JSD"
    );
    let mut reports = Vec::new();
    for (label, k) in [("dedicated", 1usize), ("pack 2", 2), ("pack 4", 4)] {
        let scheduler = BatchScheduler::new(
            device.clone(),
            strategy::qucp(4.0),
            RuntimeConfig {
                max_parallel: k,
                fidelity_threshold: None,
                seed: 0x5EED,
                optimize: true,
                mode: ExecutionMode::Concurrent,
            },
        );
        let report = scheduler.run(&stream)?;
        let mean_jsd: f64 = report.job_results.iter().map(|r| r.result.jsd).sum::<f64>()
            / report.job_results.len() as f64;
        println!(
            "{label:<14} {:>8} {:>14.0} {:>14.0} {:>10.1}% {:>10.3}",
            report.stats.batches,
            report.stats.mean_waiting,
            report.stats.mean_turnaround,
            100.0 * report.stats.mean_throughput,
            mean_jsd
        );
        reports.push((label, report));
    }

    // --- what one packed batch actually cost -------------------------------
    let (_, packed) = &reports[2];
    let widest = packed
        .batches
        .iter()
        .max_by_key(|b| b.job_ids.len())
        .expect("at least one batch");
    println!(
        "\nWidest batch under 4-way packing: jobs {:?} on {} qubits, {} conflicts",
        widest.job_ids, widest.used_qubits, widest.conflict_count
    );
    for r in packed
        .job_results
        .iter()
        .filter(|r| r.batch_index == widest.batch_index)
    {
        println!(
            "  {:<18} JSD {:.3}{}  (waited {:.0} ns)",
            r.result.name,
            r.result.jsd,
            r.result
                .pst
                .map_or(String::new(), |p| format!("  PST {p:.3}")),
            r.waiting,
        );
    }

    let (_, dedicated) = &reports[0];
    println!(
        "\nRuntime turnaround reduction, 4-way over dedicated: {:.2}x",
        dedicated.stats.mean_turnaround / packed.stats.mean_turnaround
    );
    Ok(())
}
