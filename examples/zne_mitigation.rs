//! Error-mitigation scenario (paper Sec. IV-D): zero-noise extrapolation
//! with the folded circuits executed in one parallel batch via QuCP,
//! reducing the ZNE job overhead to a single execution.
//!
//! ```text
//! cargo run --release -p qucp-bench --example zne_mitigation
//! ```

use qucp_circuit::library;
use qucp_core::strategy;
use qucp_device::ibm;
use qucp_zne::{fold_gates_at_random, run_zne_comparison, scale_ladder, ZneExperiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = ibm::manhattan();
    let circuit = library::by_name("fredkin").unwrap().circuit();
    println!("benchmark: {circuit}");

    // Show the folded ladder.
    for &s in &scale_ladder(4, 0.5) {
        let folded = fold_gates_at_random(&circuit, s, 1);
        println!(
            "  scale {s:.1}: {} gates ({} CNOTs)",
            folded.gate_count(),
            folded.cx_count()
        );
    }

    let exp = ZneExperiment {
        shots: 8192,
        seed: 3,
        strategy: strategy::qucp(4.0),
        ..ZneExperiment::default()
    };
    let out = run_zne_comparison(&device, &circuit, &exp)?;

    println!();
    println!("ideal <Z...Z>                 : {:+.4}", out.ideal);
    println!("absolute error, no mitigation : {:.4}", out.baseline_error);
    println!(
        "absolute error, QuCP+ZNE      : {:.4}  (winner: {}, {} circuits in ONE job)",
        out.parallel_error, out.parallel_factory, out.num_circuits
    );
    println!(
        "absolute error, serial ZNE    : {:.4}  (winner: {}, {} separate jobs)",
        out.independent_error, out.independent_factory, out.num_circuits
    );
    println!(
        "\nQuCP+ZNE cuts the unmitigated error {:.1}x while keeping the job count at 1.",
        out.baseline_error / out.parallel_error.max(1e-9)
    );
    Ok(())
}
