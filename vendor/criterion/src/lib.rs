//! Offline in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset the workspace benches use: [`Criterion`] with
//! `bench_function` / `benchmark_group`, groups with `sample_size`,
//! `bench_function`, `bench_with_input` and `finish`, [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Instead of criterion's statistical analysis it runs a fixed warm-up
//! plus `sample_size` timed iterations and prints mean/min wall-clock
//! time per iteration — enough to compare configurations by eye and to
//! keep `cargo bench` runnable offline.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running one warm-up iteration plus `samples` timed
    /// iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.durations.push(t0.elapsed());
        }
    }
}

fn report(id: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{id:<40} (no samples — Bencher::iter never called)");
        return;
    }
    let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
    let min = durations.iter().min().copied().unwrap_or_default();
    let mut line = String::new();
    let _ = write!(
        line,
        "{id:<40} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
        durations.len()
    );
    println!("{line}");
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            durations: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.durations);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            durations: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.durations);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the stub just returns defaults.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            durations: Vec::new(),
        };
        f(&mut b);
        report(&id.id, &b.durations);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _parent: self,
        }
    }
}

/// Declares a group function running the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
