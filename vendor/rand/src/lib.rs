//! Offline in-tree stand-in for the `rand` crate, **bit-exact** with
//! `rand 0.8.5` for the API subset this workspace uses.
//!
//! The build environment has no registry access, so this vendored crate
//! reimplements the exact algorithms of the upstream stack:
//!
//! * [`StdRng`] is the ChaCha12 generator of `rand_chacha 0.3` with the
//!   same 4-block (64-word) output buffering as `rand_core`'s
//!   `BlockRng`, including its word-straddling `next_u64` rule;
//! * [`SeedableRng::seed_from_u64`] is `rand_core 0.6`'s PCG32-based
//!   seed expansion;
//! * [`Rng::gen_range`] is `rand 0.8.5`'s `UniformInt`
//!   (widening-multiply with zone rejection) and `UniformFloat`
//!   (`[1, 2)` mantissa trick) single-sample paths;
//! * [`Rng::gen_bool`] is the 64-bit fixed-point `Bernoulli`;
//! * [`seq::SliceRandom`] uses upstream's `gen_index` (u32 sampling for
//!   small bounds).
//!
//! Bit-exactness matters because the device calibration and crosstalk
//! models synthesize their data from seeded `StdRng` streams, and many
//! test thresholds were tuned against those exact streams.

/// Core trait: a source of pseudo-random words (subset of
/// `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Deterministically creates a generator from a 64-bit seed using
    /// `rand_core 0.6`'s PCG32 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// The standard generator: ChaCha with 12 rounds, matching
/// `rand 0.8`'s `StdRng` stream exactly.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha key (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14; stream id words are 0).
    counter: u64,
    /// Four ChaCha blocks of buffered output, as `rand_core::BlockRng`
    /// keeps them.
    results: [u32; 64],
    /// Next unread index into `results`; 64 means "buffer exhausted".
    index: usize,
}

impl StdRng {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        StdRng {
            key,
            counter: 0,
            results: [0; 64],
            index: 64,
        }
    }

    /// One 12-round ChaCha block for block counter `n`.
    fn block(&self, n: u64, out: &mut [u32]) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = n as u32;
        state[13] = (n >> 32) as u32;
        // state[14], state[15]: stream id, zero for seed_from_u64.

        let mut w = state;
        #[inline(always)]
        fn quarter(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            w[a] = w[a].wrapping_add(w[b]);
            w[d] = (w[d] ^ w[a]).rotate_left(16);
            w[c] = w[c].wrapping_add(w[d]);
            w[b] = (w[b] ^ w[c]).rotate_left(12);
            w[a] = w[a].wrapping_add(w[b]);
            w[d] = (w[d] ^ w[a]).rotate_left(8);
            w[c] = w[c].wrapping_add(w[d]);
            w[b] = (w[b] ^ w[c]).rotate_left(7);
        }
        for _ in 0..6 {
            // One double round (column + diagonal) per iteration.
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = w[i].wrapping_add(state[i]);
        }
    }

    /// Refills the 4-block buffer, as `rand_chacha` generates batches of
    /// four consecutive blocks.
    fn generate(&mut self) {
        for b in 0..4u64 {
            let mut out = [0u32; 16];
            self.block(self.counter.wrapping_add(b), &mut out);
            self.results[16 * b as usize..16 * (b as usize + 1)].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6: PCG32 expansion of the u64 seed.
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        StdRng::from_seed(seed)
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 64 {
            self.generate();
        }
        let v = self.results[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core::BlockRng::next_u64, including the buffer-straddling
        // case.
        let index = self.index;
        if index < 63 {
            self.index += 2;
            (u64::from(self.results[index + 1]) << 32) | u64::from(self.results[index])
        } else if index >= 64 {
            self.generate();
            self.index = 2;
            (u64::from(self.results[1]) << 32) | u64::from(self.results[0])
        } else {
            let x = u64::from(self.results[63]);
            self.generate();
            self.index = 1;
            (u64::from(self.results[0]) << 32) | x
        }
    }
}

/// Types producible by [`Rng::gen`] (`rand`'s `Standard` distribution,
/// subset).
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit precision multiply-based conversion.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64
);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

/// Uniform single-sampling of a type (see [`Rng::gen_range`]), matching
/// `rand 0.8.5`'s `UniformSampler::sample_single{,_inclusive}`.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => ($unsigned:ty, $u_large:ty, $wide:ty)),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                Self::sample_closed(rng, low, high - 1)
            }

            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "UniformSampler::sample_single_inclusive: low > high");
                let range = (high.wrapping_sub(low) as $unsigned as $u_large).wrapping_add(1);
                if range == 0 {
                    // The whole domain: any value is uniform.
                    return <$t as Standard>::draw(rng);
                }
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    // Small types use an exact modulus.
                    let unsigned_max = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = <$u_large as Standard>::draw(rng);
                    let prod = (v as $wide) * (range as $wide);
                    let hi = (prod >> (<$u_large>::BITS)) as $u_large;
                    let lo = prod as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_int!(
    u8 => (u8, u32, u64),
    u16 => (u16, u32, u64),
    u32 => (u32, u32, u64),
    u64 => (u64, u64, u128),
    usize => (usize, usize, u128),
    i8 => (u8, u32, u64),
    i16 => (u16, u32, u64),
    i32 => (u32, u32, u64),
    i64 => (u64, u64, u128),
    isize => (usize, usize, u128)
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        debug_assert!(low < high, "UniformSampler::sample_single: low >= high");
        let mut scale = high - low;
        loop {
            // A value in [1, 2) from 52 mantissa bits, minus 1.
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
            // Upstream's edge-case handling shrinks the scale.
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }

    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        debug_assert!(
            low <= high,
            "UniformSampler::sample_single_inclusive: low > high"
        );
        // Matches rand 0.8.5: inclusive float sampling widens the scale
        // by one ULP-equivalent via the [1, 2) trick over high - low.
        let scale = high - low;
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        let res = (value1_2 - 1.0) * scale + low;
        if res > high {
            high
        } else {
            res
        }
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        debug_assert!(low < high, "UniformSampler::sample_single: low >= high");
        let mut scale = high - low;
        loop {
            // A value in [1, 2) from 23 mantissa bits, minus 1.
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }

    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        debug_assert!(
            low <= high,
            "UniformSampler::sample_single_inclusive: low > high"
        );
        let scale = high - low;
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
        let res = (value1_2 - 1.0) * scale + low;
        if res > high {
            high
        } else {
            res
        }
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`, via `rand 0.8`'s 64-bit fixed-point
    /// Bernoulli.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if !(0.0..1.0).contains(&p) {
            assert!(p == 1.0, "p={p} is outside range [0.0, 1.0]");
            return true;
        }
        // SCALE = 2^64 as f64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.gen::<u64>() < p_int
    }

    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespaced re-exports matching `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence utilities (mirrors `rand::seq`, subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Uniform index below `ubound`, using u32 sampling when possible
    /// (exactly `rand 0.8`'s `gen_index`).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element (`None` if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(gen_index(rng, self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mixed_u32_u64_reads_stay_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        // Drive `a` across several buffer refills with mixed reads.
        let mut va = Vec::new();
        let mut vb = Vec::new();
        for i in 0..300 {
            if i % 3 == 0 {
                va.push(a.next_u32() as u64);
                vb.push(b.next_u32() as u64);
            } else {
                va.push(a.next_u64());
                vb.push(b.next_u64());
            }
        }
        assert_eq!(va, vb);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let k = rng.gen_range(3usize..7);
            assert!((3..7).contains(&k));
            let k = rng.gen_range(2usize..=6);
            assert!((2..=6).contains(&k));
            let x = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&x));
            let k: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&k));
        }
    }

    #[test]
    fn gen_bool_frequency_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
