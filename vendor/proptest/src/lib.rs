//! Offline in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_flat_map`
//! / `boxed`, range and tuple strategies, [`collection::vec`], the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`]
//! and [`prop_assume!`] macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (no persisted failure file), there is no
//! shrinking, and the default case count is 64.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerates, bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Generates a value, then draws from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A length range accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec`s of values from `elem` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Creates the deterministic RNG for case `case` of a test.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x5EED_CA5E ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Builds a strategy choosing uniformly among the given strategies
/// (which must share a `Value` type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fails the current test case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case if the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    left,
                    right
                );
            }
        }
    };
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($a),
                    stringify!($b),
                    left
                );
            }
        }
    };
}

/// Skips the current test case if the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, …)`
/// runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut failures: ::std::option::Option<::std::string::String> = ::std::option::Option::None;
                for case in 0..cfg.cases {
                    let mut rng = $crate::case_rng(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome = (|| -> $crate::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            failures = ::std::option::Option::Some(
                                format!("case {case}/{}: {msg}", cfg.cases),
                            );
                            break;
                        }
                    }
                }
                if let ::std::option::Option::Some(msg) = failures {
                    panic!("property failed at {msg}");
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}
