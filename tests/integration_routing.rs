//! Integration tests for the multi-device routing seam: the
//! `EarliestFree` bit-for-bit contract against the PR-2 golden
//! scheduling snapshot, the earliest-free fallback on tied
//! `CalibrationAware` scores, admission-safety properties of the
//! router, and the cross-batch partition-probe cache.

use proptest::prelude::*;
use qucp_core::strategy;
use qucp_device::ibm;
use qucp_runtime::{
    synthetic_jobs, CalibrationAware, EarliestFree, Event, ExecutionMode, JobRequest,
    RoutingPolicy, RuntimeConfig, Service, ServiceReport,
};

/// Drains `jobs` through a FIFO service with the given routing policy.
fn drain_with_routing(
    jobs: &[qucp_runtime::Job],
    routing: impl RoutingPolicy + 'static,
    registry: qucp_runtime::DeviceRegistry,
    max_parallel: usize,
    seed: u64,
) -> (ServiceReport, qucp_runtime::RouteCacheStats) {
    let mut service = Service::builder()
        .registry(registry)
        .strategy(strategy::qucp(4.0))
        .routing(routing)
        .max_parallel(max_parallel)
        .seed(seed)
        .build()
        .expect("build");
    for job in jobs {
        service.submit(JobRequest::from_job(job)).expect("submit");
    }
    let report = service.run_until_drained().expect("drain");
    (report, service.route_cache_stats())
}

/// Acceptance: an explicit `EarliestFree` routing policy reproduces the
/// PR-2 golden scheduling snapshot bit-for-bit — same memberships, same
/// statistics — and matches a default-built service (whose default
/// routing is `EarliestFree`) on every report field.
#[test]
fn earliest_free_routing_reproduces_pr2_golden_snapshot() {
    let jobs = synthetic_jobs(12, 300.0, 256, 0xACCE);
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * b.abs().max(1.0);
    let cfg = RuntimeConfig {
        max_parallel: 4,
        fidelity_threshold: None,
        seed: 77,
        optimize: true,
        mode: ExecutionMode::Concurrent,
        ..RuntimeConfig::default()
    };

    // Default-built service: the pre-seam dispatch path.
    let mut default_service = Service::builder()
        .device(ibm::toronto())
        .strategy(strategy::qucp(4.0))
        .config(cfg.clone())
        .build()
        .expect("build");
    // Explicit EarliestFree through the seam.
    let mut explicit_service = Service::builder()
        .device(ibm::toronto())
        .strategy(strategy::qucp(4.0))
        .routing(EarliestFree)
        .config(cfg)
        .build()
        .expect("build");
    for job in &jobs {
        default_service
            .submit(JobRequest::from_job(job))
            .expect("submit");
        explicit_service
            .submit(JobRequest::from_job(job))
            .expect("submit");
    }
    let default_report = default_service.run_until_drained().expect("drain");
    let explicit_report = explicit_service.run_until_drained().expect("drain");
    assert_eq!(default_report, explicit_report);

    // The golden snapshot frozen at the PR-2 service redesign (see
    // `fifo_scheduling_decisions_match_golden_snapshot`): exact batch
    // memberships and tight-tolerance statistics.
    let memberships: Vec<Vec<u64>> = explicit_report
        .batches
        .iter()
        .map(|b| b.job_ids.clone())
        .collect();
    assert_eq!(
        memberships,
        vec![vec![0], vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 11]]
    );
    assert!(close(explicit_report.stats.mean_waiting, 19042.832443));
    assert!(close(explicit_report.stats.mean_turnaround, 34692.747438));
    assert!(close(explicit_report.stats.makespan, 56569.286641));
    assert!(close(explicit_report.stats.mean_throughput, 0.360557));

    // The default path never pays a routing partition probe.
    assert_eq!(default_service.route_cache_stats().entries, 0);
    // Every batch carries a BatchRouted record naming the policy.
    let routed = explicit_report
        .events
        .iter()
        .filter(|e| matches!(e, Event::BatchRouted { policy, .. } if policy == "EarliestFree"))
        .count();
    assert_eq!(routed, explicit_report.stats.batches);
}

/// On a fleet of *identical* twins every candidate scores the same
/// quality, so `CalibrationAware` must fall back to the earliest-free
/// order on every dispatch: schedules, batches and results coincide
/// with `EarliestFree` exactly.
#[test]
fn calibration_aware_falls_back_to_earliest_free_on_tied_scores() {
    let twins = || {
        let mut fleet = qucp_runtime::DeviceRegistry::new();
        fleet.register(ibm::toronto());
        fleet.register(ibm::toronto());
        fleet
    };
    let jobs = synthetic_jobs(10, 250.0, 64, 0x71E5);
    let (earliest, _) = drain_with_routing(&jobs, EarliestFree, twins(), 3, 11);
    let (aware, cache) = drain_with_routing(&jobs, CalibrationAware::default(), twins(), 3, 11);
    assert_eq!(earliest.stats, aware.stats);
    assert_eq!(earliest.batches, aware.batches);
    assert_eq!(earliest.job_results, aware.job_results);
    // The tie-break is not an accident of skipping the probes: the
    // aware policy did probe both twins.
    assert!(cache.misses >= 2);
}

/// Calibration-aware routing is deterministic: serial and concurrent
/// execution produce bit-for-bit the same report, and reruns agree.
#[test]
fn calibration_aware_routing_is_deterministic() {
    let fleet = || {
        let mut fleet = qucp_runtime::DeviceRegistry::new();
        fleet.register(ibm::melbourne());
        fleet.register(ibm::toronto());
        fleet
    };
    let jobs = synthetic_jobs(8, 200.0, 64, 0xDE7);
    let run = |mode: ExecutionMode| {
        let mut service = Service::builder()
            .registry(fleet())
            .strategy(strategy::qucp(4.0))
            .routing(CalibrationAware::default())
            .max_parallel(3)
            .mode(mode)
            .seed(21)
            .build()
            .expect("build");
        for job in &jobs {
            service.submit(JobRequest::from_job(job)).expect("submit");
        }
        service.run_until_drained().expect("drain")
    };
    let concurrent = run(ExecutionMode::Concurrent);
    assert_eq!(concurrent, run(ExecutionMode::Concurrent));
    assert_eq!(concurrent, run(ExecutionMode::Serial));
}

/// The cross-batch cache never changes scheduling: draining two
/// identical bursts through one service (the second all cache hits)
/// produces the same batch memberships and device choices both times.
#[test]
fn cached_probes_do_not_change_routing_decisions() {
    let mut fleet = qucp_runtime::DeviceRegistry::new();
    fleet.register(ibm::melbourne());
    fleet.register(ibm::toronto());
    let mut service = Service::builder()
        .registry(fleet)
        .strategy(strategy::qucp(4.0))
        .routing(CalibrationAware::default())
        .max_parallel(3)
        .seed(5)
        .build()
        .expect("build");
    // Burst 1 at t=0, burst 2 long after every clock drained.
    let jobs = synthetic_jobs(6, 100.0, 32, 0xCAFE);
    for job in &jobs {
        service.submit(JobRequest::from_job(job)).expect("submit");
    }
    service.run_until_drained().expect("drain 1");
    let first_misses = service.route_cache_stats().misses;
    assert!(first_misses > 0);
    let offset = 1e9;
    for job in &jobs {
        let mut c = job.circuit.clone();
        c.set_name(format!("{}-again", job.circuit.name()));
        service
            .submit(JobRequest::new(c, job.arrival + offset).with_id(job.id + 100))
            .expect("submit");
    }
    let report = service.run_until_drained().expect("drain 2");
    let stats = service.route_cache_stats();
    // Burst 2 probed nothing new: identical shapes on a frozen fleet.
    assert_eq!(stats.misses, first_misses);
    assert!(stats.hits > 0);
    // Same scheduling story both times: memberships (mod the id offset)
    // and device choices repeat exactly.
    let n = report.batches.len();
    assert_eq!(n % 2, 0, "both bursts must batch identically");
    for (a, b) in report.batches[..n / 2].iter().zip(&report.batches[n / 2..]) {
        assert_eq!(a.device, b.device);
        let shifted: Vec<u64> = a.job_ids.iter().map(|id| id + 100).collect();
        assert_eq!(shifted, b.job_ids);
        assert_eq!(a.used_qubits, b.used_qubits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The router never selects a non-admitting device, under either
    /// policy: every batch's total width fits its device, and every
    /// member is no wider than the chip. Wide jobs (18q) only ever land
    /// on Toronto (27q), never Melbourne (15q).
    #[test]
    fn router_never_selects_a_non_admitting_device(
        n in 4usize..9,
        seed in 0u64..500,
        aware in 0usize..2,
    ) {
        let aware = aware == 1;
        let mut fleet = qucp_runtime::DeviceRegistry::new();
        fleet.register(ibm::melbourne());
        fleet.register(ibm::toronto());
        let mut jobs = synthetic_jobs(n, 150.0, 16, seed);
        // Make one job wide enough that only Toronto admits it.
        let mut wide = qucp_circuit::Circuit::with_name(18, "ghz18");
        wide.h(0);
        for q in 1..18 {
            wide.cx(q - 1, q);
        }
        jobs[n / 2].circuit = wide;
        let report = if aware {
            drain_with_routing(&jobs, CalibrationAware::default(), fleet, 3, seed).0
        } else {
            drain_with_routing(&jobs, EarliestFree, fleet, 3, seed).0
        };
        prop_assert_eq!(report.job_results.len(), n);
        let qubits_of = |name: &str| -> usize {
            if name == ibm::melbourne().name() { 15 } else { 27 }
        };
        for batch in &report.batches {
            let device_qubits = qubits_of(&batch.device);
            prop_assert!(
                batch.used_qubits <= device_qubits,
                "batch on {} uses {} qubits",
                batch.device,
                batch.used_qubits
            );
            for &id in &batch.job_ids {
                let width = jobs[id as usize].circuit.width();
                prop_assert!(
                    width <= device_qubits,
                    "job {} ({}q) landed on {} ({}q)",
                    id,
                    width,
                    batch.device,
                    device_qubits
                );
            }
        }
        // The 18q job specifically must be on Toronto.
        let wide_batch = report
            .batches
            .iter()
            .find(|b| b.job_ids.contains(&(n as u64 / 2)))
            .expect("wide job served");
        prop_assert_eq!(&wide_batch.device, ibm::toronto().name());
    }
}
