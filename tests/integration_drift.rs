//! Integration tests for the live-fleet refactor: frozen-fleet
//! equivalence under zero drift (property), typed rejection of poisoned
//! recalibrations, epoch-aware re-routing after a recalibration flips
//! the fleet's quality ordering, the drift shoot-out's payoff at test
//! scale, the per-job shot-parallelism overrides (thread-count
//! invariance, `Auto` resolution), and the whole-plan cache's
//! epoch-keyed invalidation under drift (only the bumped device's plan
//! entries drop; cached plans replay bit-for-bit the fresh planner).

use proptest::prelude::*;
use qucp_core::strategy;
use qucp_device::{ibm, DriftModel, GaussianWalk};
use qucp_runtime::{
    synthetic_jobs, Backfill, CacheInvalidation, CalibrationAware, CalibrationFault, Fifo,
    JobRequest, PlanMemo, RuntimeError, Service, ServiceBuilder, ServiceReport, ShortestJobFirst,
    ShotParallelism,
};
use qucp_sim::auto_shard_count;

/// A [`GaussianWalk`] confined to the device with the given salt: every
/// other device's steps report "nothing changed", so only one chip's
/// epoch ever bumps. Lets the plan-cache tests pin that invalidation is
/// per-device, not fleet-wide.
#[derive(Debug, Clone, Copy)]
struct OneDeviceWalk {
    inner: GaussianWalk,
    salt: u64,
}

impl DriftModel for OneDeviceWalk {
    fn steps_at(&self, now: f64) -> u64 {
        self.inner.steps_at(now)
    }

    fn apply_step(
        &self,
        step: u64,
        device_salt: u64,
        calibration: &mut qucp_device::Calibration,
        crosstalk: &mut qucp_device::CrosstalkModel,
    ) -> bool {
        device_salt == self.salt
            && self
                .inner
                .apply_step(step, device_salt, calibration, crosstalk)
    }
}

fn aware_fleet_builder(seed: u64) -> ServiceBuilder {
    Service::builder()
        .registry(qucp_bench::skewed_fleet())
        .strategy(strategy::qucp(4.0))
        .routing(CalibrationAware::default())
        .max_parallel(3)
        .default_shots(64)
        .seed(seed)
}

/// Drains `n` fixture jobs, interleaving `tick`s (and, when `drift` is
/// true, `advance_drift`s) at the given horizons before the final
/// drain.
fn drain_with_horizons(
    builder: ServiceBuilder,
    n: usize,
    horizons: &[f64],
    drift: bool,
) -> (ServiceReport, Vec<u64>) {
    let mut service = builder.build().expect("build");
    for job in synthetic_jobs(n, 300.0, 64, 0xD21F7) {
        service.submit(JobRequest::from_job(&job)).expect("submit");
    }
    for &t in horizons {
        if drift {
            service.advance_drift(t).expect("advance");
        }
        service.tick(t).expect("tick");
    }
    let report = service.run_until_drained().expect("drain");
    let epochs: Vec<u64> = (0..service.registry().len())
        .map(|i| {
            let id = service.registry().iter().nth(i).expect("device").0;
            service.device_epoch(id)
        })
        .collect();
    (report, epochs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Frozen-fleet equivalence: a zero-sigma drift walk may tick its
    /// steps as often as it likes — no epoch ever bumps, no cache entry
    /// ever drops, no event is emitted, and the service report is
    /// bit-for-bit the report of a service with no drift model at all.
    #[test]
    fn zero_drift_advance_never_bumps_an_epoch_or_changes_results(
        n in 3usize..7,
        seed in 0u64..200,
        interval in prop_oneof![Just(1_000.0), Just(25_000.0), Just(400_000.0)],
        horizons in proptest::collection::vec(0.0f64..2e6, 0usize..4),
    ) {
        let (frozen, frozen_epochs) =
            drain_with_horizons(aware_fleet_builder(seed), n, &horizons, false);
        let walk = GaussianWalk::new(seed ^ 0xD21F7, interval).frozen();
        let (drifted, drifted_epochs) =
            drain_with_horizons(aware_fleet_builder(seed).drift(walk), n, &horizons, true);
        prop_assert_eq!(&frozen, &drifted);
        prop_assert_eq!(frozen_epochs, vec![0, 0]);
        prop_assert_eq!(drifted_epochs, vec![0, 0]);
        prop_assert!(drifted
            .events
            .iter()
            .all(|e| !matches!(e, qucp_runtime::Event::DeviceRecalibrated { .. })));
    }

    /// Whole-plan memoization is observationally invisible under live
    /// drift: on any admission policy and any random submit/tick/drift
    /// interleaving, a [`PlanMemo::EpochKeyed`] service hands out the
    /// same tickets from every tick and drains a bit-identical report
    /// to the [`PlanMemo::Never`] ablation — replayed plans equal fresh
    /// plans, and epoch-keyed invalidation never serves a stale one.
    #[test]
    fn cached_plans_match_fresh_plans_under_drift(
        n in 3usize..8,
        seed in 0u64..200,
        policy in 0u8..3,
        interval in prop_oneof![Just(40_000.0), Just(250_000.0)],
        split_frac in 0f64..1.0,
        horizons in proptest::collection::vec(0.0f64..2e6, 1usize..4),
    ) {
        let build = |memo: PlanMemo| {
            let walk = GaussianWalk::new(seed ^ 0xCAFE, interval);
            let builder = aware_fleet_builder(seed).plan_memo(memo).drift(walk);
            match policy {
                0 => builder.policy(Fifo),
                1 => builder.policy(Backfill::default()),
                _ => builder.policy(ShortestJobFirst),
            }
            .build()
            .expect("build")
        };
        let mut cached = build(PlanMemo::EpochKeyed);
        let mut fresh = build(PlanMemo::Never);
        let jobs = synthetic_jobs(n, 300.0, 64, 0xD21F7);
        let split = ((n as f64) * split_frac) as usize;

        for job in &jobs[..split] {
            let a = cached.submit(JobRequest::from_job(job)).expect("cached submit");
            let b = fresh.submit(JobRequest::from_job(job)).expect("fresh submit");
            prop_assert_eq!(a, b);
        }
        for &t in &horizons {
            prop_assert_eq!(
                cached.advance_drift(t).expect("cached advance"),
                fresh.advance_drift(t).expect("fresh advance")
            );
            prop_assert_eq!(cached.tick(t).expect("cached tick"), fresh.tick(t).expect("fresh tick"));
        }
        for job in &jobs[split..] {
            let a = cached.submit(JobRequest::from_job(job)).expect("cached submit");
            let b = fresh.submit(JobRequest::from_job(job)).expect("fresh submit");
            prop_assert_eq!(a, b);
        }
        let a = cached.run_until_drained().expect("cached drain");
        let b = fresh.run_until_drained().expect("fresh drain");
        prop_assert_eq!(a, b);
        // The ablation never consults the plan cache; the memoized side
        // must have actually exercised it.
        let stats = fresh.route_cache_stats();
        prop_assert_eq!((stats.plan_hits, stats.plan_misses, stats.plan_entries), (0, 0, 0));
        let stats = cached.route_cache_stats();
        prop_assert!(stats.plan_hits + stats.plan_misses > 0);
    }
}

/// Regression: a drift-driven epoch bump invalidates the whole-plan
/// cache *per device*. On the skewed fleet every plan lands on the
/// well-calibrated Toronto (salt 1), so the two sides of "only the
/// bumped device" split cleanly: bumping the idle noisy twin (salt 0)
/// drops nothing and the cached plans keep replaying, while bumping the
/// loaded chip drops its entries and forces the next burst to re-plan.
#[test]
fn drift_epoch_bump_drops_only_the_bumped_devices_plan_entries() {
    let jobs = synthetic_jobs(8, 300.0, 64, 0x9E0);
    let run = |salt: u64| {
        let walk = OneDeviceWalk {
            inner: GaussianWalk::new(0xD81F7, 50_000.0),
            salt,
        };
        let mut service = aware_fleet_builder(29).drift(walk).build().expect("build");
        for job in &jobs {
            service.submit(JobRequest::from_job(job)).expect("submit");
        }
        let first = service.run_until_drained().expect("drain 1");
        assert!(
            first.batches.iter().all(|b| b.device == "ibmq_toronto"),
            "the skewed fleet must route every batch to the good chip"
        );
        let before = service.route_cache_stats();
        assert!(
            before.plan_entries > 0,
            "the drain must have memoized plans"
        );
        assert_eq!(before.plan_invalidated, 0);

        // One drift interval elapses: exactly the salted chip's
        // calibration walks and its epoch bumps.
        assert_eq!(service.advance_drift(60_000.0).expect("advance"), 1);
        let ids: Vec<_> = service.registry().iter().map(|(id, _)| id).collect();
        for (index, id) in ids.iter().enumerate() {
            let expected = u64::from(index as u64 == salt);
            assert_eq!(
                service.device_epoch(*id),
                expected,
                "epoch of device {index}"
            );
        }
        let after = service.route_cache_stats();

        // The same burst again, after the bump.
        for job in &jobs {
            service
                .submit(
                    JobRequest::new(job.circuit.clone(), job.arrival + 1e7).with_id(job.id + 100),
                )
                .expect("submit");
        }
        service.run_until_drained().expect("drain 2");
        (before, after, service.route_cache_stats())
    };

    // Bumping the idle twin: no plan entry belongs to it, so none may
    // drop — and the loaded chip's cached plans must keep replaying
    // (hits grow, no fresh miss).
    let (before, after, end) = run(0);
    assert_eq!(
        after.plan_invalidated, 0,
        "an idle chip's bump must drop nothing"
    );
    assert_eq!(after.plan_entries, before.plan_entries);
    assert!(
        end.plan_hits > after.plan_hits && end.plan_misses == after.plan_misses,
        "plans on the untouched chip must survive and replay: {end:?}"
    );

    // Bumping the loaded chip: its entries drop, and the next burst
    // carries a new-epoch fingerprint — it must re-plan from scratch,
    // never replay a stale plan.
    let (before, after, end) = run(1);
    assert!(
        after.plan_invalidated > 0,
        "the bumped device's plan entries must drop"
    );
    assert_eq!(
        after.plan_entries + after.plan_invalidated,
        before.plan_entries,
        "invalidation must account for every dropped entry"
    );
    assert!(
        end.plan_misses > after.plan_misses,
        "post-drift batches on the bumped chip must re-plan: {end:?}"
    );
}

/// Regression: a recalibration snapshot with NaN entries is rejected
/// with a typed [`RuntimeError::InvalidCalibration`] *before* it can
/// touch the device or poison the planning cache — the service then
/// schedules exactly as if the call had never happened.
#[test]
fn nan_recalibration_is_rejected_and_does_not_poison_the_cache() {
    let jobs = synthetic_jobs(6, 300.0, 64, 0xBAD);
    let run = |poison: bool| {
        let mut service = aware_fleet_builder(17).build().expect("build");
        for job in &jobs[..3] {
            service.submit(JobRequest::from_job(job)).expect("submit");
        }
        service.run_until_drained().expect("drain 1");
        if poison {
            let (id, device) = {
                let (id, d) = service.registry().iter().next().expect("device");
                (id, d.name().to_string())
            };
            let mut bad = service.registry().get(id).calibration().clone();
            bad.set_cx_error(qucp_device::Link::new(0, 1), f64::NAN);
            let err = service.recalibrate(id, bad).unwrap_err();
            match err {
                RuntimeError::InvalidCalibration { device: d, fault } => {
                    assert_eq!(d, device);
                    assert_eq!(fault, CalibrationFault::NonFinite);
                }
                other => panic!("expected InvalidCalibration, got {other:?}"),
            }
            assert_eq!(service.device_epoch(id), 0, "epoch must not bump");
            assert_eq!(service.route_cache_stats().invalidated, 0);
            assert!(service.event_log().recalibrations().is_empty());
        }
        for job in &jobs[3..] {
            service.submit(JobRequest::from_job(job)).expect("submit");
        }
        service.run_until_drained().expect("drain 2")
    };
    assert_eq!(
        run(true),
        run(false),
        "a rejected recalibration must leave no trace in scheduling"
    );
}

/// A *valid* recalibration that flips which chip is well-calibrated
/// must re-route the next burst: the epoch bump drops the stale probes,
/// `CalibrationAware` re-probes the current snapshots, and the load
/// moves to the newly good chip.
#[test]
fn recalibration_swap_reroutes_the_next_burst() {
    let mut service = aware_fleet_builder(23).build().expect("build");
    let (noisy_id, good_id) = {
        let mut it = service.registry().iter();
        (it.next().unwrap().0, it.next().unwrap().0)
    };
    let noisy_cal = service.registry().get(noisy_id).calibration().clone();
    let good_cal = service.registry().get(good_id).calibration().clone();
    let burst = synthetic_jobs(6, 300.0, 64, 0x5A1D);
    let jobs_on = |report: &qucp_runtime::ServiceReport, from: usize| {
        let mut counts = [0usize; 2];
        for b in report.batches.iter().skip(from) {
            let idx = if b.device == "ibmq_toronto_noisy" {
                0
            } else {
                1
            };
            counts[idx] += b.job_ids.len();
        }
        counts
    };

    for job in &burst {
        service.submit(JobRequest::from_job(job)).expect("submit");
    }
    let before = service.run_until_drained().expect("drain 1");
    let placed_before = jobs_on(&before, 0);
    assert!(
        placed_before[1] > placed_before[0],
        "pre-swap, the good Toronto must carry the load: {placed_before:?}"
    );

    // The daily recalibration arrives — and the chips have swapped
    // quality. Both topologies are Toronto's, so the snapshots cross
    // over cleanly.
    assert_eq!(service.recalibrate(noisy_id, good_cal).unwrap(), 1);
    assert_eq!(service.recalibrate(good_id, noisy_cal).unwrap(), 1);
    assert!(service.route_cache_stats().invalidated > 0);

    let dispatched = before.batches.len();
    for job in &burst {
        service
            .submit(JobRequest::new(job.circuit.clone(), job.arrival + 1e7).with_id(job.id + 50))
            .expect("submit");
    }
    let after = service.run_until_drained().expect("drain 2");
    let placed_after = jobs_on(&after, dispatched);
    assert!(
        placed_after[0] > placed_after[1],
        "post-swap, the (formerly) noisy twin must carry the load: {placed_after:?}"
    );
    assert_eq!(
        service.event_log().recalibrations(),
        vec![("ibmq_toronto_noisy", 1), ("ibmq_toronto", 1)]
    );
}

/// The drift shoot-out's acceptance bar at test scale: with the seesaw
/// drift enabled, epoch-aware cache invalidation strictly beats the
/// stale cache on post-drift delivered fidelity, deterministically.
#[test]
fn epoch_aware_invalidation_beats_stale_cache_under_drift() {
    use qucp_runtime::ExecutionMode;
    let aware = qucp_bench::drift_shootout(CacheInvalidation::EpochAware, ExecutionMode::Serial);
    let stale = qucp_bench::drift_shootout(CacheInvalidation::Never, ExecutionMode::Serial);
    assert_eq!(
        (aware.mean_efs_before, aware.mean_jsd_before),
        (stale.mean_efs_before, stale.mean_jsd_before),
        "pre-drift behaviour must not depend on the cache mode"
    );
    assert!(aware.mean_efs_after < stale.mean_efs_after);
    assert!(aware.mean_jsd_after < stale.mean_jsd_after);
    assert!(aware.cache.invalidated > 0);
    assert_eq!(stale.cache.invalidated, 0);
}

/// Per-job `ShotParallelism` overrides are thread-count invariant: the
/// same mixed workload produces bit-for-bit the same report at 1, 2 and
/// 4 worker threads (shards fix the counts; threads only move
/// wall-clock time).
#[test]
fn per_job_parallelism_override_is_thread_count_invariant() {
    let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
    let fred = qucp_circuit::library::by_name("fred").unwrap().circuit();
    let run = |threads: usize| {
        let mut service = Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .max_parallel(2)
            .default_shots(512)
            .seed(0x0DD)
            .build()
            .expect("build");
        // A sharded big job, an Auto job and a default-serial job
        // co-scheduled: only the explicit shard split carries a thread
        // cap, and no report field may depend on it.
        service
            .submit(
                JobRequest::new(fred.clone(), 0.0)
                    .with_id(0)
                    .with_shots(2048)
                    .with_shot_parallelism(ShotParallelism::Sharded { shards: 4, threads }),
            )
            .expect("submit");
        service
            .submit(
                JobRequest::new(bell.clone(), 0.0)
                    .with_id(1)
                    .with_shot_parallelism(ShotParallelism::Auto),
            )
            .expect("submit");
        service
            .submit(JobRequest::new(bell.clone(), 10.0).with_id(2))
            .expect("submit");
        service.run_until_drained().expect("drain")
    };
    let reference = run(1);
    assert_eq!(reference, run(2));
    assert_eq!(reference, run(4));
    assert_eq!(reference.job_results.len(), 3);
}

/// `ShotParallelism::Auto` resolves from the shot budget alone: an Auto
/// override equals the explicit `Sharded` split `auto_shard_count`
/// prescribes, and differs from the serial default.
#[test]
fn auto_override_matches_its_documented_resolution() {
    let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
    let shots = 2048usize;
    let run = |parallelism: Option<ShotParallelism>| {
        let mut service = Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .max_parallel(1)
            .default_shots(shots)
            .seed(0xA070)
            .build()
            .expect("build");
        let mut req = JobRequest::new(bell.clone(), 0.0);
        if let Some(p) = parallelism {
            req = req.with_shot_parallelism(p);
        }
        service.submit(req).expect("submit");
        service.run_until_drained().expect("drain")
    };
    let auto = run(Some(ShotParallelism::Auto));
    let explicit = run(Some(ShotParallelism::sharded(auto_shard_count(shots))));
    let serial = run(None);
    assert_eq!(
        auto.job_results[0].result.counts,
        explicit.job_results[0].result.counts
    );
    assert_ne!(
        auto.job_results[0].result.counts, serial.job_results[0].result.counts,
        "a 2048-shot Auto job must actually shard"
    );
}
