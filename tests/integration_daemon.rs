//! Integration tests for the `qucpd` daemon subsystem: round-trip
//! properties for every wire message (handshake and error frames
//! included), decode-rejects-garbage properties (truncation, forged
//! length prefixes, unknown tags — typed errors, never panics), the
//! mock-transport protocol suite (version negotiation, handshake
//! enforcement), graceful shutdown losing no admitted job, and the
//! headline acceptance property: a `Client` over the mock transport
//! AND over a live unix socket receives a `ServiceReport`
//! **bit-identical** to driving the same `Service` in process with the
//! same simulated clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use qucp_circuit::{Circuit, Gate};
use qucp_core::queue::QueueStats;
use qucp_core::{CrosstalkTreatment, PartitionPolicy, ProgramResult, Strategy as ExecStrategy};
use qucp_daemon::{
    Client, ClientError, Daemon, DaemonConfig, Fault, MockTransport, Request, Response,
    ServerSession, Transport, WireError, WireRuntimeError, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use qucp_device::{ibm, Link, LinkPair};
use qucp_runtime::{
    skewed_jobs, BatchReport, DeviceReport, Event, JobRequest, JobResult, JobTicket, RoutingChoice,
    Service, ServiceReport, ShotParallelism, ShrinkReason, TrajectoryKernel,
};
use qucp_sim::Counts;

// ---------------------------------------------------------------------------
// Fixtures.
// ---------------------------------------------------------------------------

/// The shared deterministic fleet both sides of every identity test
/// build: same device, same seed, same knobs.
fn fleet() -> Service {
    Service::builder()
        .device(ibm::melbourne())
        .max_parallel(2)
        .default_shots(64)
        .seed(7)
        .build()
        .expect("build service")
}

/// A small skewed workload (mixed widths, staggered arrivals).
fn workload(n: usize) -> Vec<JobRequest> {
    skewed_jobs(n, 12, 300.0, 64, 0xBEEF)
        .iter()
        .map(JobRequest::from_job)
        .collect()
}

/// A throwaway valid circuit for submissions in protocol tests.
fn bell_request(arrival: f64) -> JobRequest {
    let mut circuit = Circuit::with_name(2, "bell");
    circuit.try_push(Gate::H(0)).unwrap();
    circuit.try_push(Gate::Cx(0, 1)).unwrap();
    JobRequest::new(circuit, arrival)
}

/// A unique socket path in the system temp dir.
fn socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("qucpd-it-{}-{tag}.sock", std::process::id()))
}

// ---------------------------------------------------------------------------
// Strategies for wire values.
// ---------------------------------------------------------------------------

/// Circuit width every generated gate stays inside.
const WIDTH: usize = 4;

/// Finite-or-infinite `f64`s, signed zeros included. NaN is excluded
/// here only because `PartialEq` cannot witness its round-trip; the
/// dedicated `nan_payloads_round_trip_bitwise` test covers NaN at the
/// bit level.
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(2.5e-7),
        -1.0e9..1.0e9,
    ]
}

fn arb_gate() -> impl Strategy<Value = Gate> {
    (
        (0u8..20, 0usize..WIDTH, 1usize..WIDTH),
        (arb_f64(), arb_f64(), arb_f64()),
    )
        .prop_map(|((tag, q, offset), (a, b, c))| {
            let q2 = (q + offset) % WIDTH; // offset in 1..WIDTH, so q2 != q
            match tag {
                0 => Gate::I(q),
                1 => Gate::X(q),
                2 => Gate::Y(q),
                3 => Gate::Z(q),
                4 => Gate::H(q),
                5 => Gate::S(q),
                6 => Gate::Sdg(q),
                7 => Gate::T(q),
                8 => Gate::Tdg(q),
                9 => Gate::Sx(q),
                10 => Gate::Sxdg(q),
                11 => Gate::Rx(q, a),
                12 => Gate::Ry(q, a),
                13 => Gate::Rz(q, a),
                14 => Gate::P(q, a),
                15 => Gate::U(q, a, b, c),
                16 => Gate::Cx(q, q2),
                17 => Gate::Cz(q, q2),
                18 => Gate::Cp(q, q2, a),
                19 => Gate::Swap(q, q2),
                _ => unreachable!(),
            }
        })
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(), 0usize..10).prop_map(|gates| {
        let mut circuit = Circuit::with_name(WIDTH, "arb");
        for gate in gates {
            circuit.try_push(gate).expect("valid by construction");
        }
        circuit
    })
}

fn arb_treatment() -> impl Strategy<Value = CrosstalkTreatment> {
    prop_oneof![
        Just(CrosstalkTreatment::None),
        arb_f64().prop_map(CrosstalkTreatment::Sigma),
        proptest::collection::vec(
            ((0usize..8, 1usize..4), (0usize..8, 1usize..4), arb_f64()),
            0usize..4
        )
        .prop_map(|entries| {
            let map = entries
                .into_iter()
                .map(|((a, da), (b, db), ratio)| {
                    let pair = LinkPair::new(Link::new(a, a + da), Link::new(b, b + db));
                    (pair, ratio)
                })
                .collect();
            CrosstalkTreatment::Measured(map)
        }),
    ]
}

fn arb_strategy() -> impl Strategy<Value = ExecStrategy> {
    (
        prop_oneof![
            arb_treatment()
                .prop_map(PartitionPolicy::NoiseAware)
                .boxed(),
            Just(PartitionPolicy::TopologyGreedy).boxed(),
            Just(PartitionPolicy::FidelityDegree).boxed(),
        ],
        0u8..4,
    )
        .prop_map(|(partition, flags)| ExecStrategy {
            name: format!("strat-{flags}"),
            partition,
            crosstalk_aware_routing: flags & 1 != 0,
            serialize_conflicts: flags & 2 != 0,
        })
}

fn arb_shot_parallelism() -> impl Strategy<Value = ShotParallelism> {
    prop_oneof![
        Just(ShotParallelism::Serial),
        Just(ShotParallelism::Auto),
        (1usize..9, 0usize..5)
            .prop_map(|(shards, threads)| ShotParallelism::Sharded { shards, threads }),
    ]
}

fn arb_option<S: Strategy + 'static>(inner: S) -> BoxedStrategy<Option<S::Value>>
where
    S::Value: 'static,
{
    prop_oneof![
        Just(()).prop_map(|_| None).boxed(),
        inner.prop_map(Some).boxed(),
    ]
    .boxed()
}

fn arb_routing_choice() -> impl Strategy<Value = RoutingChoice> {
    prop_oneof![
        Just(RoutingChoice::EarliestFree),
        arb_f64().prop_map(|pressure_per_ns| RoutingChoice::CalibrationAware { pressure_per_ns }),
    ]
}

fn arb_job_request() -> impl Strategy<Value = JobRequest> {
    (
        (arb_circuit(), arb_f64(), arb_option(0u64..999)),
        (
            arb_option(1usize..4096),
            arb_option(arb_strategy()),
            arb_option(arb_f64()),
        ),
        (
            arb_option(arb_shot_parallelism()),
            arb_option(prop_oneof![
                Just(TrajectoryKernel::Replay),
                Just(TrajectoryKernel::SurvivalSkip)
            ]),
            arb_option(arb_routing_choice()),
        ),
    )
        .prop_map(
            |(
                (circuit, arrival, id),
                (shots, strategy, threshold),
                (parallelism, kernel, routing),
            )| {
                JobRequest {
                    circuit,
                    arrival,
                    id,
                    shots,
                    strategy,
                    fidelity_threshold: threshold,
                    shot_parallelism: parallelism,
                    trajectory_kernel: kernel,
                    routing,
                }
            },
        )
}

fn arb_ticket() -> impl Strategy<Value = JobTicket> {
    (0usize..9999, 0u64..9999).prop_map(|(seq, id)| JobTicket { seq, id })
}

fn arb_queue_stats() -> impl Strategy<Value = QueueStats> {
    ((arb_f64(), arb_f64()), (arb_f64(), arb_f64(), 0usize..999)).prop_map(
        |((mean_waiting, mean_turnaround), (makespan, mean_throughput, batches))| QueueStats {
            mean_waiting,
            mean_turnaround,
            makespan,
            mean_throughput,
            batches,
        },
    )
}

fn arb_counts() -> impl Strategy<Value = Counts> {
    proptest::collection::vec((0usize..(1 << 3), 1usize..50), 0usize..6).prop_map(|entries| {
        // Dedupe indices through a BTreeMap before rebuilding: the wire
        // form requires unique outcomes, as Counts::iter produces.
        let map: std::collections::BTreeMap<usize, usize> = entries.into_iter().collect();
        Counts::from_entries(3, map).expect("valid by construction")
    })
}

fn arb_program_result() -> impl Strategy<Value = ProgramResult> {
    (
        (proptest::collection::vec(0usize..20, 1usize..5), arb_f64()),
        (0usize..30, arb_counts()),
        (arb_option(arb_f64()), arb_f64()),
    )
        .prop_map(
            |((partition, efs), (swap_count, counts), (pst, jsd))| ProgramResult {
                name: format!("prog-{swap_count}"),
                partition,
                efs,
                swap_count,
                counts,
                pst,
                jsd,
            },
        )
}

fn arb_job_result() -> impl Strategy<Value = JobResult> {
    (
        (0u64..999, 0usize..99),
        (arb_f64(), arb_f64()),
        (arb_f64(), arb_f64(), arb_program_result()),
    )
        .prop_map(
            |((job_id, batch_index), (start, completion), (waiting, turnaround, result))| {
                JobResult {
                    job_id,
                    batch_index,
                    start,
                    completion,
                    waiting,
                    turnaround,
                    result,
                }
            },
        )
}

fn arb_batch_report() -> impl Strategy<Value = BatchReport> {
    (
        (0usize..99, proptest::collection::vec(0u64..99, 0usize..4)),
        (arb_f64(), arb_f64(), arb_f64()),
        (0usize..20, 0usize..9),
    )
        .prop_map(
            |((batch_index, job_ids), (start, completion, makespan), (used_qubits, conflicts))| {
                BatchReport {
                    batch_index,
                    device: format!("dev-{batch_index}"),
                    job_ids,
                    start,
                    completion,
                    makespan,
                    used_qubits,
                    conflict_count: conflicts,
                }
            },
        )
}

fn arb_event() -> impl Strategy<Value = Event> {
    let submitted = ((0u64..99, 0usize..99), (arb_f64(), 1usize..20, 1usize..999)).prop_map(
        |((job_id, seq), (arrival, width, shots))| Event::JobSubmitted {
            job_id,
            seq,
            arrival,
            width,
            shots,
        },
    );
    let routed = ((0usize..99, arb_f64()), (arb_f64(), 1usize..5)).prop_map(
        |((batch_index, score), (start, candidates))| Event::BatchRouted {
            batch_index,
            device: format!("dev-{candidates}"),
            policy: "earliest-free".into(),
            score,
            start,
            candidates,
        },
    );
    let planned = (
        (0usize..99, proptest::collection::vec(0u64..99, 0usize..4)),
        (arb_f64(), arb_f64()),
    )
        .prop_map(
            |((batch_index, job_ids), (start, makespan))| Event::BatchPlanned {
                batch_index,
                device: "melbourne".into(),
                job_ids,
                start,
                makespan,
            },
        );
    let shrunk = ((0usize..99, 0u64..99), (0usize..5, 0u8..2)).prop_map(
        |((batch_index, dropped_job_id), (remaining, reason))| Event::BatchShrunk {
            batch_index,
            device: "melbourne".into(),
            dropped_job_id,
            remaining,
            reason: if reason == 0 {
                ShrinkReason::PartitionFailure
            } else {
                ShrinkReason::FidelityGate
            },
        },
    );
    let recal = (0u64..99).prop_map(|epoch| Event::DeviceRecalibrated {
        device: "melbourne".into(),
        epoch,
    });
    let completed = ((0u64..99, 0usize..99), (0usize..99, arb_f64(), arb_f64())).prop_map(
        |((job_id, seq), (batch_index, completion, turnaround))| Event::JobCompleted {
            job_id,
            seq,
            batch_index,
            completion,
            turnaround,
        },
    );
    prop_oneof![submitted, routed, planned, shrunk, recal, completed]
}

fn arb_service_report() -> impl Strategy<Value = ServiceReport> {
    (
        arb_queue_stats(),
        (
            proptest::collection::vec(
                (arb_queue_stats(), 0usize..99).prop_map(|(stats, jobs)| DeviceReport {
                    device: format!("dev-{jobs}"),
                    jobs,
                    stats,
                }),
                0usize..3,
            ),
            proptest::collection::vec(arb_batch_report(), 0usize..3),
        ),
        (
            proptest::collection::vec(arb_job_result(), 0usize..3),
            proptest::collection::vec(arb_event(), 0usize..4),
            0usize..99,
        ),
    )
        .prop_map(
            |(stats, (per_device, batches), (job_results, events, dropped_events))| ServiceReport {
                stats,
                per_device,
                batches,
                job_results,
                events,
                dropped_events,
            },
        )
}

fn arb_runtime_error() -> impl Strategy<Value = WireRuntimeError> {
    prop_oneof![
        Just(WireRuntimeError::ZeroParallel),
        Just(WireRuntimeError::NoDevices),
        Just(WireRuntimeError::ZeroShots),
        Just(WireRuntimeError::EmptyCircuit),
        arb_f64().prop_map(|value| WireRuntimeError::NonFiniteTime { value }),
        arb_f64().prop_map(|value| WireRuntimeError::InvalidThreshold { value }),
        (0u64..999, 0u64..999)
            .prop_map(|(steps, max)| WireRuntimeError::DriftHorizonTooFar { steps, max }),
        (0u64..99).prop_map(|job_id| WireRuntimeError::JobUnplaceable {
            job_id,
            detail: format!("no device admits job {job_id}"),
        }),
        Just(WireRuntimeError::Core {
            detail: "pipeline exploded".into()
        }),
        (0u64..999).prop_map(|seq| WireRuntimeError::QueueCorrupted { seq }),
    ]
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0u16..9, 1u16..9, 1u16..9).prop_map(|(client, min, max)| Fault::UnsupportedVersion {
            client,
            min,
            max
        }),
        Just(Fault::HandshakeRequired),
        (0u8..255).prop_map(|tag| Fault::UnknownRequest { tag }),
        Just(Fault::MalformedRequest {
            detail: "trailing garbage".into()
        }),
        arb_runtime_error().prop_map(Fault::Runtime),
        Just(Fault::ShuttingDown),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (0u16..9).prop_map(|version| Request::Hello { version }),
        arb_job_request().prop_map(|job| Request::Submit(Box::new(job))),
        arb_f64().prop_map(|now| Request::Tick { now }),
        arb_ticket().prop_map(|ticket| Request::Report { ticket }),
        arb_ticket().prop_map(|ticket| Request::TakeResult { ticket }),
        Just(Request::Drain),
        Just(Request::Events),
        Just(Request::Shutdown),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0u16..9).prop_map(|version| Response::HelloAck { version }),
        arb_ticket().prop_map(Response::Ticket),
        proptest::collection::vec(arb_ticket(), 0usize..5).prop_map(Response::Completed),
        arb_option(arb_job_result()).prop_map(|result| Response::JobReport(result.map(Box::new))),
        arb_option(arb_job_result()).prop_map(|result| Response::Taken(result.map(Box::new))),
        arb_service_report().prop_map(|report| Response::Report(Box::new(report))),
        proptest::collection::vec(arb_event(), 0usize..4).prop_map(Response::Events),
        arb_fault().prop_map(Response::Error),
    ]
}

// ---------------------------------------------------------------------------
// Satellite 1a: round-trip properties for every wire message.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// encode → decode is the identity for every request, the version
    /// handshake included.
    #[test]
    fn requests_round_trip(request in arb_request()) {
        let decoded = Request::decode(&request.encode()).expect("round trip");
        prop_assert_eq!(decoded, request);
    }

    /// encode → decode is the identity for every response, error
    /// frames and full service reports included.
    #[test]
    fn responses_round_trip(response in arb_response()) {
        let decoded = Response::decode(&response.encode()).expect("round trip");
        prop_assert_eq!(decoded, response);
    }

    /// Re-encoding a decoded message reproduces the original bytes —
    /// the encoding is canonical, which is what makes "bit-identical
    /// report" a meaningful claim.
    #[test]
    fn encoding_is_canonical(response in arb_response()) {
        let bytes = response.encode();
        let reencoded = Response::decode(&bytes).expect("decode").encode();
        prop_assert_eq!(reencoded, bytes);
    }
}

/// NaN payloads and signed zeros survive the wire bit-for-bit (the
/// `PartialEq`-based properties above cannot witness NaN).
#[test]
fn nan_payloads_round_trip_bitwise() {
    let weird = f64::from_bits(0x7ff8_dead_beef_0001); // NaN with payload
    for value in [weird, f64::NAN, -0.0, f64::INFINITY] {
        let request = Request::Tick { now: value };
        let bytes = request.encode();
        let reencoded = Request::decode(&bytes).expect("decode").encode();
        assert_eq!(reencoded, bytes);
        match Request::decode(&bytes).expect("decode") {
            Request::Tick { now } => assert_eq!(now.to_bits(), value.to_bits()),
            other => panic!("wrong message {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Satellite 1b: decode rejects garbage with typed errors, never panics.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating a valid frame at any point yields a typed error (or,
    /// for a handful of prefix lengths, a shorter valid message) —
    /// never a panic.
    #[test]
    fn truncated_requests_never_panic(request in arb_request(), cut in 0usize..2000) {
        let bytes = request.encode();
        let cut = cut % bytes.len().max(1);
        let _ = Request::decode(&bytes[..cut]); // must return, not panic
    }

    /// Arbitrary garbage decodes to a typed error or, rarely, a valid
    /// message — never a panic.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0usize..200)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// The server session is total over arbitrary frames: garbage in,
    /// a typed error frame out.
    #[test]
    fn session_answers_garbage_with_typed_faults(
        bytes in proptest::collection::vec(0u8..=255, 1usize..100),
    ) {
        let mut session = ServerSession::new(
            Arc::new(Mutex::new(fleet())),
            Arc::new(AtomicBool::new(false)),
        );
        let reply = session.handle_frame(&bytes);
        // The reply itself must be well-formed.
        let _ = Response::decode(&reply).expect("server reply decodes");
    }
}

#[test]
fn unknown_tags_are_typed_errors() {
    // 0x55 is no request tag.
    match Request::decode(&[0x55]) {
        Err(WireError::UnknownTag {
            context: "Request",
            tag: 0x55,
        }) => {}
        other => panic!("expected UnknownTag, got {other:?}"),
    }
    // Through the session it becomes an UnknownRequest fault frame.
    let mut session = ServerSession::new(
        Arc::new(Mutex::new(fleet())),
        Arc::new(AtomicBool::new(false)),
    );
    match Response::decode(&session.handle_frame(&[0x55])).expect("decodes") {
        Response::Error(Fault::UnknownRequest { tag: 0x55 }) => {}
        other => panic!("expected UnknownRequest fault, got {other:?}"),
    }
}

#[test]
fn oversized_sequence_prefix_is_rejected_before_allocation() {
    // A forged Completed frame advertising 2^64-1 tickets in 8 bytes.
    let mut bytes = vec![0x83]; // Completed tag
    bytes.extend_from_slice(&u64::MAX.to_le_bytes());
    match Response::decode(&bytes) {
        Err(WireError::LengthOverflow { .. }) => {}
        other => panic!("expected LengthOverflow, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = Request::Drain.encode();
    bytes.push(0xAA);
    match Request::decode(&bytes) {
        Err(WireError::TrailingBytes { count: 1 }) => {}
        other => panic!("expected TrailingBytes, got {other:?}"),
    }
}

#[test]
fn malformed_domain_values_are_rejected() {
    // A circuit frame smuggling an out-of-range gate: width 1, Cx(0, 1).
    let mut circuit = Circuit::with_name(2, "smuggle");
    circuit.try_push(Gate::Cx(0, 1)).unwrap();
    let good = Request::Submit(Box::new(JobRequest::new(circuit, 0.0))).encode();
    // Byte-surgery: shrink the encoded width from 2 to 1. Layout:
    // tag (1) | width u64 — so bytes[1..9] hold the width.
    let mut evil = good;
    evil[1..9].copy_from_slice(&1u64.to_le_bytes());
    match Request::decode(&evil) {
        Err(WireError::InvalidValue { context: "Circuit" }) => {}
        other => panic!("expected InvalidValue, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Satellite 2: mock transport — protocol without sockets or threads.
// ---------------------------------------------------------------------------

#[test]
fn mock_handshake_negotiates_minimum_of_versions() {
    // A newer client downgrades to our version.
    let client = Client::connect_with_version(MockTransport::new(fleet()), PROTOCOL_VERSION + 7)
        .expect("handshake");
    assert_eq!(client.version(), PROTOCOL_VERSION);
    // An exact match stays.
    let client = Client::connect(MockTransport::new(fleet())).expect("handshake");
    assert_eq!(client.version(), PROTOCOL_VERSION);
}

#[test]
fn mock_handshake_rejects_prehistoric_clients() {
    let too_old = MIN_SUPPORTED_VERSION - 1; // version 0 is never valid
    match Client::connect_with_version(MockTransport::new(fleet()), too_old)
        .err()
        .expect("handshake must fail")
    {
        ClientError::Fault(Fault::UnsupportedVersion { client, min, max }) => {
            assert_eq!(client, too_old);
            assert_eq!(min, MIN_SUPPORTED_VERSION);
            assert_eq!(max, PROTOCOL_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn requests_before_handshake_are_refused() {
    let mut transport = MockTransport::new(fleet());
    let reply = transport.call(&Request::Drain.encode()).expect("mock call");
    match Response::decode(&reply).expect("decodes") {
        Response::Error(Fault::HandshakeRequired) => {}
        other => panic!("expected HandshakeRequired, got {other:?}"),
    }
}

#[test]
fn mock_full_protocol_conversation() {
    let mut client = Client::connect(MockTransport::new(fleet())).expect("handshake");
    let ticket = client.submit(bell_request(0.0)).expect("submit");
    assert_eq!(ticket.seq, 0);
    // Not yet executed.
    assert!(client.report(ticket).expect("report").is_none());
    // An infinite horizon drains it.
    let done = client.tick(f64::INFINITY).expect("tick");
    assert_eq!(done, vec![ticket]);
    let result = client.report(ticket).expect("report").expect("completed");
    assert_eq!(result.job_id, ticket.id);
    let events = client.events().expect("events");
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::JobCompleted { .. })));
    let report = client.drain().expect("drain");
    assert_eq!(report.job_results.len(), 1);
}

#[test]
fn mock_take_result_claims_exactly_once_and_spares_the_drain() {
    let mut client = Client::connect(MockTransport::new(fleet())).expect("handshake");
    let ticket = client.submit(bell_request(0.0)).expect("submit");
    // Nothing to claim before the batch runs.
    assert!(client.take_result(ticket).expect("take").is_none());
    client.tick(f64::INFINITY).expect("tick");
    // First claim yields the result, the second is spent.
    let taken = client.take_result(ticket).expect("take").expect("claimed");
    assert_eq!(taken.job_id, ticket.id);
    assert!(client.take_result(ticket).expect("take").is_none());
    // The claim is not eviction: the peek still sees the canonical
    // copy, and the drained report carries the job as always.
    let peeked = client.report(ticket).expect("report").expect("retained");
    assert_eq!(peeked, taken);
    let report = client.drain().expect("drain");
    assert_eq!(report.job_results.len(), 1);
    assert_eq!(report.job_results[0], taken);
}

// ---------------------------------------------------------------------------
// Satellite 3: graceful shutdown loses no admitted job.
// ---------------------------------------------------------------------------

#[test]
fn shutdown_drains_every_admitted_job() {
    let service = Arc::new(Mutex::new(fleet()));
    let flag = Arc::new(AtomicBool::new(false));
    let mut client = Client::connect(MockTransport::over(Arc::clone(&service), Arc::clone(&flag)))
        .expect("handshake");
    let jobs = workload(5);
    let expected = jobs.len();
    let mut ids = Vec::new();
    for job in jobs {
        ids.push(client.submit(job).expect("submit").id);
    }
    // Shutdown must drain everything admitted before it...
    let report = client.shutdown().expect("shutdown");
    assert!(flag.load(Ordering::SeqCst), "shutdown flag raised");
    assert_eq!(report.job_results.len(), expected, "no job lost");
    let mut reported: Vec<u64> = report.job_results.iter().map(|r| r.job_id).collect();
    reported.sort_unstable();
    ids.sort_unstable();
    assert_eq!(reported, ids);
    // ...and later submissions are refused with a typed fault.
    match client.submit(bell_request(0.0)) {
        Err(ClientError::Fault(Fault::ShuttingDown)) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

#[test]
fn socket_shutdown_loses_no_job_and_stops_the_daemon() {
    let path = socket_path("shutdown");
    let handle = Daemon::spawn_unix(
        &path,
        fleet(),
        DaemonConfig {
            driver_cadence: None,
        },
    )
    .expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");
    for job in workload(4) {
        client.submit(job).expect("submit");
    }
    let report = client.shutdown().expect("shutdown");
    assert_eq!(report.job_results.len(), 4, "no job lost across shutdown");
    assert!(handle.is_shutting_down());
    handle.join(); // must terminate (accept loop saw the flag)
    assert!(!path.exists(), "socket file removed on join");
}

// ---------------------------------------------------------------------------
// Acceptance: bit-identical reports in-process / mock / live socket.
// ---------------------------------------------------------------------------

/// Drives a client through the canonical sequence: submit all, tick at
/// fixed simulated horizons, then drain.
fn drive_client<T: Transport>(client: &mut Client<T>, jobs: Vec<JobRequest>) -> ServiceReport {
    let horizons = [1_000.0, 250_000.0];
    let mut tickets = Vec::new();
    for job in jobs {
        tickets.push(client.submit(job).expect("submit"));
    }
    for &t in &horizons {
        client.tick(t).expect("tick");
    }
    let report = client.drain().expect("drain");
    for ticket in tickets {
        assert!(
            client.report(ticket).expect("report").is_some(),
            "every ticket resolved after drain"
        );
    }
    report
}

/// The same sequence against the service directly, no protocol.
fn drive_in_process(mut service: Service, jobs: Vec<JobRequest>) -> ServiceReport {
    let horizons = [1_000.0, 250_000.0];
    for job in jobs {
        service.submit(job).expect("submit");
    }
    for &t in &horizons {
        service.tick(t).expect("tick");
    }
    service.run_until_drained().expect("drain")
}

#[test]
fn report_is_bit_identical_across_in_process_mock_and_socket() {
    let in_process = drive_in_process(fleet(), workload(6));

    let mut mock_client = Client::connect(MockTransport::new(fleet())).expect("handshake");
    let via_mock = drive_client(&mut mock_client, workload(6));

    let path = socket_path("bitident");
    // The wall-clock driver stays off so simulated time is driven
    // solely by the client's ticks — same clock, same report.
    let handle = Daemon::spawn_unix(
        &path,
        fleet(),
        DaemonConfig {
            driver_cadence: None,
        },
    )
    .expect("spawn");
    let mut socket_client = Client::connect_unix(&path).expect("connect");
    let via_socket = drive_client(&mut socket_client, workload(6));
    handle.request_shutdown();
    handle.join();

    assert!(!in_process.job_results.is_empty(), "workload ran");
    assert_eq!(via_mock, in_process, "mock transport report differs");
    assert_eq!(via_socket, in_process, "socket report differs");
    // Bit-level identity, stronger than PartialEq: the encoded frames
    // match byte for byte.
    let encode = |r: &ServiceReport| Response::Report(Box::new(r.clone())).encode();
    assert_eq!(encode(&via_mock), encode(&in_process));
    assert_eq!(encode(&via_socket), encode(&in_process));
}

/// `advance_dispatch` (what the wall-clock driver calls) must leave
/// the completion queue for `tick` — otherwise a client's `Tick` would
/// race the driver cadence and lose notifications.
#[test]
fn advance_dispatch_preserves_completion_notifications() {
    let mut service = fleet();
    let ticket = service.submit(bell_request(0.0)).expect("submit");
    service
        .advance_dispatch(f64::INFINITY)
        .expect("advance_dispatch");
    // The batch ran (its result exists)...
    assert!(service.result(ticket).is_some(), "batch dispatched");
    // ...but the notification was not consumed: the next tick reports
    // it, exactly once.
    assert_eq!(service.tick(f64::INFINITY).expect("tick"), vec![ticket]);
    assert!(service.tick(f64::INFINITY).expect("tick").is_empty());
}

/// Same property through the daemon: with the wall-clock driver on,
/// a client that never ticked still receives the completion from its
/// own `Tick` — the driver advanced dispatch but did not consume the
/// notification.
#[test]
fn driver_leaves_completion_notifications_to_client_ticks() {
    let path = socket_path("driver-tick");
    let handle = Daemon::spawn_unix(
        &path,
        fleet(),
        DaemonConfig {
            driver_cadence: Some(std::time::Duration::from_millis(2)),
        },
    )
    .expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");
    let ticket = client.submit(bell_request(0.0)).expect("submit");
    // Wait until the driver has dispatched the batch...
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while client.report(ticket).expect("report").is_none() {
        assert!(
            std::time::Instant::now() < deadline,
            "driver never completed the job"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // ...then the notification must still be deliverable to *us*.
    assert_eq!(client.tick(f64::INFINITY).expect("tick"), vec![ticket]);
    client.shutdown().expect("shutdown");
    handle.join();
}

/// Pointing a second daemon at a live socket (or any non-socket path)
/// must fail without touching the original; only stale sockets are
/// reclaimed.
#[test]
fn spawn_unix_refuses_live_sockets_and_foreign_files() {
    // Live daemon: a second spawn fails AddrInUse and the first keeps
    // serving on the untouched socket.
    let path = socket_path("bind-live");
    let handle = Daemon::spawn_unix(
        &path,
        fleet(),
        DaemonConfig {
            driver_cadence: None,
        },
    )
    .expect("spawn");
    let err = match Daemon::spawn_unix(
        &path,
        fleet(),
        DaemonConfig {
            driver_cadence: None,
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("second daemon on a live socket must fail"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    let mut client = Client::connect_unix(&path).expect("first daemon still serves");
    client.submit(bell_request(0.0)).expect("submit");
    client.shutdown().expect("shutdown");
    handle.join();

    // A regular file at the path is refused, not deleted.
    let file = socket_path("bind-file");
    std::fs::write(&file, b"precious").expect("write");
    let err = match Daemon::spawn_unix(
        &file,
        fleet(),
        DaemonConfig {
            driver_cadence: None,
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("non-socket path must be refused"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    assert_eq!(std::fs::read(&file).expect("still there"), b"precious");
    std::fs::remove_file(&file).expect("cleanup");

    // A stale socket (no listener behind it) is reclaimed.
    let stale = socket_path("bind-stale");
    drop(std::os::unix::net::UnixListener::bind(&stale).expect("bind"));
    assert!(stale.exists(), "stale socket file left behind");
    let handle = Daemon::spawn_unix(
        &stale,
        fleet(),
        DaemonConfig {
            driver_cadence: None,
        },
    )
    .expect("stale socket is replaced");
    handle.request_shutdown();
    handle.join();
}

#[test]
fn wall_clock_driver_completes_jobs_without_client_ticks() {
    let path = socket_path("driver");
    let handle = Daemon::spawn_unix(
        &path,
        fleet(),
        DaemonConfig {
            driver_cadence: Some(std::time::Duration::from_millis(2)),
        },
    )
    .expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");
    let ticket = client.submit(bell_request(0.0)).expect("submit");
    // The driver folds real elapsed nanoseconds into tick(now); the
    // bell batch completes a few µs into simulated time, so it must
    // appear without this client ever calling tick.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let result = loop {
        if let Some(result) = client.report(ticket).expect("report") {
            break result;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "driver never completed the job"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    assert_eq!(result.job_id, ticket.id);
    assert_eq!(handle.driver_errors(), 0);
    client.shutdown().expect("shutdown");
    handle.join();
}
