//! Integration tests for the event-driven `qucp-runtime` service API:
//! the bit-for-bit Fifo equivalence contract against the legacy
//! `BatchScheduler::run`, job-conservation properties for every
//! admission policy, the backfill starvation bound (reconstructed from
//! the telemetry event log), multi-device dispatch, and the
//! heterogeneous-batch EFS gate.

// The equivalence suite intentionally exercises the deprecated wrapper.
#![allow(deprecated)]

use proptest::prelude::*;
use qucp_core::strategy;
use qucp_device::ibm;
use qucp_runtime::{
    skewed_jobs, synthetic_jobs, Backfill, BatchScheduler, EfsGate, ExecutionMode, Fifo, Job,
    JobRequest, RuntimeConfig, Service, ServiceReport, ShortestJobFirst, ShotParallelism,
    ShrinkReason,
};

fn runtime_cfg(max_parallel: usize, fidelity_threshold: Option<f64>) -> RuntimeConfig {
    RuntimeConfig {
        max_parallel,
        fidelity_threshold,
        seed: 77,
        optimize: true,
        mode: ExecutionMode::Concurrent,
        ..RuntimeConfig::default()
    }
}

/// Drains `jobs` through a Service built from the given parts.
fn drain(
    jobs: &[Job],
    cfg: RuntimeConfig,
    policy_name: &str,
    device: qucp_device::Device,
) -> ServiceReport {
    let builder = Service::builder()
        .device(device)
        .strategy(strategy::qucp(4.0))
        .config(cfg);
    let builder = match policy_name {
        "fifo" => builder.policy(Fifo),
        "backfill" => builder.policy(Backfill { max_overtakes: 2 }),
        "sjf" => builder.policy(ShortestJobFirst),
        other => panic!("unknown policy {other}"),
    };
    let mut service = builder.build().expect("build");
    for job in jobs {
        service.submit(JobRequest::from_job(job)).expect("submit");
    }
    service.run_until_drained().expect("drain")
}

/// Acceptance: `Service` + `Fifo` + a single device reproduces the
/// legacy `BatchScheduler::run` output bit-for-bit on the PR-1
/// equivalence workloads, with and without the head-only EFS gate.
#[test]
fn service_fifo_single_device_matches_batch_scheduler_bit_for_bit() {
    let jobs = synthetic_jobs(12, 300.0, 256, 0xACCE);
    for max_parallel in [1usize, 4] {
        for threshold in [None, Some(0.0), Some(1e9)] {
            let cfg = runtime_cfg(max_parallel, threshold);
            let legacy = BatchScheduler::new(ibm::toronto(), strategy::qucp(4.0), cfg.clone())
                .run(&jobs)
                .expect("legacy run");
            let report = drain(&jobs, cfg, "fifo", ibm::toronto());
            assert_eq!(
                report.stats, legacy.stats,
                "k={max_parallel} t={threshold:?}"
            );
            assert_eq!(
                report.batches, legacy.batches,
                "k={max_parallel} t={threshold:?}"
            );
            assert_eq!(
                report.job_results, legacy.job_results,
                "k={max_parallel} t={threshold:?}"
            );
        }
    }
}

/// Golden snapshot of the seed scheduler's FIFO decisions, frozen at
/// the service redesign. `BatchScheduler::run` is now a wrapper over
/// `Service`, so the bit-for-bit test above pins the two *entry points*
/// against each other but cannot by itself detect a drift common to
/// both; this test freezes the absolute behaviour — exact batch
/// memberships (pure integer scheduling decisions) and queue statistics
/// (tight tolerance, the runtime is deterministic) — so any change to
/// the FIFO path is loud.
#[test]
fn fifo_scheduling_decisions_match_golden_snapshot() {
    let jobs = synthetic_jobs(12, 300.0, 256, 0xACCE);
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * b.abs().max(1.0);

    let dedicated = drain(&jobs, runtime_cfg(1, None), "fifo", ibm::toronto());
    let memberships: Vec<Vec<u64>> = dedicated
        .batches
        .iter()
        .map(|b| b.job_ids.clone())
        .collect();
    let expected: Vec<Vec<u64>> = (0..12u64).map(|i| vec![i]).collect();
    assert_eq!(memberships, expected);
    assert!(close(dedicated.stats.mean_waiting, 48067.625360));
    assert!(close(dedicated.stats.mean_turnaround, 58205.290525));
    assert!(close(dedicated.stats.makespan, 121657.746283));
    assert!(close(dedicated.stats.mean_throughput, 0.162435));

    let packed = drain(&jobs, runtime_cfg(4, None), "fifo", ibm::toronto());
    let memberships: Vec<Vec<u64>> = packed.batches.iter().map(|b| b.job_ids.clone()).collect();
    assert_eq!(
        memberships,
        vec![vec![0], vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 11]]
    );
    assert!(close(packed.stats.mean_waiting, 19042.832443));
    assert!(close(packed.stats.mean_turnaround, 34692.747438));
    assert!(close(packed.stats.makespan, 56569.286641));
    assert!(close(packed.stats.mean_throughput, 0.360557));
}

/// Acceptance: on a skewed-arrival workload whose heavy jobs block the
/// FIFO head of line, both `Backfill` and `ShortestJobFirst` beat
/// `Fifo` mean turnaround.
#[test]
fn backfill_and_sjf_beat_fifo_on_skewed_arrivals() {
    let jobs = skewed_jobs(12, 13, 50.0, 32, 7);
    let fifo = drain(&jobs, runtime_cfg(3, None), "fifo", ibm::melbourne());
    let backfill = drain(&jobs, runtime_cfg(3, None), "backfill", ibm::melbourne());
    let sjf = drain(&jobs, runtime_cfg(3, None), "sjf", ibm::melbourne());
    assert!(
        backfill.stats.mean_turnaround < fifo.stats.mean_turnaround,
        "backfill {} !< fifo {}",
        backfill.stats.mean_turnaround,
        fifo.stats.mean_turnaround
    );
    assert!(
        sjf.stats.mean_turnaround < fifo.stats.mean_turnaround,
        "sjf {} !< fifo {}",
        sjf.stats.mean_turnaround,
        fifo.stats.mean_turnaround
    );
}

/// Counts, for every job, how many batches overtook it: batches that
/// started while the job was pending (arrived, not yet served) and
/// carried some job submitted after it.
fn overtake_counts(jobs: &[Job], report: &ServiceReport) -> Vec<usize> {
    jobs.iter()
        .map(|job| {
            let own_batch = report
                .job_results
                .iter()
                .find(|r| r.job_id == job.id)
                .expect("job served")
                .batch_index;
            report
                .batches
                .iter()
                .filter(|b| {
                    b.batch_index < own_batch
                        && job.arrival <= b.start
                        && b.job_ids.iter().all(|&id| id != job.id)
                        && b.job_ids.iter().any(|&id| id > job.id)
                })
                .count()
        })
        .collect()
}

/// The backfill starvation bound holds: heavy jobs are overtaken, but
/// never by more than `max_overtakes` batches. FIFO never overtakes at
/// all.
#[test]
fn backfill_overtakes_are_bounded_and_fifo_never_overtakes() {
    let jobs = skewed_jobs(10, 13, 50.0, 32, 3);
    let backfill = drain(&jobs, runtime_cfg(3, None), "backfill", ibm::melbourne());
    let counts = overtake_counts(&jobs, &backfill);
    assert!(
        counts.iter().any(|&c| c > 0),
        "backfill never backfilled: {counts:?}"
    );
    assert!(
        counts.iter().all(|&c| c <= 2),
        "starvation bound violated: {counts:?}"
    );
    let fifo = drain(&jobs, runtime_cfg(3, None), "fifo", ibm::melbourne());
    assert!(overtake_counts(&jobs, &fifo).iter().all(|&c| c == 0));
}

/// One service dispatches across two chips: wide jobs route to the only
/// device that admits them, the fleet splits the load, and the
/// per-device statistics reconcile with the fleet totals.
#[test]
fn multi_device_dispatch_routes_by_topology() {
    let mut service = Service::builder()
        .device(ibm::melbourne())
        .device(ibm::toronto())
        .strategy(strategy::qucp(4.0))
        .max_parallel(3)
        .seed(5)
        .build()
        .expect("build");
    let mut tickets = Vec::new();
    for job in synthetic_jobs(8, 100.0, 32, 0xD15)
        .iter()
        .chain(skewed_jobs(2, 18, 100.0, 8, 1).iter().skip(1).take(1))
    {
        tickets.push(service.submit(JobRequest::from_job(job)).expect("submit"));
    }
    let report = service.run_until_drained().expect("drain");
    assert_eq!(report.job_results.len(), 9);
    assert_eq!(report.per_device.len(), 2);
    // The 18-qubit GHZ job can only run on Toronto (27q).
    let toronto = ibm::toronto();
    let wide_batch = report
        .batches
        .iter()
        .find(|b| b.used_qubits >= 18)
        .expect("wide batch dispatched");
    assert_eq!(wide_batch.device, toronto.name());
    // Both chips served load, and the breakdown reconciles.
    assert!(report.per_device.iter().all(|d| d.jobs > 0));
    assert_eq!(
        report.per_device.iter().map(|d| d.jobs).sum::<usize>(),
        report.job_results.len()
    );
    assert_eq!(
        report
            .per_device
            .iter()
            .map(|d| d.stats.batches)
            .sum::<usize>(),
        report.stats.batches
    );
    let fleet_makespan = report
        .per_device
        .iter()
        .map(|d| d.stats.makespan)
        .fold(0.0f64, f64::max);
    assert_eq!(report.stats.makespan, fleet_makespan);
}

/// The heterogeneous-batch EFS gate enforces per-member thresholds: a
/// zero threshold on competing copies forces shrinks (visible in the
/// event log), while a generous threshold packs the same submissions
/// into one batch.
#[test]
fn batch_efs_gate_shrinks_by_member_tolerance() {
    let run = |threshold: f64| {
        let mut service = Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .max_parallel(3)
            .fidelity_threshold(Some(threshold))
            .efs_gate(EfsGate::Batch)
            .default_shots(32)
            .seed(13)
            .build()
            .expect("build");
        let fredkin = qucp_circuit::library::by_name("fredkin").unwrap().circuit();
        for i in 0..3 {
            let mut c = fredkin.clone();
            c.set_name(format!("fredkin#{i}"));
            service
                .submit(JobRequest::new(c, 0.0).with_id(i))
                .expect("submit");
        }
        let report = service.run_until_drained().expect("drain");
        let log = service.event_log().clone();
        (report, log)
    };
    let (strict, strict_log) = run(0.0);
    let (loose, loose_log) = run(1e9);
    assert!(
        strict.stats.batches > loose.stats.batches,
        "strict {} !> loose {}",
        strict.stats.batches,
        loose.stats.batches
    );
    assert!(strict_log.shrink_count(ShrinkReason::FidelityGate) >= 1);
    assert_eq!(loose_log.shrink_count(ShrinkReason::FidelityGate), 0);
    assert_eq!(loose.stats.batches, 1);
}

/// Worst-excess eviction drops the member whose partition degraded
/// most — here the *middle* member, which tail-shrink would never pick
/// first — and the evicted id matches the independently computed
/// `batch_efs_excesses` argmax (head exempt).
#[test]
fn worst_excess_gate_evicts_the_worst_member_not_the_tail() {
    let dev = ibm::toronto();
    let strat = strategy::qucp(4.0);
    let members = ["adder", "fredkin", "linearsolver"];
    let circuits: Vec<qucp_circuit::Circuit> = members
        .iter()
        .map(|n| qucp_circuit::library::by_name(n).unwrap().circuit())
        .collect();
    // Independent ground truth for the first eviction.
    let refs: Vec<&qucp_circuit::Circuit> = circuits.iter().collect();
    let excesses = qucp_core::threshold::batch_efs_excesses(&dev, &refs, &strat).expect("excesses");
    let expected_evict = (1..excesses.len())
        .max_by(|&a, &b| excesses[a].total_cmp(&excesses[b]).then(a.cmp(&b)))
        .unwrap() as u64;
    assert_eq!(expected_evict, 1, "combo chosen so the worst is mid-batch");
    assert!(excesses[1] > 0.08, "threshold must actually trip");

    let first_fidelity_drop = |gate: EfsGate| {
        let mut service = Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .max_parallel(3)
            .fidelity_threshold(Some(0.08))
            .efs_gate(gate)
            .default_shots(32)
            .seed(13)
            .build()
            .expect("build");
        for (i, c) in circuits.iter().enumerate() {
            service
                .submit(JobRequest::new(c.clone(), 0.0).with_id(i as u64))
                .expect("submit");
        }
        let report = service.run_until_drained().expect("drain");
        assert_eq!(report.job_results.len(), 3, "jobs conserved under {gate:?}");
        report
            .events
            .iter()
            .find_map(|e| match e {
                qucp_runtime::Event::BatchShrunk {
                    dropped_job_id,
                    reason: ShrinkReason::FidelityGate,
                    ..
                } => Some(*dropped_job_id),
                _ => None,
            })
            .expect("gate must shrink at least once")
    };
    assert_eq!(
        first_fidelity_drop(EfsGate::BatchWorstExcess),
        expected_evict
    );
    // Tail-shrink on the same workload drops the tail member first.
    assert_eq!(first_fidelity_drop(EfsGate::Batch), 2);
}

/// With a threshold no member trips, the worst-excess gate is
/// indistinguishable from the tail gate (and from no gate at all).
#[test]
fn worst_excess_gate_matches_batch_gate_when_threshold_is_loose() {
    let run = |gate: EfsGate| {
        let mut service = Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .max_parallel(3)
            .fidelity_threshold(Some(1e9))
            .efs_gate(gate)
            .default_shots(32)
            .seed(13)
            .build()
            .expect("build");
        for (i, name) in ["adder", "fredkin", "linearsolver"].iter().enumerate() {
            let c = qucp_circuit::library::by_name(name).unwrap().circuit();
            service
                .submit(JobRequest::new(c, 0.0).with_id(i as u64))
                .expect("submit");
        }
        service.run_until_drained().expect("drain")
    };
    let worst = run(EfsGate::BatchWorstExcess);
    let tail = run(EfsGate::Batch);
    assert_eq!(worst.stats, tail.stats);
    assert_eq!(worst.job_results, tail.job_results);
    assert_eq!(worst.stats.batches, 1);
}

/// Intra-program shot sharding at the service level: the drained
/// report is bit-for-bit identical whatever the worker-thread count,
/// and whatever the per-batch execution mode — determinism stacks.
#[test]
fn sharded_service_reports_are_thread_count_invariant() {
    let jobs = synthetic_jobs(6, 250.0, 512, 0x51AD);
    let run = |threads: usize, mode: ExecutionMode| {
        let mut service = Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .max_parallel(3)
            .seed(9)
            .mode(mode)
            .shot_parallelism(ShotParallelism::Sharded { shards: 4, threads })
            .build()
            .expect("build");
        for job in &jobs {
            service.submit(JobRequest::from_job(job)).expect("submit");
        }
        service.run_until_drained().expect("drain")
    };
    let reference = run(1, ExecutionMode::Concurrent);
    for threads in [2, 4] {
        assert_eq!(run(threads, ExecutionMode::Concurrent), reference);
    }
    assert_eq!(run(4, ExecutionMode::Serial), reference);
    // Sharded execution actually changes the sampled trajectories
    // relative to the serial stream (different, equally valid sample).
    let serial = drain(
        &jobs,
        RuntimeConfig {
            max_parallel: 3,
            fidelity_threshold: None,
            seed: 9,
            optimize: true,
            mode: ExecutionMode::Concurrent,
            ..RuntimeConfig::default()
        },
        "fifo",
        ibm::toronto(),
    );
    assert_ne!(serial.job_results, reference.job_results);
    // But the schedule itself (which ignores counts) is unchanged.
    assert_eq!(serial.stats, reference.stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Every admission policy conserves jobs on random bursts: each
    /// submitted job is served exactly once, batches partition the job
    /// set, and waiting times respect arrivals.
    #[test]
    fn policies_conserve_jobs(
        n in 3usize..9,
        gap in 50.0f64..500.0,
        seed in 0u64..1000,
        policy in 0usize..3,
    ) {
        let jobs = synthetic_jobs(n, gap, 16, seed);
        let policy = ["fifo", "backfill", "sjf"][policy];
        let report = drain(&jobs, runtime_cfg(3, None), policy, ibm::toronto());
        prop_assert_eq!(report.job_results.len(), n);
        let mut served: Vec<u64> = report
            .batches
            .iter()
            .flat_map(|b| b.job_ids.iter().copied())
            .collect();
        served.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(served, expected);
        for r in &report.job_results {
            prop_assert!(r.waiting >= 0.0);
            prop_assert!(r.turnaround >= r.waiting);
            prop_assert_eq!(r.result.counts.shots(), 16);
        }
        // The event log tells the same story.
        let submitted = report.events.iter().filter(|e| {
            matches!(e, qucp_runtime::Event::JobSubmitted { .. })
        }).count();
        let completed = report.events.iter().filter(|e| {
            matches!(e, qucp_runtime::Event::JobCompleted { .. })
        }).count();
        prop_assert_eq!(submitted, n);
        prop_assert_eq!(completed, n);
    }
}
