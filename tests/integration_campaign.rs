//! Integration tests for the campaign / result-delivery seam: the
//! `take_result` exactly-once contract (None before completion, Some
//! once, None after; the drained report unchanged by any claim
//! schedule), proptests over random claim/tick interleavings crossed
//! with every admission policy, the campaign loop's serial ==
//! concurrent determinism, and the per-job routing-override pins
//! (no override == explicit default override == bit-identical report;
//! an all-jobs override == the same policy set service-wide).

use proptest::prelude::*;
use qucp_bench::skewed_fleet;
use qucp_circuit::library;
use qucp_runtime::{
    run_campaign, skewed_jobs, Backfill, CalibrationAware, CampaignDriver, ExecutionMode, Fifo,
    JobRequest, JobResult, JobTicket, RoutingChoice, Service, ShortestJobFirst,
};

// ---------------------------------------------------------------------------
// Fixtures.
// ---------------------------------------------------------------------------

fn service_with_policy(policy_tag: u8) -> Service {
    let builder = Service::builder()
        .device(qucp_device::ibm::melbourne())
        .max_parallel(3)
        .default_shots(32)
        .seed(13);
    match policy_tag % 3 {
        0 => builder.policy(Fifo),
        1 => builder.policy(Backfill::default()),
        _ => builder.policy(ShortestJobFirst),
    }
    .build()
    .expect("build service")
}

fn workload(n: usize) -> Vec<JobRequest> {
    skewed_jobs(n, 8, 250.0, 32, 0xCA4A)
        .iter()
        .map(JobRequest::from_job)
        .collect()
}

// ---------------------------------------------------------------------------
// The exactly-once claim contract, deterministically.
// ---------------------------------------------------------------------------

#[test]
fn take_result_is_exactly_once_and_never_disturbs_the_drain() {
    let mut claimed = service_with_policy(0);
    let mut control = service_with_policy(0);
    let mut tickets = Vec::new();
    for request in workload(6) {
        tickets.push(claimed.submit(request.clone()).expect("submit"));
        control.submit(request).expect("submit");
    }
    // Nothing has run: every claim is None and spends nothing.
    for t in &tickets {
        assert!(claimed.take_result(t).is_none());
    }
    claimed.tick(f64::INFINITY).expect("tick");
    for t in &tickets {
        let taken = claimed.take_result(t).expect("first claim yields");
        assert_eq!(taken.job_id, t.id);
        // The peek still sees the canonical copy after the claim…
        assert_eq!(claimed.result(*t), Some(&taken));
        // …but the ticket is spent.
        assert!(claimed.take_result(t).is_none());
    }
    // The drained report is invariant under any claim schedule.
    let claimed_report = claimed.run_until_drained().expect("drain");
    let control_report = control.run_until_drained().expect("drain");
    assert_eq!(claimed_report, control_report);
}

// ---------------------------------------------------------------------------
// Random claim/tick interleavings × admission policies.
// ---------------------------------------------------------------------------

/// One step of a random retrieval schedule.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Advance the clock by this many simulated ns.
    Tick(f64),
    /// Try to claim ticket `index % tickets.len()`.
    Claim(usize),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0.0f64..30_000.0).prop_map(Step::Tick),
            (0usize..64).prop_map(Step::Claim),
        ],
        0usize..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under every admission policy and any interleaving of clock
    /// advances and claims: a ticket yields `Some` at most once, only
    /// after its batch ran, always equal to the non-consuming peek —
    /// and the end-of-run drained report is bit-identical to a twin
    /// service that never claimed anything.
    #[test]
    fn claims_are_exactly_once_under_any_interleaving(
        policy_tag in 0u8..3,
        steps in arb_steps(),
    ) {
        let mut claimed = service_with_policy(policy_tag);
        let mut control = service_with_policy(policy_tag);
        let mut tickets: Vec<JobTicket> = Vec::new();
        for request in workload(8) {
            tickets.push(claimed.submit(request.clone()).expect("submit"));
            control.submit(request).expect("submit");
        }
        let mut now = 0.0;
        let mut claims = vec![0usize; tickets.len()];
        for step in steps {
            match step {
                Step::Tick(delta) => {
                    now += delta;
                    claimed.tick(now).expect("tick");
                }
                Step::Claim(i) => {
                    let idx = i % tickets.len();
                    let peek = claimed.result(tickets[idx]).cloned();
                    if let Some(taken) = claimed.take_result(&tickets[idx]) {
                        claims[idx] += 1;
                        // A claim only ever yields the canonical result.
                        prop_assert_eq!(Some(&taken), peek.as_ref());
                        prop_assert_eq!(taken.job_id, tickets[idx].id);
                    } else {
                        // Refused because unfinished or already spent.
                        prop_assert!(peek.is_none() || claims[idx] == 1);
                    }
                }
            }
        }
        for &c in &claims {
            prop_assert!(c <= 1, "a ticket was claimed {c} times");
        }
        // The pin: mid-stream retrieval never changes what the drain
        // reports.
        let claimed_report = claimed.run_until_drained().expect("drain");
        let control_report = control.run_until_drained().expect("drain");
        prop_assert_eq!(claimed_report, control_report);
    }
}

// ---------------------------------------------------------------------------
// The campaign loop: deterministic across execution modes.
// ---------------------------------------------------------------------------

/// A minimal iterative driver: three rounds of small library circuits,
/// folding mean turnaround — enough to exercise submit/await/claim
/// without any application physics.
struct RoundsDriver {
    rounds: usize,
    folded: Vec<f64>,
}

impl CampaignDriver for RoundsDriver {
    type Output = Vec<f64>;

    fn next_batch(&mut self, round: usize) -> Option<Vec<JobRequest>> {
        if round >= self.rounds {
            return None;
        }
        let names = ["bell", "fredkin", "qec"];
        Some(
            names
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let mut c = library::by_name(name).expect("library benchmark").circuit();
                    c.set_name(format!("{name}_r{round}_{i}"));
                    JobRequest::new(c, 0.0).with_shots(16)
                })
                .collect(),
        )
    }

    fn fold(&mut self, _round: usize, results: &[JobResult]) {
        let mean = results.iter().map(|r| r.turnaround).sum::<f64>() / results.len() as f64;
        self.folded.push(mean);
    }

    fn finish(self) -> Vec<f64> {
        self.folded
    }
}

#[test]
fn campaign_loop_is_mode_invariant_and_accounts_correctly() {
    let run = |mode| {
        let mut svc = Service::builder()
            .device(qucp_device::ibm::melbourne())
            .max_parallel(3)
            .default_shots(16)
            .seed(21)
            .mode(mode)
            .build()
            .expect("build service");
        run_campaign(
            &mut svc,
            RoundsDriver {
                rounds: 3,
                folded: Vec::new(),
            },
        )
        .expect("campaign drains")
    };
    let serial = run(ExecutionMode::Serial);
    let concurrent = run(ExecutionMode::Concurrent);
    assert_eq!(serial, concurrent, "campaign must be mode-invariant");
    assert_eq!(serial.stats.rounds, 3);
    assert_eq!(serial.stats.jobs, 9);
    assert!(serial.stats.batches >= 3);
    assert!(serial.stats.makespan > 0.0);
    assert_eq!(serial.output.len(), 3);
    // Rounds arrive at the campaign clock, so the makespan is the last
    // round's completion and every fold saw a full batch.
    assert!(serial.output.iter().all(|&t| t > 0.0));
}

// ---------------------------------------------------------------------------
// Per-job routing overrides: the equivalence pins.
// ---------------------------------------------------------------------------

fn drained_with_overrides(routing: Option<RoutingChoice>) -> qucp_runtime::ServiceReport {
    let mut service = Service::builder()
        .registry(skewed_fleet())
        .max_parallel(3)
        .default_shots(32)
        .seed(29)
        .build()
        .expect("build service");
    for mut request in workload(9) {
        request.routing = routing;
        service.submit(request).expect("submit");
    }
    service.run_until_drained().expect("drain")
}

#[test]
fn no_override_equals_explicit_default_override_bit_for_bit() {
    // `None` and an explicit override naming the service default must
    // route identically — same batches, same devices, same results.
    let unset = drained_with_overrides(None);
    let explicit = drained_with_overrides(Some(RoutingChoice::EarliestFree));
    assert_eq!(unset, explicit);
}

#[test]
fn all_jobs_override_equals_service_wide_policy() {
    // Every head carrying the CalibrationAware override is
    // indistinguishable from building the service with that policy.
    let pressure = CalibrationAware::DEFAULT_PRESSURE_PER_NS;
    let overridden = drained_with_overrides(Some(RoutingChoice::CalibrationAware {
        pressure_per_ns: pressure,
    }));
    let mut service_wide = Service::builder()
        .registry(skewed_fleet())
        .routing(CalibrationAware::default())
        .max_parallel(3)
        .default_shots(32)
        .seed(29)
        .build()
        .expect("build service");
    for request in workload(9) {
        service_wide.submit(request).expect("submit");
    }
    let baseline = service_wide.run_until_drained().expect("drain");
    assert_eq!(overridden, baseline);
    // And the override actually matters on the skewed fleet: it routes
    // differently from the earliest-free default.
    let default_routed = drained_with_overrides(None);
    assert_ne!(overridden.batches, default_routed.batches);
}
