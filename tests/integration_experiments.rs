//! Integration tests asserting the *shape* of every paper experiment at
//! reduced scale: who wins, what grows, where the structure lands.

use qucp_bench::combo_circuits;
use qucp_circuit::library;
use qucp_core::{
    efs_difference, parallel_count_for_threshold, strategy, threshold_sweep, ParallelConfig,
};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;
use qucp_srb::{srb_groups, srb_overhead};
use qucp_vqe::{run_h2_experiment, VqeExperiment};
use qucp_zne::{run_zne_comparison, ZneExperiment};

#[test]
fn table1_shape() {
    // Overheads grow with chip size; the job formula matches the paper.
    let toronto = srb_overhead(&ibm::toronto(), 5);
    let manhattan = srb_overhead(&ibm::manhattan(), 5);
    assert_eq!(toronto.links, 28);
    assert_eq!(manhattan.links, 72);
    assert_eq!(toronto.jobs, 3 * toronto.groups * 5);
    assert_eq!(manhattan.jobs, 3 * manhattan.groups * 5);
    assert!(manhattan.jobs >= toronto.jobs);
    // Grouping is far below the pair count (the whole point).
    assert!(toronto.groups < toronto.one_hop_pairs);
    assert_eq!(srb_groups(ibm::toronto().topology()).len(), toronto.groups);
}

#[test]
fn sigma_four_matches_qumc_quality() {
    // The sigma-tuning claim at experiment scale: with sigma = 4, QuCP's
    // chosen partitions are never next to strongly coupled links, like
    // QuMC's (checked through the accepted-crosstalk-pairs count).
    let device = ibm::toronto();
    let programs = combo_circuits(&["adder", "fred", "alu"]);
    let (_, qucp_allocs, _) =
        qucp_core::plan_workload(&device, &programs, &strategy::qucp(4.0), true).unwrap();
    for a in &qucp_allocs {
        assert!(
            a.efs.crosstalk_pairs.is_empty(),
            "sigma=4 should avoid one-hop adjacency on an idle Toronto"
        );
    }
}

#[test]
fn fig3_shape_qucp_beats_cna_on_aggregate() {
    // Reduced Fig. 3: two representative combos, fewer shots. QuCP must
    // beat CNA on aggregate (the paper's headline result).
    let device = ibm::toronto();
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default()
            .with_shots(2048)
            .with_seed(20220314),
        optimize: true,
    };
    let combos = [["adder", "4mod", "alu"], ["4mod", "fred", "alu"]];
    let mut qucp_total = 0.0;
    let mut cna_total = 0.0;
    for combo in &combos {
        let programs = combo_circuits(combo);
        qucp_total += execute_parallel_pst(&device, &programs, &strategy::qucp(4.0), &cfg);
        cna_total += execute_parallel_pst(&device, &programs, &strategy::cna(), &cfg);
    }
    assert!(
        qucp_total > cna_total,
        "QuCP aggregate PST {qucp_total} should beat CNA {cna_total}"
    );
}

fn execute_parallel_pst(
    device: &qucp_device::Device,
    programs: &[qucp_circuit::Circuit],
    strat: &qucp_core::Strategy,
    cfg: &ParallelConfig,
) -> f64 {
    qucp_core::execute_parallel(device, programs, strat, cfg)
        .expect("run")
        .mean_pst()
        .expect("deterministic benchmarks")
}

#[test]
fn fig4_shape_threshold_monotone() {
    let device = ibm::manhattan();
    let circuit = library::by_name("4mod5-v1_22").unwrap().circuit();
    let strat = strategy::qucp(4.0);
    // EFS difference is monotone in k.
    let mut last = 0.0;
    for k in 1..=6 {
        let d = efs_difference(&device, &circuit, k, &strat).unwrap();
        assert!(d >= last - 1e-12, "difference not monotone at k={k}");
        last = d;
    }
    // Admission count is monotone in the threshold, 1 at zero, 6 at inf.
    assert_eq!(
        parallel_count_for_threshold(&device, &circuit, 0.0, 6, &strat).unwrap(),
        1
    );
    assert_eq!(
        parallel_count_for_threshold(&device, &circuit, f64::INFINITY, 6, &strat).unwrap(),
        6
    );
    // Sweep: throughput strictly grows with the admitted count.
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default().with_shots(256),
        optimize: true,
    };
    let points = threshold_sweep(&device, &circuit, &[0.0, 0.05, 1e9], 6, &strat, &cfg).unwrap();
    assert!(points
        .windows(2)
        .all(|w| w[0].parallel_count <= w[1].parallel_count));
    assert!(points
        .windows(2)
        .all(|w| w[0].throughput <= w[1].throughput + 1e-12));
}

#[test]
fn table3_shape_vqe() {
    let device = ibm::manhattan();
    let exp = VqeExperiment {
        theta_points: 8,
        reps: 2,
        shots: 2048,
        seed: 4242,
        strategy: strategy::qucp(4.0),
    };
    let report = run_h2_experiment(&device, &exp).unwrap();
    // Structure: nc = 16, throughputs 3.1% and 49.2%.
    assert_eq!(report.nc, 16);
    assert!((report.pg_throughput - 2.0 / 65.0).abs() < 1e-12);
    assert!((report.parallel_throughput - 32.0 / 65.0).abs() < 1e-12);
    // Error regime: both processes land within ~15% of the baseline
    // minimum (the paper reports <10% on hardware).
    assert!(report.delta_base_pg() < 15.0);
    assert!(report.delta_base_parallel() < 20.0);
    // The variational principle anchors the exact value below everything.
    assert!(report.exact <= report.sim_min + 1e-9);
}

#[test]
fn fig6_shape_zne() {
    // Reduced Fig. 6 on two benchmarks: mitigation (either form) must
    // beat the unmitigated baseline on aggregate.
    let device = ibm::manhattan();
    let mut baseline = 0.0;
    let mut parallel = 0.0;
    let mut independent = 0.0;
    for name in ["fredkin", "alu-v0_27"] {
        let circuit = library::by_name(name).unwrap().circuit();
        let exp = ZneExperiment {
            shots: 2048,
            seed: 99,
            strategy: strategy::qucp(4.0),
            ..ZneExperiment::default()
        };
        let out = run_zne_comparison(&device, &circuit, &exp).unwrap();
        baseline += out.baseline_error;
        parallel += out.parallel_error;
        independent += out.independent_error;
    }
    assert!(
        parallel < baseline,
        "QuCP+ZNE {parallel} should beat baseline {baseline}"
    );
    assert!(
        independent < baseline,
        "ZNE {independent} should beat baseline {baseline}"
    );
}

#[test]
fn queue_motivation_shape() {
    use qucp_core::queue::{simulate_queue, synthetic_workload};
    let jobs = synthetic_workload(60, 3);
    let solo = simulate_queue(&jobs, 27, 1).unwrap();
    let packed = simulate_queue(&jobs, 27, 4).unwrap();
    assert!(packed.mean_waiting < solo.mean_waiting);
    assert!(packed.makespan < solo.makespan);
    assert!(packed.mean_throughput > solo.mean_throughput);
}
