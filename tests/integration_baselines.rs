//! Integration tests of the baseline strategies against QuCP: every
//! policy must run every workload; the quality ordering must reflect the
//! paper's Sec. II-B analysis.

use qucp_bench::{combo_circuits, FIG3A_COMBOS, FIG3B_COMBOS};
use qucp_core::{execute_parallel, plan_workload, strategy, ParallelConfig, Strategy};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;

fn all_strategies(device: &qucp_device::Device) -> Vec<Strategy> {
    vec![
        strategy::qucp(4.0),
        strategy::qumc_with_ground_truth(device),
        strategy::multiqc(),
        strategy::qucloud(),
        strategy::cna(),
        strategy::cna_serialized(),
    ]
}

#[test]
fn every_strategy_places_every_fig3_workload() {
    let device = ibm::toronto();
    for strat in all_strategies(&device) {
        for combo in FIG3A_COMBOS.iter().chain(FIG3B_COMBOS.iter()) {
            let programs = combo_circuits(combo);
            let (_, allocs, _) = plan_workload(&device, &programs, &strat, true)
                .unwrap_or_else(|e| panic!("{} failed on {combo:?}: {e}", strat.name));
            // Disjoint, connected, right-sized.
            let mut all: Vec<usize> = allocs.iter().flat_map(|a| a.qubits.clone()).collect();
            let n = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), n, "{}: overlap on {combo:?}", strat.name);
            for (a, p) in allocs.iter().zip(&programs) {
                assert_eq!(a.qubits.len(), p.width());
                assert!(device.topology().is_connected_subset(&a.qubits));
            }
        }
    }
}

#[test]
fn noise_aware_partitions_have_lower_efs_than_topology_greedy() {
    // MultiQC minimizes EFS directly, so its chosen partitions must not
    // score worse than CNA's calibration-blind ones.
    let device = ibm::toronto();
    for combo in &FIG3B_COMBOS[..4] {
        let programs = combo_circuits(combo);
        let (_, aware, _) = plan_workload(&device, &programs, &strategy::multiqc(), true).unwrap();
        let (_, blind, _) = plan_workload(&device, &programs, &strategy::cna(), true).unwrap();
        let aware_total: f64 = aware.iter().map(|a| a.efs.score).sum();
        let blind_total: f64 = blind.iter().map(|a| a.efs.score).sum();
        assert!(
            aware_total <= blind_total + 1e-9,
            "{combo:?}: aware {aware_total} vs blind {blind_total}"
        );
    }
}

#[test]
fn crosstalk_aware_strategies_accept_no_strong_adjacency() {
    // QuCP(sigma=4) and QuMC must avoid placing partitions one hop from
    // strongly coupled links; crosstalk-blind policies may not.
    let device = ibm::toronto();
    let programs = combo_circuits(&["qec", "var", "bell"]);
    for strat in [
        strategy::qucp(4.0),
        strategy::qumc_with_ground_truth(&device),
    ] {
        let (_, allocs, mapped) = plan_workload(&device, &programs, &strat, true).unwrap();
        let ctx = qucp_core::context::build_context(&device, &mapped, false);
        // Any surviving conflicts must involve only weak ground-truth
        // gammas for the sigma policy (it already refused adjacency).
        for s in &ctx.scalings {
            assert!(
                s.max_factor() < 2.5,
                "{}: strong crosstalk accepted (factor {})",
                strat.name,
                s.max_factor()
            );
        }
        let _ = allocs;
    }
}

#[test]
fn serialization_eliminates_crosstalk_scalings() {
    let device = ibm::toronto();
    let programs = combo_circuits(&["adder", "4mod", "alu"]);
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default().with_shots(128).with_seed(1),
        optimize: true,
    };
    let plain = execute_parallel(&device, &programs, &strategy::cna(), &cfg).unwrap();
    let serialized =
        execute_parallel(&device, &programs, &strategy::cna_serialized(), &cfg).unwrap();
    // Same partitions (same policy), same conflicts detected.
    assert_eq!(plain.conflict_count, serialized.conflict_count);
    for (a, b) in plain.programs.iter().zip(&serialized.programs) {
        assert_eq!(a.partition, b.partition);
    }
}

#[test]
fn single_program_equivalence_across_crosstalk_policies() {
    // With one program there is no cross-program crosstalk: QuCP, QuMC
    // and MultiQC (all EFS-based) must choose the same best partition.
    let device = ibm::toronto();
    let program = vec![qucp_circuit::library::by_name("alu-v0_27")
        .unwrap()
        .circuit()];
    let (_, a, _) = plan_workload(&device, &program, &strategy::qucp(4.0), true).unwrap();
    let (_, b, _) = plan_workload(
        &device,
        &program,
        &strategy::qumc_with_ground_truth(&device),
        true,
    )
    .unwrap();
    let (_, c, _) = plan_workload(&device, &program, &strategy::multiqc(), true).unwrap();
    assert_eq!(a[0].qubits, b[0].qubits);
    assert_eq!(a[0].qubits, c[0].qubits);
}

#[test]
fn strategies_work_on_melbourne_and_manhattan() {
    // Cross-device sanity: the smallest and largest chips both serve a
    // two-program workload under every strategy.
    for device in [ibm::melbourne(), ibm::manhattan()] {
        let programs = combo_circuits(&["fred", "lin", "lin"]);
        let cfg = ParallelConfig {
            execution: ExecutionConfig::default().with_shots(128).with_seed(2),
            optimize: true,
        };
        for strat in all_strategies(&device) {
            let out = execute_parallel(&device, &programs, &strat, &cfg)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", strat.name, device.name()));
            assert_eq!(out.programs.len(), 3);
        }
    }
}
