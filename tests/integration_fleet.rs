//! Fleet scale-out integration suite (PR 8): pins the observational
//! equivalence of the indexed and linear queue paths on random
//! submit/tick interleavings, the best-k speculative planner's
//! winner-determinism rule, the bounded event log's contract, and the
//! mega-fleet fixture's serial == concurrent determinism.

use proptest::prelude::*;
use qucp_bench::{fleet_shootout, fleet_shootout_with, EXPERIMENT_SEED};
use qucp_circuit::library;
use qucp_core::strategy;
use qucp_runtime::{
    Backfill, CalibrationAware, DispatchSharding, Event, ExecutionMode, Fifo, JobRequest, PlanMemo,
    QueueIndexing, Service, ServiceReport, ShortestJobFirst,
};

const NAMES: [&str; 6] = [
    "bell",
    "fredkin",
    "linearsolver",
    "variation",
    "alu-v0_27",
    "qec",
];

/// Builds a shoot-out service on the skewed two-Toronto fleet with the
/// given queue path and admission policy (0 = FIFO, 1 = backfill,
/// 2 = shortest-job-first).
fn policy_service(indexing: QueueIndexing, policy: u8, best_k: usize) -> Service {
    dispatch_service(
        indexing,
        policy,
        best_k,
        PlanMemo::default(),
        DispatchSharding::Single,
        None,
    )
}

/// [`policy_service`] with the planning-memoization and
/// dispatch-sharding seams exposed.
fn dispatch_service(
    indexing: QueueIndexing,
    policy: u8,
    best_k: usize,
    plan_memo: PlanMemo,
    sharding: DispatchSharding,
    groups: Option<usize>,
) -> Service {
    let mut builder = Service::builder()
        .registry(qucp_bench::skewed_fleet())
        .strategy(strategy::qucp(4.0))
        .max_parallel(3)
        .seed(EXPERIMENT_SEED)
        .queue_indexing(indexing)
        .best_k(best_k)
        .plan_memo(plan_memo)
        .dispatch_sharding(sharding);
    if let Some(groups) = groups {
        builder = builder.device_groups(groups);
    }
    let builder = match policy % 3 {
        0 => builder.policy(Fifo),
        1 => builder.policy(Backfill::default()),
        _ => builder.policy(ShortestJobFirst),
    };
    builder.build().expect("fleet service must build")
}

/// Materializes one random job spec into a request; `ov` exercises the
/// per-job strategy-override seam (1 = a genuinely different strategy,
/// 2 = an explicit override equal to the service default — the interned
/// fast path).
fn request_of(i: usize, arrival: f64, name: usize, shots: usize, ov: u8) -> JobRequest {
    let mut circuit = library::by_name(NAMES[name % NAMES.len()])
        .expect("library benchmark must exist")
        .circuit();
    circuit.set_name(format!("{}#{i}", NAMES[name % NAMES.len()]));
    let req = JobRequest::new(circuit, arrival)
        .with_id(i as u64)
        .with_shots(shots);
    match ov {
        1 => req.with_strategy(strategy::cna()),
        2 => req.with_strategy(strategy::qucp(4.0)),
        _ => req,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole equivalence: on any random job stream (arrival
    /// gaps, shapes, shot budgets, strategy overrides), any admission
    /// policy, and any submit/tick interleaving, the indexed store
    /// dispatches exactly like the seed's linear `Vec` path — same
    /// tickets from every tick, same final report bit for bit.
    #[test]
    fn queue_paths_are_observationally_equivalent(
        jobs in proptest::collection::vec(
            (0u16..400, 0usize..6, 1usize..3, 0u8..3),
            1usize..14,
        ),
        policy in 0u8..3,
        split_frac in 0f64..1.0,
        tick_gap in 0f64..5e5,
    ) {
        let mut indexed = policy_service(QueueIndexing::Indexed, policy, 1);
        let mut linear = policy_service(QueueIndexing::Linear, policy, 1);
        let mut t = 0.0;
        let reqs: Vec<JobRequest> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(gap, name, shots, ov))| {
                t += f64::from(gap);
                request_of(i, t, name, shots, ov)
            })
            .collect();
        let split = ((reqs.len() as f64) * split_frac) as usize;

        for req in &reqs[..split] {
            let a = indexed.submit(req.clone()).expect("indexed submit");
            let b = linear.submit(req.clone()).expect("linear submit");
            prop_assert_eq!(a, b);
        }
        let t1 = t * 0.5 + tick_gap;
        prop_assert_eq!(
            indexed.tick(t1).expect("indexed tick"),
            linear.tick(t1).expect("linear tick")
        );
        for req in &reqs[split..] {
            let a = indexed.submit(req.clone()).expect("indexed submit");
            let b = linear.submit(req.clone()).expect("linear submit");
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(
            indexed.tick(t1 + tick_gap).expect("indexed tick"),
            linear.tick(t1 + tick_gap).expect("linear tick")
        );
        let a = indexed.run_until_drained().expect("indexed drain");
        let b = linear.run_until_drained().expect("linear drain");
        prop_assert_eq!(a, b);
    }

    /// The sharded-dispatch equivalence: per-group execution workers
    /// ([`DispatchSharding::Grouped`], any group count, any admission
    /// policy, any plan-memoization mode, any submit/tick interleaving)
    /// produce exactly the single loop's tickets from every tick and a
    /// bit-identical final report — staging stays sequential, execution
    /// shards, and the finish pass merges in global batch order.
    #[test]
    fn sharded_dispatch_matches_the_single_loop(
        jobs in proptest::collection::vec(
            (0u16..400, 0usize..6, 1usize..3, 0u8..3),
            1usize..14,
        ),
        policy in 0u8..3,
        memo in 0u8..2,
        groups in 1usize..5,
        split_frac in 0f64..1.0,
        tick_gap in 0f64..5e5,
    ) {
        let plan_memo = if memo == 0 { PlanMemo::EpochKeyed } else { PlanMemo::Never };
        let mut single = dispatch_service(
            QueueIndexing::Indexed, policy, 1, plan_memo, DispatchSharding::Single, None,
        );
        let mut sharded = dispatch_service(
            QueueIndexing::Indexed, policy, 1, plan_memo, DispatchSharding::Grouped, Some(groups),
        );
        let mut t = 0.0;
        let reqs: Vec<JobRequest> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(gap, name, shots, ov))| {
                t += f64::from(gap);
                request_of(i, t, name, shots, ov)
            })
            .collect();
        let split = ((reqs.len() as f64) * split_frac) as usize;

        for req in &reqs[..split] {
            let a = single.submit(req.clone()).expect("single submit");
            let b = sharded.submit(req.clone()).expect("sharded submit");
            prop_assert_eq!(a, b);
        }
        let t1 = t * 0.5 + tick_gap;
        prop_assert_eq!(
            single.tick(t1).expect("single tick"),
            sharded.tick(t1).expect("sharded tick")
        );
        for req in &reqs[split..] {
            let a = single.submit(req.clone()).expect("single submit");
            let b = sharded.submit(req.clone()).expect("sharded submit");
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(
            single.tick(t1 + tick_gap).expect("single tick"),
            sharded.tick(t1 + tick_gap).expect("sharded tick")
        );
        let a = single.run_until_drained().expect("single drain");
        let b = sharded.run_until_drained().expect("sharded drain");
        prop_assert_eq!(a, b);
    }

    /// The best-k determinism rule: speculative planning over the top-k
    /// routing candidates commits exactly the sequential (k = 1)
    /// winner — identical reports, including the `BatchRouted` device
    /// sequence, on the skewed fleet where calibration-aware ranking
    /// genuinely has two candidates to choose from. Only route-cache
    /// counters may differ (they are not part of the report).
    #[test]
    fn best_k_commits_the_sequential_winner(
        n in 3usize..10,
        seed in 0u64..1000,
        k in 2usize..5,
    ) {
        let run = |k: usize| -> ServiceReport {
            let mut service = Service::builder()
                .registry(qucp_bench::skewed_fleet())
                .strategy(strategy::qucp(4.0))
                .routing(CalibrationAware::default())
                .max_parallel(3)
                .seed(EXPERIMENT_SEED)
                .best_k(k)
                .build()
                .expect("best-k service must build");
            for job in qucp_runtime::synthetic_jobs(n, 400.0, 16, seed) {
                service
                    .submit(JobRequest::from_job(&job))
                    .expect("fixture job must submit");
            }
            service.run_until_drained().expect("best-k drain")
        };
        let sequential = run(1);
        prop_assert_eq!(&run(k), &sequential);
    }
}

/// The mega-fleet fixture preserves the service's core determinism
/// contract: serial and concurrent execution drain a Poisson burst to
/// bit-identical reports, on both queue paths.
#[test]
fn mega_fleet_drain_is_deterministic_across_modes_and_paths() {
    let (_, concurrent) = fleet_shootout(8, 60, QueueIndexing::Indexed, ExecutionMode::Concurrent);
    let (_, serial) = fleet_shootout(8, 60, QueueIndexing::Indexed, ExecutionMode::Serial);
    assert_eq!(concurrent, serial);
    let (_, linear_serial) = fleet_shootout(8, 60, QueueIndexing::Linear, ExecutionMode::Serial);
    assert_eq!(concurrent, linear_serial);
    // Plan memoization and sharded dispatch are schedule-invariant too.
    let (no_memo, no_memo_report) = fleet_shootout_with(
        8,
        60,
        QueueIndexing::Indexed,
        ExecutionMode::Concurrent,
        PlanMemo::Never,
        DispatchSharding::Single,
        None,
    );
    assert_eq!(concurrent, no_memo_report);
    assert_eq!(no_memo.plan_hit_rate, 0.0);
    let (sharded, sharded_report) = fleet_shootout_with(
        8,
        60,
        QueueIndexing::Indexed,
        ExecutionMode::Concurrent,
        PlanMemo::EpochKeyed,
        DispatchSharding::Grouped,
        Some(3),
    );
    assert_eq!(concurrent, sharded_report);
    // The six-shape library stream must actually hit the plan cache.
    assert!(sharded.plan_hit_rate > 0.0);
}

/// The bounded event log: a capacity keeps only the most recent events
/// and counts the overflow in `ServiceReport::dropped_events`, while
/// observers still see every event at emission time and the scheduling
/// outcome (results, batches, stats) is untouched.
#[test]
fn event_capacity_bounds_the_log_without_losing_observers_or_results() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let run = |capacity: Option<usize>| -> (ServiceReport, usize) {
        let observed = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&observed);
        let mut service = Service::builder()
            .device(qucp_device::ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .max_parallel(2)
            .seed(EXPERIMENT_SEED)
            .event_capacity(capacity)
            .observer(move |_: &Event| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .build()
            .expect("bounded-log service must build");
        for job in qucp_runtime::synthetic_jobs(8, 300.0, 32, 7) {
            service
                .submit(JobRequest::from_job(&job))
                .expect("fixture job must submit");
        }
        let report = service.run_until_drained().expect("bounded-log drain");
        (report, observed.load(Ordering::Relaxed))
    };

    let (unbounded, unbounded_seen) = run(None);
    assert_eq!(unbounded.dropped_events, 0);
    assert_eq!(unbounded.events.len(), unbounded_seen);
    let total = unbounded.events.len();
    assert!(total > 4, "fixture must emit more events than the cap");

    let (bounded, bounded_seen) = run(Some(4));
    assert_eq!(bounded.events.len(), 4);
    assert_eq!(bounded.dropped_events, total - 4);
    // The ring keeps the *most recent* events.
    assert_eq!(bounded.events[..], unbounded.events[total - 4..]);
    // Observers and the schedule itself are unaffected by the cap.
    assert_eq!(bounded_seen, total);
    assert_eq!(bounded.job_results, unbounded.job_results);
    assert_eq!(bounded.batches, unbounded.batches);
    assert_eq!(bounded.stats, unbounded.stats);
}
