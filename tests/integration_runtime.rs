//! Cross-crate integration tests for the staged-pipeline refactor and
//! the `qucp-runtime` batch scheduler.
//!
//! The equivalence suite pins the refactor contract: the trait-based
//! pipeline must reproduce the original `execute_parallel` outcomes
//! **bit-for-bit** at a fixed seed, for every paper strategy. The
//! runtime suite pins the acceptance criteria: a ≥ 12-job workload on
//! `ibm::toronto()` executes end-to-end with concurrent batches,
//! deterministically, and beats dedicated (1-way) turnaround.
//!
//! Since the service redesign, `BatchScheduler::run` is a deprecated
//! wrapper over `Service` + `Fifo` + one device; this suite keeps
//! exercising it on purpose — it pins the refactor's bit-for-bit
//! compatibility contract (see also `integration_service.rs`).

// The runtime suite intentionally exercises the deprecated wrapper.
#![allow(deprecated)]

use qucp_bench::combo_circuits;
use qucp_circuit::library;
use qucp_core::{execute_parallel, plan_workload, strategy, ParallelConfig, Pipeline, Strategy};
use qucp_device::ibm;
use qucp_runtime::{synthetic_jobs, BatchScheduler, ExecutionMode, Job, RuntimeConfig};
use qucp_sim::ExecutionConfig;

fn all_strategies(device: &qucp_device::Device) -> Vec<Strategy> {
    vec![
        strategy::qucp(4.0),
        strategy::qumc_with_ground_truth(device),
        strategy::cna(),
        strategy::multiqc(),
        strategy::qucloud(),
    ]
}

fn fixed_cfg() -> ParallelConfig {
    ParallelConfig {
        execution: ExecutionConfig::default().with_shots(512).with_seed(1234),
        optimize: true,
    }
}

/// The trait pipeline, composed explicitly stage by stage, reproduces
/// the driver entry point bit-for-bit for all five strategies.
#[test]
fn pipeline_matches_driver_for_all_strategies() {
    let device = ibm::toronto();
    let programs = combo_circuits(&["adder", "fred", "alu"]);
    for strat in all_strategies(&device) {
        let driver = execute_parallel(&device, &programs, &strat, &fixed_cfg())
            .unwrap_or_else(|e| panic!("{} driver failed: {e}", strat.name));
        let pipeline = Pipeline::from_strategy(&strat)
            .execute(&device, &programs, &fixed_cfg())
            .unwrap_or_else(|e| panic!("{} pipeline failed: {e}", strat.name));
        assert_eq!(driver, pipeline, "{} outcomes diverged", strat.name);
    }
}

/// Planning through the explicit pipeline matches `plan_workload`.
#[test]
fn pipeline_plan_matches_plan_workload() {
    let device = ibm::toronto();
    let programs = combo_circuits(&["adder", "fred", "alu"]);
    for strat in all_strategies(&device) {
        let (opt, allocs, mapped) = plan_workload(&device, &programs, &strat, true).unwrap();
        let plan = Pipeline::from_strategy(&strat)
            .plan(&device, &programs, true)
            .unwrap();
        assert_eq!(opt, plan.programs, "{}", strat.name);
        assert_eq!(allocs, plan.allocations, "{}", strat.name);
        assert_eq!(mapped, plan.mapped, "{}", strat.name);
    }
}

/// Driver outcomes are reproducible run-to-run (the refactor must not
/// have introduced any order- or time-dependence).
#[test]
fn driver_outcome_still_reproducible() {
    let device = ibm::toronto();
    let programs = vec![
        library::by_name("fredkin").unwrap().circuit(),
        library::by_name("linearsolver").unwrap().circuit(),
    ];
    let a = execute_parallel(&device, &programs, &strategy::qucp(4.0), &fixed_cfg()).unwrap();
    let b = execute_parallel(&device, &programs, &strategy::qucp(4.0), &fixed_cfg()).unwrap();
    assert_eq!(a, b);
}

fn runtime_cfg(max_parallel: usize, mode: ExecutionMode) -> RuntimeConfig {
    RuntimeConfig {
        max_parallel,
        fidelity_threshold: None,
        seed: 77,
        optimize: true,
        mode,
        ..RuntimeConfig::default()
    }
}

fn acceptance_workload() -> Vec<Job> {
    synthetic_jobs(12, 300.0, 256, 0xACCE)
}

/// Acceptance: a 12-job workload on `ibm::toronto()` runs end-to-end
/// with concurrent per-batch execution and beats dedicated turnaround.
#[test]
fn batch_scheduler_beats_dedicated_on_toronto() {
    let jobs = acceptance_workload();
    let dedicated = BatchScheduler::new(
        ibm::toronto(),
        strategy::qucp(4.0),
        runtime_cfg(1, ExecutionMode::Concurrent),
    )
    .run(&jobs)
    .expect("dedicated run");
    let packed = BatchScheduler::new(
        ibm::toronto(),
        strategy::qucp(4.0),
        runtime_cfg(4, ExecutionMode::Concurrent),
    )
    .run(&jobs)
    .expect("packed run");

    assert_eq!(dedicated.job_results.len(), 12);
    assert_eq!(packed.job_results.len(), 12);
    assert_eq!(dedicated.stats.batches, 12);
    assert!(packed.stats.batches < 12, "packing never happened");
    assert!(
        packed.stats.mean_turnaround < dedicated.stats.mean_turnaround,
        "packed turnaround {} should beat dedicated {}",
        packed.stats.mean_turnaround,
        dedicated.stats.mean_turnaround
    );
    assert!(packed.stats.mean_throughput > dedicated.stats.mean_throughput);
}

/// Concurrent batch execution is deterministic: it equals the serial
/// mode bit-for-bit and is reproducible run-to-run.
#[test]
fn concurrent_batches_are_deterministic() {
    let jobs = acceptance_workload();
    let make = |mode| {
        BatchScheduler::new(ibm::toronto(), strategy::qucp(4.0), runtime_cfg(4, mode))
            .run(&jobs)
            .expect("run")
    };
    let conc_a = make(ExecutionMode::Concurrent);
    let conc_b = make(ExecutionMode::Concurrent);
    let serial = make(ExecutionMode::Serial);
    assert_eq!(conc_a, conc_b, "concurrent run not reproducible");
    assert_eq!(conc_a, serial, "concurrent diverges from serial");
}

/// The runtime works under every paper strategy, not just QuCP.
#[test]
fn runtime_serves_all_strategies() {
    let device = ibm::toronto();
    let jobs = synthetic_jobs(6, 300.0, 128, 5);
    for strat in all_strategies(&device) {
        let name = strat.name.clone();
        let report = BatchScheduler::new(
            device.clone(),
            strat,
            runtime_cfg(3, ExecutionMode::Concurrent),
        )
        .run(&jobs)
        .unwrap_or_else(|e| panic!("{name} runtime failed: {e}"));
        assert_eq!(report.job_results.len(), 6, "{name}");
    }
}

/// The EFS fidelity-threshold gate (Fig. 4) throttles batch width: a
/// zero threshold degenerates to dedicated service, a huge one packs.
#[test]
fn fidelity_threshold_controls_packing() {
    let jobs = acceptance_workload();
    let run = |threshold| {
        let mut cfg = runtime_cfg(4, ExecutionMode::Concurrent);
        cfg.fidelity_threshold = Some(threshold);
        BatchScheduler::new(ibm::toronto(), strategy::qucp(4.0), cfg)
            .run(&jobs)
            .expect("run")
    };
    let strict = run(0.0);
    let loose = run(1e9);
    assert_eq!(strict.stats.batches, 12, "zero threshold must serialize");
    assert!(loose.stats.batches < strict.stats.batches);
    assert!(loose.stats.mean_turnaround < strict.stats.mean_turnaround);
}
