//! Cross-crate integration tests: the full QuCP pipeline
//! (partition → map → schedule → execute → score) on real device models.

use qucp_bench::{combo_circuits, FIG3B_COMBOS};
use qucp_circuit::library;
use qucp_core::{execute_parallel, plan_workload, strategy, ParallelConfig};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;

fn quick_cfg(shots: usize) -> ParallelConfig {
    ParallelConfig {
        execution: ExecutionConfig::default().with_shots(shots).with_seed(77),
        optimize: true,
    }
}

#[test]
fn full_pipeline_on_toronto() {
    let device = ibm::toronto();
    let programs = combo_circuits(&FIG3B_COMBOS[4]); // adder-fred-alu
    let out = execute_parallel(&device, &programs, &strategy::qucp(4.0), &quick_cfg(512))
        .expect("pipeline");
    assert_eq!(out.programs.len(), 3);
    // Disjoint partitions covering 4+3+5 qubits.
    let mut qubits: Vec<usize> = out
        .programs
        .iter()
        .flat_map(|p| p.partition.clone())
        .collect();
    let n = qubits.len();
    qubits.sort_unstable();
    qubits.dedup();
    assert_eq!(qubits.len(), n);
    assert_eq!(n, 12);
    assert!((out.throughput - 12.0 / 27.0).abs() < 1e-12);
    // Every program yields full shot counts and bounded metrics.
    for p in &out.programs {
        assert_eq!(p.counts.shots(), 512);
        assert!(p.jsd >= 0.0 && p.jsd <= 1.0);
        let pst = p.pst.expect("deterministic benchmarks");
        assert!((0.0..=1.0).contains(&pst));
    }
    // Parallel must beat serial runtime.
    assert!(out.runtime_reduction() > 1.5);
}

#[test]
fn pipeline_scales_to_manhattan_six_copies() {
    let device = ibm::manhattan();
    let base = library::by_name("4mod5-v1_22").unwrap().circuit();
    let programs: Vec<_> = (0..6)
        .map(|i| {
            let mut c = base.clone();
            c.set_name(format!("copy{i}"));
            c
        })
        .collect();
    let out = execute_parallel(&device, &programs, &strategy::qucp(4.0), &quick_cfg(256))
        .expect("six copies fit on Manhattan");
    assert_eq!(out.programs.len(), 6);
    assert!((out.throughput - 30.0 / 65.0).abs() < 1e-12);
    assert!(out.runtime_reduction() > 3.0);
}

#[test]
fn planning_produces_executable_mappings() {
    let device = ibm::toronto();
    let programs = combo_circuits(&FIG3B_COMBOS[5]);
    for strat in [
        strategy::qucp(4.0),
        strategy::qumc_with_ground_truth(&device),
        strategy::cna(),
        strategy::multiqc(),
        strategy::qucloud(),
    ] {
        let (_, allocs, mapped) = plan_workload(&device, &programs, &strat, true).expect("plan");
        for (alloc, mp) in allocs.iter().zip(&mapped) {
            // Every routed 2q gate sits on a physical link.
            for g in mp.circuit.gates() {
                if g.is_two_qubit() {
                    let qs = g.qubits();
                    let qs = qs.as_slice();
                    let (a, b) = (mp.layout[qs[0]], mp.layout[qs[1]]);
                    assert!(
                        device.topology().has_link(a, b),
                        "{}: unrouted gate in {}",
                        strat.name,
                        mp.circuit.name()
                    );
                }
            }
            assert_eq!(alloc.qubits, mp.layout);
        }
    }
}

#[test]
fn logical_counts_match_ideal_distribution_when_noise_free() {
    // With all noise channels off, the parallel pipeline must reproduce
    // the ideal distribution exactly (up to sampling), proving that the
    // output-permutation bookkeeping through routing is correct.
    let device = ibm::toronto();
    let programs = vec![library::by_name("adder").unwrap().circuit()];
    let cfg = ParallelConfig {
        execution: ExecutionConfig {
            shots: 400,
            seed: 5,
            gate_noise: false,
            readout_noise: false,
            idle_noise: false,
            ..ExecutionConfig::default()
        },
        optimize: true,
    };
    let out = execute_parallel(&device, &programs, &strategy::qucp(4.0), &cfg).unwrap();
    let r = &out.programs[0];
    // adder is deterministic: every noise-free shot must hit the target.
    assert_eq!(r.pst, Some(1.0));
    assert!(r.jsd < 1e-6);
}

#[test]
fn conflict_free_plans_have_unit_scalings() {
    // QuCP with a huge sigma refuses any one-hop adjacency: no conflicts.
    let device = ibm::toronto();
    let programs = combo_circuits(&FIG3B_COMBOS[7]);
    let out =
        execute_parallel(&device, &programs, &strategy::qucp(100.0), &quick_cfg(128)).expect("run");
    assert_eq!(out.conflict_count, 0);
}

#[test]
fn deterministic_across_runs() {
    let device = ibm::toronto();
    let programs = combo_circuits(&FIG3B_COMBOS[6]);
    let a = execute_parallel(&device, &programs, &strategy::qucp(4.0), &quick_cfg(256)).unwrap();
    let b = execute_parallel(&device, &programs, &strategy::qucp(4.0), &quick_cfg(256)).unwrap();
    assert_eq!(a, b);
}
