//! Frame transport: length-prefixed frames over byte streams, and the
//! [`Transport`] abstraction the client speaks through.
//!
//! A frame is a little-endian `u32` payload length followed by exactly
//! that many payload bytes. The length is validated against
//! [`MAX_FRAME_LEN`] *before* any buffer is reserved, on both the read
//! and the write side, so neither a forged header nor a runaway
//! payload can exhaust memory. The same helpers serve the client, the
//! socket server and the tests — there is exactly one framing
//! implementation to get wrong.

use std::io::{Read, Write};

use crate::wire::{WireError, MAX_FRAME_LEN};

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::LengthOverflow {
            len: payload.len() as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's payload, enforcing [`MAX_FRAME_LEN`] before
/// allocating. Returns `Ok(None)` on clean EOF at a frame boundary
/// (the peer hung up between messages); mid-frame EOF is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::LengthOverflow {
            len: len as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// `read_exact`, except EOF *before the first byte* is reported as
/// [`ReadOutcome::Eof`] instead of an error — that is how a peer
/// closing the connection between frames looks.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed: buf.len(),
                    remaining: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Filled)
}

/// What one [`FrameReader::poll`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameProgress {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary — the peer hung up between
    /// messages. (EOF *inside* a frame is a [`WireError`] instead.)
    Eof,
    /// The read would block or timed out. Any bytes already consumed
    /// stay buffered; the next `poll` resumes exactly where this one
    /// stopped.
    Pending,
}

/// Incremental frame reader for nonblocking or timeout-equipped
/// streams.
///
/// [`read_frame`] is all-or-nothing: a read timeout that fires after
/// part of a frame has been consumed discards those bytes, and the
/// next call misparses mid-stream bytes as a fresh length header —
/// permanent framing desync. `FrameReader` keeps the header and
/// payload fill state *across* polls, so a frame interrupted by any
/// number of `WouldBlock`/`TimedOut` reads is reassembled intact. The
/// daemon's connection loop polls this between shutdown checks.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_filled: usize,
    payload: Option<Vec<u8>>,
    payload_filled: usize,
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Whether any bytes of the current frame have been consumed (a
    /// `Pending` in this state means the peer stalled mid-frame, not
    /// that the connection is idle).
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0 || self.payload.is_some()
    }

    /// Reads as much of the current frame as the stream will give.
    /// Never loses bytes: `Pending` preserves all progress for the
    /// next call. Enforces [`MAX_FRAME_LEN`] before allocating, like
    /// [`read_frame`].
    pub fn poll(&mut self, r: &mut impl Read) -> Result<FrameProgress, WireError> {
        while self.payload.is_none() && self.header_filled < self.header.len() {
            match r.read(&mut self.header[self.header_filled..]) {
                Ok(0) if self.header_filled == 0 => return Ok(FrameProgress::Eof),
                Ok(0) => {
                    return Err(WireError::Truncated {
                        needed: self.header.len(),
                        remaining: self.header_filled,
                    })
                }
                Ok(n) => self.header_filled += n,
                Err(e) => return Self::interruption(e),
            }
        }
        if self.payload.is_none() {
            let len = u32::from_le_bytes(self.header) as usize;
            if len > MAX_FRAME_LEN {
                return Err(WireError::LengthOverflow {
                    len: len as u64,
                    max: MAX_FRAME_LEN as u64,
                });
            }
            self.payload = Some(vec![0u8; len]);
            self.payload_filled = 0;
        }
        let payload = self.payload.as_mut().expect("allocated above");
        while self.payload_filled < payload.len() {
            match r.read(&mut payload[self.payload_filled..]) {
                Ok(0) => {
                    return Err(WireError::Truncated {
                        needed: payload.len(),
                        remaining: self.payload_filled,
                    })
                }
                Ok(n) => self.payload_filled += n,
                Err(e) => return Self::interruption(e),
            }
        }
        let frame = self.payload.take().expect("present above");
        self.header_filled = 0;
        self.payload_filled = 0;
        Ok(FrameProgress::Frame(frame))
    }

    /// Maps a read error to `Pending` when it only means "try again"
    /// (state is preserved either way; `Interrupted` is retried by the
    /// caller's next poll too, which keeps this loop-free).
    fn interruption(e: std::io::Error) -> Result<FrameProgress, WireError> {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted => {
                Ok(FrameProgress::Pending)
            }
            _ => Err(e.into()),
        }
    }
}

/// One request/response exchange. The client is strictly synchronous —
/// a transport carries exactly one outstanding request — which keeps
/// the protocol trivially orderable and the mock implementation a pure
/// function call.
pub trait Transport {
    /// Sends one encoded request payload and returns the peer's encoded
    /// response payload.
    fn call(&mut self, request: &[u8]) -> Result<Vec<u8>, WireError>;
}

/// [`Transport`] over any duplex byte stream — a `UnixStream`, a
/// `TcpStream`, or anything else implementing `Read + Write`.
#[derive(Debug)]
pub struct StreamTransport<S: Read + Write> {
    stream: S,
}

impl<S: Read + Write> StreamTransport<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Self {
        StreamTransport { stream }
    }

    /// The underlying stream, for shutdown-side effects.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }
}

impl<S: Read + Write> Transport for StreamTransport<S> {
    fn call(&mut self, request: &[u8]) -> Result<Vec<u8>, WireError> {
        write_frame(&mut self.stream, request)?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(payload),
            None => Err(WireError::Io {
                kind: "UnexpectedEof".into(),
                message: "server closed the connection before responding".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r).unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }

    #[test]
    fn midframe_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..6]; // header + 2 of 5 payload bytes
        assert!(matches!(
            read_frame(&mut r).unwrap_err(),
            WireError::Io { .. } | WireError::Truncated { .. }
        ));
    }

    /// A stream that serves a script of byte chunks interleaved with
    /// `WouldBlock`/`TimedOut` stalls — the shape of a socket with a
    /// read timeout under load.
    struct StallingStream {
        script: Vec<Result<Vec<u8>, std::io::ErrorKind>>,
    }

    impl Read for StallingStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.script.is_empty() {
                return Ok(0); // EOF
            }
            match self.script.remove(0) {
                Ok(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.script.insert(0, Ok(chunk[n..].to_vec()));
                    }
                    Ok(n)
                }
                Err(kind) => Err(std::io::Error::new(kind, "stall")),
            }
        }
    }

    #[test]
    fn frame_reader_survives_stalls_mid_frame_without_desync() {
        use std::io::ErrorKind;
        let mut first = Vec::new();
        write_frame(&mut first, b"hello").unwrap();
        let mut second = Vec::new();
        write_frame(&mut second, b"world!").unwrap();
        // Stalls after 2 header bytes, again after 3 payload bytes —
        // the exact situation that desyncs the one-shot read_frame.
        let mut stream = StallingStream {
            script: vec![
                Ok(first[..2].to_vec()),
                Err(ErrorKind::WouldBlock),
                Ok(first[2..4].to_vec()),
                Ok(first[4..7].to_vec()),
                Err(ErrorKind::TimedOut),
                Ok(first[7..].to_vec()),
                Err(ErrorKind::WouldBlock),
                Ok(second.clone()),
            ],
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        let mut stalls = 0;
        loop {
            match reader.poll(&mut stream).expect("no framing error") {
                FrameProgress::Frame(payload) => frames.push(payload),
                FrameProgress::Pending => stalls += 1,
                FrameProgress::Eof => break,
            }
        }
        assert_eq!(frames, vec![b"hello".to_vec(), b"world!".to_vec()]);
        assert_eq!(stalls, 3, "every scripted stall surfaced as Pending");
    }

    #[test]
    fn frame_reader_reports_mid_frame_state() {
        use std::io::ErrorKind;
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"abc").unwrap();
        let mut stream = StallingStream {
            script: vec![Ok(bytes[..3].to_vec()), Err(ErrorKind::WouldBlock)],
        };
        let mut reader = FrameReader::new();
        assert!(!reader.mid_frame());
        assert_eq!(reader.poll(&mut stream).unwrap(), FrameProgress::Pending);
        assert!(reader.mid_frame(), "partial header counts as mid-frame");
    }

    #[test]
    fn frame_reader_matches_read_frame_on_clean_streams() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        let mut reader = FrameReader::new();
        assert_eq!(
            reader.poll(&mut r).unwrap(),
            FrameProgress::Frame(b"hello".to_vec())
        );
        assert_eq!(
            reader.poll(&mut r).unwrap(),
            FrameProgress::Frame(Vec::new())
        );
        assert_eq!(reader.poll(&mut r).unwrap(), FrameProgress::Eof);
    }

    #[test]
    fn frame_reader_rejects_oversized_header_and_midframe_eof() {
        // Forged length prefix.
        let huge = u32::MAX.to_le_bytes().to_vec();
        let mut r = &huge[..];
        assert!(matches!(
            FrameReader::new().poll(&mut r).unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
        // EOF inside the payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..6];
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.poll(&mut r).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn oversized_write_is_refused() {
        let payload = vec![0u8; MAX_FRAME_LEN + 1];
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &payload).unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
        assert!(buf.is_empty(), "nothing must be written on refusal");
    }
}
