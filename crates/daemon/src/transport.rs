//! Frame transport: length-prefixed frames over byte streams, and the
//! [`Transport`] abstraction the client speaks through.
//!
//! A frame is a little-endian `u32` payload length followed by exactly
//! that many payload bytes. The length is validated against
//! [`MAX_FRAME_LEN`] *before* any buffer is reserved, on both the read
//! and the write side, so neither a forged header nor a runaway
//! payload can exhaust memory. The same helpers serve the client, the
//! socket server and the tests — there is exactly one framing
//! implementation to get wrong.

use std::io::{Read, Write};

use crate::wire::{WireError, MAX_FRAME_LEN};

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::LengthOverflow {
            len: payload.len() as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's payload, enforcing [`MAX_FRAME_LEN`] before
/// allocating. Returns `Ok(None)` on clean EOF at a frame boundary
/// (the peer hung up between messages); mid-frame EOF is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::LengthOverflow {
            len: len as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// `read_exact`, except EOF *before the first byte* is reported as
/// [`ReadOutcome::Eof`] instead of an error — that is how a peer
/// closing the connection between frames looks.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed: buf.len(),
                    remaining: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Filled)
}

/// One request/response exchange. The client is strictly synchronous —
/// a transport carries exactly one outstanding request — which keeps
/// the protocol trivially orderable and the mock implementation a pure
/// function call.
pub trait Transport {
    /// Sends one encoded request payload and returns the peer's encoded
    /// response payload.
    fn call(&mut self, request: &[u8]) -> Result<Vec<u8>, WireError>;
}

/// [`Transport`] over any duplex byte stream — a `UnixStream`, a
/// `TcpStream`, or anything else implementing `Read + Write`.
#[derive(Debug)]
pub struct StreamTransport<S: Read + Write> {
    stream: S,
}

impl<S: Read + Write> StreamTransport<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Self {
        StreamTransport { stream }
    }

    /// The underlying stream, for shutdown-side effects.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }
}

impl<S: Read + Write> Transport for StreamTransport<S> {
    fn call(&mut self, request: &[u8]) -> Result<Vec<u8>, WireError> {
        write_frame(&mut self.stream, request)?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(payload),
            None => Err(WireError::Io {
                kind: "UnexpectedEof".into(),
                message: "server closed the connection before responding".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r).unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }

    #[test]
    fn midframe_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..6]; // header + 2 of 5 payload bytes
        assert!(matches!(
            read_frame(&mut r).unwrap_err(),
            WireError::Io { .. } | WireError::Truncated { .. }
        ));
    }

    #[test]
    fn oversized_write_is_refused() {
        let payload = vec![0u8; MAX_FRAME_LEN + 1];
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &payload).unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
        assert!(buf.is_empty(), "nothing must be written on refusal");
    }
}
