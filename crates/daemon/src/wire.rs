//! Bounds-checked binary encoding primitives shared by every wire
//! message.
//!
//! The encoding is deliberately boring: little-endian fixed-width
//! integers, `f64` as its IEEE-754 bit pattern (so values — NaN
//! payloads included — round-trip **bit-for-bit**), length-prefixed
//! UTF-8 strings and length-prefixed sequences. [`Encoder`] appends to
//! a byte buffer; [`Decoder`] walks one with an explicit cursor and
//! returns a typed [`WireError`] on any malformed input — truncated
//! buffers, oversized length prefixes, unknown tags, invalid UTF-8 —
//! **never panicking**, so a server can feed it attacker-controlled
//! bytes. Collection length prefixes are validated against the bytes
//! actually remaining before any allocation, so a forged
//! four-billion-element prefix costs nothing.

use std::fmt;

/// Hard cap on one frame's payload (16 MiB). A drained
/// [`ServiceReport`](qucp_runtime::ServiceReport) of thousands of jobs
/// fits comfortably; a length prefix beyond the cap is rejected before
/// any buffer is reserved.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A typed decoding or framing fault. Every variant is a *diagnosis*,
/// not a panic: malformed input of any shape maps onto one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a field's bytes did.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A message decoded cleanly but left unconsumed bytes behind.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// A frame or collection length prefix exceeded its bound.
    LengthOverflow {
        /// The advertised length.
        len: u64,
        /// The maximum the context allows.
        max: u64,
    },
    /// An enum tag byte matched no known variant.
    UnknownTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A field held a structurally impossible value (an out-of-range
    /// outcome index, a self-looped link, a duplicate map key …).
    InvalidValue {
        /// What was being decoded.
        context: &'static str,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// The connect-time magic bytes did not spell `QCPD`.
    BadMagic {
        /// The four bytes received.
        got: u32,
    },
    /// A transport-level I/O failure (connection reset, timeout, …).
    Io {
        /// The `std::io::ErrorKind`, rendered.
        kind: String,
        /// The underlying error message.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated frame: field needs {needed} bytes, {remaining} remain"
                )
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete message")
            }
            WireError::LengthOverflow { len, max } => {
                write!(f, "length prefix {len} exceeds the bound {max}")
            }
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag:#04x} decoding {context}")
            }
            WireError::InvalidValue { context } => {
                write!(f, "structurally invalid value decoding {context}")
            }
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadMagic { got } => {
                write!(f, "bad connect magic {got:#010x} (expected \"QCPD\")")
            }
            WireError::Io { kind, message } => write!(f, "transport I/O error ({kind}): {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io {
            kind: format!("{:?}", e.kind()),
            message: e.to_string(),
        }
    }
}

/// Appends wire-encoded fields to a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the wire is 64-bit regardless of
    /// host width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern — the value
    /// round-trips bit-for-bit, NaN payloads and signed zeros included.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an `Option` as a presence byte plus the value.
    pub fn option<T>(&mut self, v: &Option<T>, mut encode: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                encode(self, inner);
            }
        }
    }

    /// Appends a length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut encode: impl FnMut(&mut Self, &T)) {
        self.usize(items.len());
        for item in items {
            encode(self, item);
        }
    }
}

/// Walks a byte buffer with bounds checks; every read returns
/// `Result<_, WireError>`.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::TrailingBytes`] unless the buffer was
    /// consumed exactly. Call after decoding a complete message.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `u64` and narrows it to the host `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow {
            len: v,
            max: usize::MAX as u64,
        })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte; anything but 0 or 1 is malformed.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag {
                context: "bool",
                tag,
            }),
        }
    }

    /// Reads a sequence length prefix, validating it against the bytes
    /// actually remaining (each element occupies at least
    /// `min_elem_bytes`), so a forged huge prefix is rejected before
    /// any allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.u64()?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if len > cap {
            return Err(WireError::LengthOverflow { len, max: cap });
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.seq_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads an `Option` from its presence byte.
    pub fn option<T>(
        &mut self,
        mut decode: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(decode(self)?)),
            tag => Err(WireError::UnknownTag {
                context: "option",
                tag,
            }),
        }
    }

    /// Reads a length-prefixed sequence; `min_elem_bytes` guards the
    /// pre-allocation (see [`Decoder::seq_len`]).
    pub fn seq<T>(
        &mut self,
        min_elem_bytes: usize,
        mut decode: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let len = self.seq_len(min_elem_bytes)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(decode(self)?);
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u16(515);
        e.u32(70_000);
        e.u64(1 << 40);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.bool(true);
        e.str("qucpd");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 515);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "qucpd");
        d.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut e = Encoder::new();
        e.u64(42);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..5]);
        assert!(matches!(
            d.u64().unwrap_err(),
            WireError::Truncated {
                needed: 8,
                remaining: 5
            }
        ));
    }

    #[test]
    fn forged_length_prefix_is_rejected_before_allocation() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // a 2^64-element sequence in a 12-byte buffer
        e.u32(0);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.seq(8, |d| d.u64()).unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut e = Encoder::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        d.u8().unwrap();
        assert!(matches!(
            d.expect_end().unwrap_err(),
            WireError::TrailingBytes { count: 1 }
        ));
    }

    #[test]
    fn bad_bool_and_option_tags_are_typed() {
        let mut d = Decoder::new(&[3]);
        assert!(matches!(
            d.bool().unwrap_err(),
            WireError::UnknownTag { tag: 3, .. }
        ));
        let mut d = Decoder::new(&[9]);
        assert!(matches!(
            d.option(|d| d.u8()).unwrap_err(),
            WireError::UnknownTag { tag: 9, .. }
        ));
    }
}
