//! The daemon: a per-connection protocol session, a socket accept loop
//! and the wall-clock driver.
//!
//! The protocol brain is [`ServerSession::handle_frame`] — one request
//! payload in, one response payload out, no I/O. The socket server
//! wraps it in per-connection reader/writer threads; the mock
//! transport calls it directly; both therefore exercise the *same*
//! code path, which is what makes the mock tests trustworthy.
//!
//! All connections share one [`Service`] behind a mutex, so the
//! daemon's observable behaviour is a serialization of the clients'
//! requests — exactly the semantics of calling the `Service` in
//! process, which the bit-identity integration test pins.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use qucp_runtime::Service;

use crate::proto::{negotiate, Fault, Request, Response, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION};
use crate::transport::{write_frame, FrameProgress, FrameReader};
use crate::wire::WireError;

/// Tuning knobs for a spawned daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Cadence of the wall-clock driver: every period, monotonic
    /// elapsed nanoseconds since spawn are folded into
    /// `advance_drift(now)` + `advance_dispatch(now)`. The driver only
    /// advances dispatch — completion notifications stay queued for
    /// client `Tick` requests, which keep their report-exactly-once
    /// contract. With the driver on, the service clock *is* wall-clock
    /// nanoseconds since spawn, and client `Tick` horizons are
    /// interpreted on that clock (pass `f64::INFINITY` to collect
    /// everything completed so far). `None` disables the driver
    /// entirely — time then advances only through client `tick`/`drain`
    /// requests, which keeps the service's event log a pure function of
    /// the request sequence (the bit-identity tests rely on this).
    pub driver_cadence: Option<Duration>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            driver_cadence: Some(Duration::from_millis(10)),
        }
    }
}

/// Locks a shared service, recovering the data from a poisoned mutex
/// (a panic in another connection thread must not wedge the daemon).
fn lock_service(service: &Mutex<Service>) -> MutexGuard<'_, Service> {
    service
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One connection's protocol state machine: handshake tracking plus
/// request dispatch against the shared [`Service`]. Performs no I/O —
/// both the socket server and the in-memory mock feed it frames.
pub struct ServerSession {
    service: Arc<Mutex<Service>>,
    shutdown: Arc<AtomicBool>,
    negotiated: Option<u16>,
}

impl ServerSession {
    /// A fresh, not-yet-handshaken session over a shared service.
    pub fn new(service: Arc<Mutex<Service>>, shutdown: Arc<AtomicBool>) -> Self {
        ServerSession {
            service,
            shutdown,
            negotiated: None,
        }
    }

    /// The version agreed during the handshake, once there was one.
    pub fn negotiated_version(&self) -> Option<u16> {
        self.negotiated
    }

    /// Handles one request frame payload and returns the encoded
    /// response payload. Total over arbitrary bytes: malformed input
    /// yields an encoded [`Fault`] frame, never a panic.
    pub fn handle_frame(&mut self, payload: &[u8]) -> Vec<u8> {
        self.handle(payload).encode()
    }

    fn handle(&mut self, payload: &[u8]) -> Response {
        let request = match Request::decode(payload) {
            Ok(request) => request,
            Err(WireError::UnknownTag {
                context: "Request",
                tag,
            }) => return Response::Error(Fault::UnknownRequest { tag }),
            Err(e) => {
                return Response::Error(Fault::MalformedRequest {
                    detail: e.to_string(),
                })
            }
        };
        match request {
            Request::Hello { version } => match negotiate(version) {
                Some(agreed) => {
                    self.negotiated = Some(agreed);
                    Response::HelloAck { version: agreed }
                }
                None => Response::Error(Fault::UnsupportedVersion {
                    client: version,
                    min: MIN_SUPPORTED_VERSION,
                    max: PROTOCOL_VERSION,
                }),
            },
            _ if self.negotiated.is_none() => Response::Error(Fault::HandshakeRequired),
            Request::Submit(job) => {
                let mut service = lock_service(&self.service);
                // Checked *under* the service lock: the Shutdown
                // handler raises the flag while still holding this
                // lock, so a submit can never slip between its final
                // drain and the flag — every accepted ticket is
                // guaranteed a place in the shutdown report.
                if self.shutdown.load(Ordering::SeqCst) {
                    return Response::Error(Fault::ShuttingDown);
                }
                match service.submit(*job) {
                    Ok(ticket) => Response::Ticket(ticket),
                    Err(e) => Response::Error(Fault::Runtime((&e).into())),
                }
            }
            Request::Tick { now } => match lock_service(&self.service).tick(now) {
                Ok(tickets) => Response::Completed(tickets),
                Err(e) => Response::Error(Fault::Runtime((&e).into())),
            },
            Request::Report { ticket } => Response::JobReport(
                lock_service(&self.service)
                    .result(ticket)
                    .cloned()
                    .map(Box::new),
            ),
            Request::TakeResult { ticket } => Response::Taken(
                lock_service(&self.service)
                    .take_result(&ticket)
                    .map(Box::new),
            ),
            Request::Drain => match lock_service(&self.service).run_until_drained() {
                Ok(report) => Response::Report(Box::new(report)),
                Err(e) => Response::Error(Fault::Runtime((&e).into())),
            },
            Request::Events => Response::Events(lock_service(&self.service).events().to_vec()),
            Request::CacheStats => {
                Response::CacheStats(lock_service(&self.service).route_cache_stats())
            }
            Request::Shutdown => {
                // Drain, then raise the flag *while still holding the
                // service lock*: Submit re-checks the flag under the
                // same lock, so no connection can admit a job after
                // this drain and before the flag — the no-job-lost
                // guarantee holds under concurrency, not just in
                // sequence.
                let drained = {
                    let mut service = lock_service(&self.service);
                    let drained = service.run_until_drained();
                    self.shutdown.store(true, Ordering::SeqCst);
                    drained
                };
                match drained {
                    Ok(report) => Response::Report(Box::new(report)),
                    Err(e) => Response::Error(Fault::Runtime((&e).into())),
                }
            }
        }
    }
}

/// Server-side socket abstraction so unix and TCP share one accept
/// loop and one connection loop.
trait Listener: Send + 'static {
    /// The connection stream type.
    type Conn: Connection;
    /// Accepts one pending connection; `Ok(None)` when none is queued
    /// (the listener is nonblocking).
    fn poll_accept(&self) -> io::Result<Option<Self::Conn>>;
}

trait Connection: Read + Write + Send + Sized + 'static {
    fn duplicate(&self) -> io::Result<Self>;
    fn set_read_timeout_on(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Listener for UnixListener {
    type Conn = UnixStream;
    fn poll_accept(&self) -> io::Result<Option<UnixStream>> {
        match self.accept() {
            Ok((stream, _)) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Connection for UnixStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_timeout_on(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

impl Listener for TcpListener {
    type Conn = TcpStream;
    fn poll_accept(&self) -> io::Result<Option<TcpStream>> {
        match self.accept() {
            Ok((stream, _)) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Connection for TcpStream {
    fn duplicate(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_read_timeout_on(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// How often a blocked connection read wakes up to check the shutdown
/// flag, and how often the accept loop polls.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// A running daemon: accept loop, connection threads, optional
/// wall-clock driver. Obtained from [`Daemon::spawn_unix`] /
/// [`Daemon::spawn_tcp`].
pub struct DaemonHandle {
    service: Arc<Mutex<Service>>,
    shutdown: Arc<AtomicBool>,
    driver_errors: Arc<AtomicUsize>,
    accept_thread: Option<thread::JoinHandle<()>>,
    driver_thread: Option<thread::JoinHandle<()>>,
    socket_path: Option<PathBuf>,
}

impl DaemonHandle {
    /// Raises the shutdown flag; the accept loop and driver exit at
    /// their next poll. (A client's `Shutdown` request does the same,
    /// after draining.)
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested (locally or by a client).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The shared service, for in-process inspection in tests.
    pub fn service(&self) -> Arc<Mutex<Service>> {
        Arc::clone(&self.service)
    }

    /// How many driver iterations failed (a NaN horizon cannot arise
    /// from `Instant` arithmetic, so this staying 0 is the norm).
    pub fn driver_errors(&self) -> usize {
        self.driver_errors.load(Ordering::SeqCst)
    }

    /// Blocks until every daemon thread exits, then removes the unix
    /// socket file if one was bound. Call after
    /// [`request_shutdown`](Self::request_shutdown) (or after a client
    /// sent `Shutdown`).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.driver_thread.take() {
            let _ = t.join();
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Spawner for the daemon's socket servers.
pub struct Daemon;

impl Daemon {
    /// Binds a unix-domain socket at `path` and spawns the accept loop
    /// plus, per [`DaemonConfig::driver_cadence`], the wall-clock
    /// driver.
    ///
    /// A *stale* socket file (left by a crashed daemon — nothing
    /// accepts connections on it) is replaced. A live socket earns
    /// `AddrInUse` and a non-socket file `AlreadyExists`; neither is
    /// ever deleted, so starting a second daemon by mistake cannot
    /// take down the first (or clobber an unrelated file).
    pub fn spawn_unix(
        path: impl AsRef<Path>,
        service: Service,
        config: DaemonConfig,
    ) -> io::Result<DaemonHandle> {
        let path = path.as_ref().to_path_buf();
        match std::fs::symlink_metadata(&path) {
            Ok(meta) => {
                use std::os::unix::fs::FileTypeExt;
                if !meta.file_type().is_socket() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        format!("{} exists and is not a socket", path.display()),
                    ));
                }
                match UnixStream::connect(&path) {
                    Ok(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("a daemon is already listening on {}", path.display()),
                        ))
                    }
                    // Nothing accepts on it: a leftover from a dead
                    // process, safe to replace.
                    Err(_) => std::fs::remove_file(&path)?,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        Ok(spawn(listener, service, config, Some(path)))
    }

    /// Binds a TCP listener at `addr` and spawns the same loops.
    /// Returns the handle and the actual bound address (useful with
    /// port 0).
    pub fn spawn_tcp(
        addr: impl ToSocketAddrs,
        service: Service,
        config: DaemonConfig,
    ) -> io::Result<(DaemonHandle, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok((spawn(listener, service, config, None), local))
    }
}

fn spawn<L: Listener>(
    listener: L,
    service: Service,
    config: DaemonConfig,
    socket_path: Option<PathBuf>,
) -> DaemonHandle {
    let service = Arc::new(Mutex::new(service));
    let shutdown = Arc::new(AtomicBool::new(false));
    let driver_errors = Arc::new(AtomicUsize::new(0));

    let accept_thread = {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || accept_loop(listener, service, shutdown))
    };

    let driver_thread = config.driver_cadence.map(|cadence| {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let errors = Arc::clone(&driver_errors);
        thread::spawn(move || driver_loop(cadence, service, shutdown, errors))
    });

    DaemonHandle {
        service,
        shutdown,
        driver_errors,
        accept_thread: Some(accept_thread),
        driver_thread,
        socket_path,
    }
}

fn accept_loop<L: Listener>(listener: L, service: Arc<Mutex<Service>>, shutdown: Arc<AtomicBool>) {
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.poll_accept() {
            Ok(Some(conn)) => {
                let session = ServerSession::new(Arc::clone(&service), Arc::clone(&shutdown));
                let shutdown = Arc::clone(&shutdown);
                connections.push(thread::spawn(move || {
                    connection_loop(conn, session, shutdown)
                }));
            }
            Ok(None) => thread::sleep(POLL_INTERVAL),
            // A transient accept failure (e.g. the peer vanished
            // between queueing and accepting) must not kill the daemon.
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
        connections.retain(|handle| !handle.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Per-connection reader loop plus a dedicated writer thread: the
/// reader decodes and handles frames, the writer serializes responses
/// back. Any transport error ends the connection; the daemon lives on.
fn connection_loop<C: Connection>(conn: C, mut session: ServerSession, shutdown: Arc<AtomicBool>) {
    // The periodic read timeout is what lets the loop notice shutdown
    // while idle; a timeout is not an error.
    if conn.set_read_timeout_on(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let writer = match conn.duplicate() {
        Ok(w) => w,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer_thread = thread::spawn(move || {
        let mut writer = writer;
        while let Ok(payload) = rx.recv() {
            if write_frame(&mut writer, &payload).is_err() {
                break;
            }
        }
    });

    // The frame reader's fill state survives read timeouts, so a
    // frame that stalls mid-transfer (slow peer, loaded host) resumes
    // where it stopped instead of desyncing the stream.
    let mut reader = conn;
    let mut frames = FrameReader::new();
    loop {
        match frames.poll(&mut reader) {
            Ok(FrameProgress::Frame(payload)) => {
                let response = session.handle_frame(&payload);
                if tx.send(response).is_err() {
                    break;
                }
            }
            Ok(FrameProgress::Eof) => break, // peer hung up cleanly
            Ok(FrameProgress::Pending) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break, // malformed framing or hard I/O error
        }
    }
    drop(tx);
    let _ = writer_thread.join();
}

/// The wall-clock driver: every `cadence`, fold monotonic elapsed
/// nanoseconds into `advance_drift(now)` then `advance_dispatch(now)` —
/// real time drives calibration drift and batch dispatch exactly like
/// the explicit simulated clock does, retiring the explicit/auto
/// split. Deliberately dispatch-only: `tick` reports each completed
/// ticket exactly once, so if the driver called it the notifications
/// would be consumed here and a client's `Tick` request would race the
/// cadence. Completions therefore stay queued until a *client* ticks.
fn driver_loop(
    cadence: Duration,
    service: Arc<Mutex<Service>>,
    shutdown: Arc<AtomicBool>,
    errors: Arc<AtomicUsize>,
) {
    let origin = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        thread::sleep(cadence);
        let now = origin.elapsed().as_nanos() as f64;
        let mut service = lock_service(&service);
        if service.advance_drift(now).is_err() {
            errors.fetch_add(1, Ordering::SeqCst);
        }
        if service.advance_dispatch(now).is_err() {
            errors.fetch_add(1, Ordering::SeqCst);
        }
    }
}
