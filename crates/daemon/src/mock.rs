//! An in-memory transport: the full client/server protocol with no
//! sockets and no threads.
//!
//! [`MockTransport`] owns a [`ServerSession`] and satisfies each
//! [`Transport::call`] by invoking
//! [`ServerSession::handle_frame`] synchronously — the *same* handler
//! the socket server runs, so a protocol test through the mock
//! exercises everything but the framing I/O. Used by the negotiation,
//! garbage-rejection and bit-identity tests.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};

use qucp_runtime::Service;

use crate::server::ServerSession;
use crate::transport::Transport;
use crate::wire::WireError;

/// A synchronous in-memory transport wired straight into a
/// [`ServerSession`].
pub struct MockTransport {
    session: ServerSession,
}

impl MockTransport {
    /// Wraps a service in a single-connection in-memory daemon. The
    /// shutdown flag is fresh; a `Shutdown` request drains and flips it
    /// exactly as in the socket daemon.
    pub fn new(service: Service) -> Self {
        MockTransport::over(
            Arc::new(Mutex::new(service)),
            Arc::new(AtomicBool::new(false)),
        )
    }

    /// Wraps an existing shared service and shutdown flag — lets a test
    /// run several mock "connections" against one service, or inspect
    /// the flag after a shutdown request.
    pub fn over(service: Arc<Mutex<Service>>, shutdown: Arc<AtomicBool>) -> Self {
        MockTransport {
            session: ServerSession::new(service, shutdown),
        }
    }

    /// The session's negotiated version, once the handshake happened.
    pub fn negotiated_version(&self) -> Option<u16> {
        self.session.negotiated_version()
    }
}

impl Transport for MockTransport {
    fn call(&mut self, request: &[u8]) -> Result<Vec<u8>, WireError> {
        Ok(self.session.handle_frame(request))
    }
}
