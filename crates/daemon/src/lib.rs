//! `qucp-daemon` — the long-running front door to the QuCP runtime:
//! the `qucpd` socket daemon, its versioned binary wire protocol, and
//! a blocking [`Client`].
//!
//! The library [`Service`](qucp_runtime::Service) built in earlier
//! iterations is deterministic and fast, but in-process only. This
//! crate runs it as a shared process: remote clients submit circuits
//! over a unix-domain socket (or TCP), a wall-clock driver folds real
//! monotonic time into `advance_dispatch(now)` + `advance_drift(now)`
//! (completion notifications stay with client ticks), and the
//! daemon's reply to a drain is **bit-identical** to calling the
//! service in process — the protocol carries `f64`s as IEEE-754 bit
//! patterns end to end.
//!
//! # Frame layout
//!
//! Every message travels as one frame on a reliable byte stream:
//!
//! ```text
//! ┌────────────┬──────────────────────────────┐
//! │ u32 le len │ payload (len bytes)          │
//! └────────────┴──────────────────────────────┘
//! payload := tag (u8) | body
//! ```
//!
//! - `len` counts payload bytes only and is bounded by
//!   [`MAX_FRAME_LEN`] (16 MiB); an oversized header is rejected
//!   before any allocation.
//! - Request tags occupy `0x01..=0x7f`, response tags `0x81..=0xff`
//!   (the high bit marks the direction).
//! - Body fields are little-endian fixed-width integers; `usize` is
//!   always 8 bytes on the wire; `f64` is its IEEE-754 bit pattern
//!   (NaN payloads and signed zeros round-trip bit-for-bit); strings
//!   and sequences are length-prefixed; options carry a presence byte.
//! - Decoders are total: truncated frames, forged length prefixes,
//!   unknown tags, invalid UTF-8 and structurally impossible values
//!   all map to a typed [`WireError`] (server side: a [`Fault`]
//!   frame), never a panic.
//!
//! # Version rules
//!
//! The first frame on every connection must be `Hello`, carrying the
//! magic `"QCPD"` and the client's newest version. The server replies
//! `HelloAck` with `min(client, server)` — both sides then speak that
//! version — or an `UnsupportedVersion` fault when the client
//! predates [`MIN_SUPPORTED_VERSION`]. Any other request before the
//! handshake earns a `HandshakeRequired` fault. Within a version,
//! enum tag numbers are frozen; new variants only append.
//!
//! # Structure
//!
//! - [`wire`] — bounds-checked encoding primitives.
//! - [`proto`] — the message catalog and typed ser/de.
//! - [`transport`] — framing over byte streams; the [`Transport`]
//!   trait.
//! - [`server`] — [`ServerSession`] (pure protocol handler), the
//!   socket accept loop, the wall-clock driver.
//! - [`client`] — the blocking [`Client`] handle.
//! - [`mock`] — [`MockTransport`]: the whole protocol with no sockets
//!   or threads.

#![warn(missing_docs)]

pub mod client;
pub mod mock;
pub mod proto;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{Client, ClientError};
pub use mock::MockTransport;
pub use proto::{
    negotiate, Fault, Request, Response, WireCalibrationFault, WireRuntimeError, MAGIC,
    MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
pub use server::{Daemon, DaemonConfig, DaemonHandle, ServerSession};
pub use transport::{
    read_frame, write_frame, FrameProgress, FrameReader, StreamTransport, Transport,
};
pub use wire::{Decoder, Encoder, WireError, MAX_FRAME_LEN};
