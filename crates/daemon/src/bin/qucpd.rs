//! `qucpd` — the QuCP service daemon.
//!
//! Binds a unix-domain socket (or a TCP address), builds a
//! [`Service`] over the requested IBM device
//! fleet, and serves the versioned wire protocol until a client sends
//! `Shutdown` (which drains every admitted job first). A wall-clock
//! driver folds monotonic elapsed time into
//! `advance_dispatch`/`advance_drift` at the configured cadence —
//! with the driver on, the service clock is wall-clock nanoseconds
//! since start, and client `tick` horizons share that clock
//! (completion notifications are only ever delivered to client
//! ticks). `--cadence-ms 0` disables the driver, leaving the clock
//! entirely to client `tick`/`drain` requests (deterministic mode —
//! what the bit-identity tests use).

use std::process::ExitCode;
use std::time::Duration;

use qucp_daemon::{Daemon, DaemonConfig, DaemonHandle};
use qucp_device::ibm;
use qucp_runtime::Service;

const USAGE: &str = "\
qucpd — QuCP service daemon

USAGE:
    qucpd --socket PATH [OPTIONS]
    qucpd --tcp ADDR [OPTIONS]

OPTIONS:
    --socket PATH        unix-domain socket to bind (exclusive with --tcp)
    --tcp ADDR           TCP address to bind, e.g. 127.0.0.1:7777
    --devices LIST       comma-separated fleet: melbourne,toronto,manhattan
                         (default: melbourne)
    --seed N             deterministic RNG seed (default: 7)
    --max-parallel N     max programs multi-programmed per batch (default: 2)
    --shots N            default shot budget per job (default: 256)
    --cadence-ms N       wall-clock driver period; 0 disables the driver
                         (default: 10)
    --help               print this help
";

struct Args {
    socket: Option<String>,
    tcp: Option<String>,
    devices: Vec<String>,
    seed: u64,
    max_parallel: usize,
    shots: usize,
    cadence_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        tcp: None,
        devices: vec!["melbourne".into()],
        seed: 7,
        max_parallel: 2,
        shots: 256,
        cadence_ms: 10,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--socket" => args.socket = Some(value("--socket")?),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--devices" => {
                args.devices = value("--devices")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--max-parallel" => {
                args.max_parallel = value("--max-parallel")?
                    .parse()
                    .map_err(|e| format!("bad --max-parallel: {e}"))?;
            }
            "--shots" => {
                args.shots = value("--shots")?
                    .parse()
                    .map_err(|e| format!("bad --shots: {e}"))?;
            }
            "--cadence-ms" => {
                args.cadence_ms = value("--cadence-ms")?
                    .parse()
                    .map_err(|e| format!("bad --cadence-ms: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.socket.is_some() == args.tcp.is_some() {
        return Err("exactly one of --socket or --tcp is required".into());
    }
    Ok(args)
}

fn build_service(args: &Args) -> Result<Service, String> {
    let mut builder = Service::builder()
        .seed(args.seed)
        .max_parallel(args.max_parallel)
        .default_shots(args.shots);
    for name in &args.devices {
        let device = match name.as_str() {
            "melbourne" => ibm::melbourne(),
            "toronto" => ibm::toronto(),
            "manhattan" => ibm::manhattan(),
            other => return Err(format!("unknown device {other}")),
        };
        builder = builder.device(device);
    }
    builder.build().map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("qucpd: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let service = match build_service(&args) {
        Ok(service) => service,
        Err(message) => {
            eprintln!("qucpd: {message}");
            return ExitCode::from(2);
        }
    };

    let config = DaemonConfig {
        driver_cadence: (args.cadence_ms > 0).then(|| Duration::from_millis(args.cadence_ms)),
    };

    let handle: DaemonHandle = if let Some(path) = &args.socket {
        match Daemon::spawn_unix(path, service, config) {
            Ok(handle) => {
                eprintln!("qucpd: listening on {path}");
                handle
            }
            Err(e) => {
                eprintln!("qucpd: cannot bind {path}: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        let addr = args.tcp.as_deref().expect("checked in parse_args");
        match Daemon::spawn_tcp(addr, service, config) {
            Ok((handle, local)) => {
                eprintln!("qucpd: listening on {local}");
                handle
            }
            Err(e) => {
                eprintln!("qucpd: cannot bind {addr}: {e}");
                return ExitCode::from(1);
            }
        }
    };

    // Serve until a client's Shutdown request flips the flag, then join
    // every daemon thread so the final drain is fully flushed.
    while !handle.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.join();
    eprintln!("qucpd: shut down");
    ExitCode::SUCCESS
}
