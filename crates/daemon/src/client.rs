//! The blocking client handle.
//!
//! A [`Client`] wraps any [`Transport`] — a live unix or TCP socket,
//! or the in-memory [`MockTransport`](crate::MockTransport) — and
//! speaks the versioned protocol: `connect` performs the handshake,
//! after which each method is one request/response exchange. The
//! client is strictly synchronous; one outstanding request at a time.

use std::os::unix::net::UnixStream;
use std::path::Path;

use qucp_runtime::{JobRequest, JobResult, JobTicket, ServiceReport};

use crate::proto::{Fault, Request, Response, PROTOCOL_VERSION};
use crate::transport::{StreamTransport, Transport};
use crate::wire::WireError;

/// A client-side failure: transport/decoding trouble, a typed server
/// fault, or a response of the wrong shape.
#[derive(Debug)]
pub enum ClientError {
    /// Framing, I/O or decoding failed.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Fault(Fault),
    /// The server answered with a well-formed but unexpected message.
    UnexpectedResponse {
        /// What the client was waiting for.
        expected: &'static str,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Fault(fault) => write!(f, "server fault: {fault}"),
            ClientError::UnexpectedResponse { expected } => {
                write!(f, "unexpected response (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking protocol client over some [`Transport`].
pub struct Client<T: Transport> {
    transport: T,
    version: u16,
}

impl Client<StreamTransport<UnixStream>> {
    /// Connects to a daemon's unix socket and performs the handshake.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(path).map_err(WireError::from)?;
        Client::connect(StreamTransport::new(stream))
    }
}

impl<T: Transport> Client<T> {
    /// Performs the version handshake over an established transport,
    /// advertising this build's [`PROTOCOL_VERSION`].
    pub fn connect(transport: T) -> Result<Self, ClientError> {
        Client::connect_with_version(transport, PROTOCOL_VERSION)
    }

    /// Handshakes advertising an explicit version — the test hook for
    /// exercising negotiation (and rejection) paths.
    pub fn connect_with_version(mut transport: T, version: u16) -> Result<Self, ClientError> {
        let reply = transport.call(&Request::Hello { version }.encode())?;
        match Response::decode(&reply)? {
            Response::HelloAck { version } => Ok(Client { transport, version }),
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "HelloAck",
            }),
        }
    }

    /// The version agreed during the handshake.
    pub fn version(&self) -> u16 {
        self.version
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let reply = self.transport.call(&request.encode())?;
        match Response::decode(&reply)? {
            Response::Error(fault) => Err(ClientError::Fault(fault)),
            response => Ok(response),
        }
    }

    /// Submits a job; returns its ticket.
    pub fn submit(&mut self, request: JobRequest) -> Result<JobTicket, ClientError> {
        match self.call(&Request::Submit(Box::new(request)))? {
            Response::Ticket(ticket) => Ok(ticket),
            _ => Err(ClientError::UnexpectedResponse { expected: "Ticket" }),
        }
    }

    /// Advances the service clock to `now` (simulated ns); returns the
    /// tickets that completed by then.
    pub fn tick(&mut self, now: f64) -> Result<Vec<JobTicket>, ClientError> {
        match self.call(&Request::Tick { now })? {
            Response::Completed(tickets) => Ok(tickets),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "Completed",
            }),
        }
    }

    /// Fetches one ticket's result, `None` while its batch has not run.
    pub fn report(&mut self, ticket: JobTicket) -> Result<Option<JobResult>, ClientError> {
        match self.call(&Request::Report { ticket })? {
            Response::JobReport(result) => Ok(result.map(|boxed| *boxed)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "JobReport",
            }),
        }
    }

    /// Claims one ticket's result exactly once (protocol version ≥ 2):
    /// `Some` on the first call after the batch has run, `None` before
    /// completion and on every call after the claim. Claims never
    /// change the drained report — the server retains the canonical
    /// copy (see `Service::take_result`).
    pub fn take_result(&mut self, ticket: JobTicket) -> Result<Option<JobResult>, ClientError> {
        match self.call(&Request::TakeResult { ticket })? {
            Response::Taken(result) => Ok(result.map(|boxed| *boxed)),
            _ => Err(ClientError::UnexpectedResponse { expected: "Taken" }),
        }
    }

    /// Drains everything pending and returns the service report.
    pub fn drain(&mut self) -> Result<ServiceReport, ClientError> {
        match self.call(&Request::Drain)? {
            Response::Report(report) => Ok(*report),
            _ => Err(ClientError::UnexpectedResponse { expected: "Report" }),
        }
    }

    /// Fetches the service's cumulative route-cache counters (probe
    /// *and* plan caches; protocol version ≥ 3).
    pub fn cache_stats(&mut self) -> Result<qucp_runtime::RouteCacheStats, ClientError> {
        match self.call(&Request::CacheStats)? {
            Response::CacheStats(stats) => Ok(stats),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "CacheStats",
            }),
        }
    }

    /// Fetches the telemetry log accumulated so far.
    pub fn events(&mut self) -> Result<Vec<qucp_runtime::Event>, ClientError> {
        match self.call(&Request::Events)? {
            Response::Events(events) => Ok(events),
            _ => Err(ClientError::UnexpectedResponse { expected: "Events" }),
        }
    }

    /// Asks the daemon to drain, report, and stop accepting work. The
    /// returned report contains every job admitted before this call —
    /// graceful shutdown loses nothing.
    pub fn shutdown(&mut self) -> Result<ServiceReport, ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Report(report) => Ok(*report),
            _ => Err(ClientError::UnexpectedResponse { expected: "Report" }),
        }
    }
}
