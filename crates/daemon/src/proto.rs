//! The versioned message catalog: typed requests, responses and error
//! frames, with bit-exact ser/de for every runtime type that crosses
//! the wire.
//!
//! See the crate docs for the frame layout and version-negotiation
//! rules. Every `decode` in this module is total over arbitrary bytes:
//! malformed input maps onto a typed [`WireError`], never a panic —
//! the decoding paths are written for attacker-controlled sockets.
//! Floating-point fields travel as IEEE-754 bit patterns, so a decoded
//! [`ServiceReport`] compares **bit-for-bit equal** to the in-process
//! value it was encoded from (the daemon's headline acceptance
//! property).

use qucp_circuit::{Circuit, Gate};
use qucp_core::queue::QueueStats;
use qucp_core::{CrosstalkTreatment, PartitionPolicy, ProgramResult, Strategy};
use qucp_device::{Link, LinkPair};
use qucp_runtime::{
    BatchReport, CalibrationFault, DeviceReport, Event, JobRequest, JobResult, JobTicket,
    RouteCacheStats, RoutingChoice, RuntimeError, ServiceReport, ShotParallelism, ShrinkReason,
    TrajectoryKernel,
};
use qucp_sim::Counts;

use crate::wire::{Decoder, Encoder, WireError};

/// Connect-time magic: the ASCII bytes `QCPD`, little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"QCPD");

/// Newest protocol version this build speaks.
///
/// Version history:
/// - **1** — the initial catalog (HELLO through SHUTDOWN).
/// - **2** — appends the per-ticket claim pair
///   ([`Request::TakeResult`] / [`Response::Taken`], tags
///   `0x08`/`0x88`) and the optional per-job routing override on the
///   [`JobRequest`] wire form. Existing tags and fields are untouched
///   (frozen-tag rule: new variants append, existing numbers never
///   change).
/// - **3** — appends the route-cache introspection pair
///   ([`Request::CacheStats`] / [`Response::CacheStats`], tags
///   `0x09`/`0x89`). The stats payload carries the four v2-era probe
///   counters followed by four *optional trailing* plan-cache counters
///   (`plan_hits`, `plan_misses`, `plan_entries`, `plan_invalidated`):
///   a decoder that sees the payload end after the probe counters
///   reads the plan counters as zero, so a v3 client can talk to a
///   peer that never learned the plan cache. Existing tags and fields
///   are untouched.
pub const PROTOCOL_VERSION: u16 = 3;

/// Oldest protocol version this build still accepts.
pub const MIN_SUPPORTED_VERSION: u16 = 1;

/// Negotiates the spoken version from a peer's advertised one: the
/// newest version both sides support, or `None` when the peer is too
/// old. (A peer *newer* than us is fine — it is expected to downgrade
/// to our [`PROTOCOL_VERSION`], exactly as we downgrade to its.)
pub fn negotiate(peer_version: u16) -> Option<u16> {
    (peer_version >= MIN_SUPPORTED_VERSION).then(|| peer_version.min(PROTOCOL_VERSION))
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The mandatory first message: magic plus the client's newest
    /// version.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// Submit a job; answered with [`Response::Ticket`].
    Submit(Box<JobRequest>),
    /// Advance the service clock to `now` (simulated ns); answered with
    /// [`Response::Completed`] listing the tickets that finished.
    Tick {
        /// The tick horizon (`+∞` drains, NaN is rejected server-side).
        now: f64,
    },
    /// Fetch one ticket's result, if its batch has run; answered with
    /// [`Response::JobReport`]. A non-consuming peek — the claim state
    /// is untouched (see [`Request::TakeResult`]).
    Report {
        /// The ticket [`Response::Ticket`] handed out.
        ticket: JobTicket,
    },
    /// Serve everything pending and return the drained
    /// [`Response::Report`].
    Drain,
    /// Claim one ticket's result **exactly once** (protocol version
    /// ≥ 2); answered with [`Response::Taken`]: `None` while the batch
    /// has not run and on every call after the first successful claim.
    /// The server's drained report is unchanged by claims — see
    /// `Service::take_result`.
    TakeResult {
        /// The ticket [`Response::Ticket`] handed out.
        ticket: JobTicket,
    },
    /// Fetch the telemetry log accumulated so far; answered with
    /// [`Response::Events`].
    Events,
    /// Drain in-flight work, answer with the final [`Response::Report`],
    /// then stop the daemon's accept loop.
    Shutdown,
    /// Fetch the service's cumulative route-cache counters (protocol
    /// version ≥ 3); answered with [`Response::CacheStats`]. A pure
    /// read — no scheduling state changes.
    CacheStats,
}

/// A server-to-client message. Exactly one is sent per [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted; both sides now speak `version`.
    HelloAck {
        /// The negotiated version (see [`negotiate`]).
        version: u16,
    },
    /// Receipt of an accepted submission.
    Ticket(JobTicket),
    /// Tickets whose batches completed by the tick horizon.
    Completed(Vec<JobTicket>),
    /// A ticket's result, or `None` while its batch has not run.
    JobReport(Option<Box<JobResult>>),
    /// A claimed result (protocol version ≥ 2): `Some` exactly once
    /// per ticket, `None` before completion and after the claim.
    Taken(Option<Box<JobResult>>),
    /// A drained service report.
    Report(Box<ServiceReport>),
    /// The telemetry log.
    Events(Vec<Event>),
    /// A typed error frame (the request failed; the connection stays
    /// usable unless the fault says otherwise).
    Error(Fault),
    /// The route-cache counters (protocol version ≥ 3). The plan-cache
    /// fields travel as optional trailing values — see the version-3
    /// history note on [`PROTOCOL_VERSION`].
    CacheStats(RouteCacheStats),
}

/// A typed server-side error frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// The client's version predates [`MIN_SUPPORTED_VERSION`].
    UnsupportedVersion {
        /// What the client advertised.
        client: u16,
        /// Oldest version the server accepts.
        min: u16,
        /// Newest version the server speaks.
        max: u16,
    },
    /// A request arrived before the [`Request::Hello`] handshake.
    HandshakeRequired,
    /// The request frame's tag byte matched no known request.
    UnknownRequest {
        /// The offending tag.
        tag: u8,
    },
    /// The request frame failed to decode.
    MalformedRequest {
        /// The decoder's diagnosis, rendered.
        detail: String,
    },
    /// The service rejected the operation.
    Runtime(WireRuntimeError),
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::UnsupportedVersion { client, min, max } => write!(
                f,
                "client protocol version {client} unsupported (server speaks {min}..={max})"
            ),
            Fault::HandshakeRequired => write!(f, "first message must be Hello"),
            Fault::UnknownRequest { tag } => write!(f, "unknown request tag {tag:#04x}"),
            Fault::MalformedRequest { detail } => write!(f, "malformed request: {detail}"),
            Fault::Runtime(e) => write!(f, "runtime error: {e}"),
            Fault::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

impl std::error::Error for Fault {}

/// The wire projection of [`RuntimeError`]: every service-level variant
/// survives typed; planning/backend errors (`CoreError`) are flattened
/// to their rendered message, which keeps the protocol stable while
/// the planning pipeline grows variants.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRuntimeError {
    /// See [`RuntimeError::ZeroParallel`].
    ZeroParallel,
    /// See [`RuntimeError::NoDevices`].
    NoDevices,
    /// See [`RuntimeError::ZeroShots`].
    ZeroShots,
    /// See [`RuntimeError::EmptyCircuit`].
    EmptyCircuit,
    /// See [`RuntimeError::NonFiniteTime`].
    NonFiniteTime {
        /// The offending value (NaN round-trips bit-for-bit).
        value: f64,
    },
    /// See [`RuntimeError::InvalidThreshold`].
    InvalidThreshold {
        /// The offending value.
        value: f64,
    },
    /// See [`RuntimeError::InvalidCalibration`].
    InvalidCalibration {
        /// Device the snapshot was meant for.
        device: String,
        /// What disqualified it.
        fault: WireCalibrationFault,
    },
    /// See [`RuntimeError::DriftHorizonTooFar`].
    DriftHorizonTooFar {
        /// Steps the advance would apply per device.
        steps: u64,
        /// The per-advance bound.
        max: u64,
    },
    /// See [`RuntimeError::JobUnplaceable`].
    JobUnplaceable {
        /// The job's identifier.
        job_id: u64,
        /// The planning error, rendered.
        detail: String,
    },
    /// See [`RuntimeError::Core`].
    Core {
        /// The pipeline error, rendered.
        detail: String,
    },
    /// See [`RuntimeError::QueueCorrupted`].
    QueueCorrupted {
        /// The vanished job's submission sequence number.
        seq: u64,
    },
}

impl std::fmt::Display for WireRuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireRuntimeError::ZeroParallel => write!(f, "max_parallel must be positive"),
            WireRuntimeError::NoDevices => {
                write!(f, "at least one device must be registered")
            }
            WireRuntimeError::ZeroShots => write!(f, "shot budget must be positive"),
            WireRuntimeError::EmptyCircuit => {
                write!(f, "cannot schedule a zero-width circuit")
            }
            WireRuntimeError::NonFiniteTime { value } => {
                write!(f, "invalid time {value}")
            }
            WireRuntimeError::InvalidThreshold { value } => {
                write!(f, "fidelity threshold must be finite and >= 0, got {value}")
            }
            WireRuntimeError::InvalidCalibration { device, fault } => {
                write!(f, "recalibration of {device} rejected: {fault:?}")
            }
            WireRuntimeError::DriftHorizonTooFar { steps, max } => {
                write!(f, "advance_drift would apply {steps} steps (bound: {max})")
            }
            WireRuntimeError::JobUnplaceable { job_id, detail } => {
                write!(f, "job {job_id} cannot be placed: {detail}")
            }
            WireRuntimeError::Core { detail } => write!(f, "pipeline failed: {detail}"),
            WireRuntimeError::QueueCorrupted { seq } => {
                write!(
                    f,
                    "pending queue corrupted: job seq {seq} vanished from the store"
                )
            }
        }
    }
}

/// The wire projection of [`CalibrationFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCalibrationFault {
    /// See [`CalibrationFault::NonFinite`].
    NonFinite,
    /// See [`CalibrationFault::QubitCountMismatch`].
    QubitCountMismatch {
        /// Qubits the device has.
        expected: u64,
        /// Qubits the snapshot calibrates.
        got: u64,
    },
    /// See [`CalibrationFault::MissingLinks`].
    MissingLinks,
}

impl From<&RuntimeError> for WireRuntimeError {
    fn from(e: &RuntimeError) -> Self {
        match e {
            RuntimeError::ZeroParallel => WireRuntimeError::ZeroParallel,
            RuntimeError::NoDevices => WireRuntimeError::NoDevices,
            RuntimeError::ZeroShots => WireRuntimeError::ZeroShots,
            RuntimeError::EmptyCircuit => WireRuntimeError::EmptyCircuit,
            RuntimeError::NonFiniteTime { value } => {
                WireRuntimeError::NonFiniteTime { value: *value }
            }
            RuntimeError::InvalidThreshold { value } => {
                WireRuntimeError::InvalidThreshold { value: *value }
            }
            RuntimeError::InvalidCalibration { device, fault } => {
                WireRuntimeError::InvalidCalibration {
                    device: device.clone(),
                    fault: match fault {
                        CalibrationFault::NonFinite => WireCalibrationFault::NonFinite,
                        CalibrationFault::QubitCountMismatch { expected, got } => {
                            WireCalibrationFault::QubitCountMismatch {
                                expected: *expected as u64,
                                got: *got as u64,
                            }
                        }
                        CalibrationFault::MissingLinks => WireCalibrationFault::MissingLinks,
                    },
                }
            }
            RuntimeError::DriftHorizonTooFar { steps, max } => {
                WireRuntimeError::DriftHorizonTooFar {
                    steps: *steps,
                    max: *max,
                }
            }
            RuntimeError::JobUnplaceable { job_id, source } => WireRuntimeError::JobUnplaceable {
                job_id: *job_id,
                detail: source.to_string(),
            },
            RuntimeError::Core(source) => WireRuntimeError::Core {
                detail: source.to_string(),
            },
            RuntimeError::QueueCorrupted { seq } => {
                WireRuntimeError::QueueCorrupted { seq: *seq as u64 }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Domain-type ser/de.
//
// Each `put_x`/`get_x` pair is the single source of truth for type `x`'s
// wire layout; messages compose them. Enum tag values are frozen: new
// variants append, existing numbers never change (that is what the
// protocol version is for).
// ---------------------------------------------------------------------------

fn put_gate(e: &mut Encoder, gate: &Gate) {
    fn one(e: &mut Encoder, tag: u8, q: usize) {
        e.u8(tag);
        e.usize(q);
    }
    match *gate {
        Gate::I(q) => one(e, 0, q),
        Gate::X(q) => one(e, 1, q),
        Gate::Y(q) => one(e, 2, q),
        Gate::Z(q) => one(e, 3, q),
        Gate::H(q) => one(e, 4, q),
        Gate::S(q) => one(e, 5, q),
        Gate::Sdg(q) => one(e, 6, q),
        Gate::T(q) => one(e, 7, q),
        Gate::Tdg(q) => one(e, 8, q),
        Gate::Sx(q) => one(e, 9, q),
        Gate::Sxdg(q) => one(e, 10, q),
        Gate::Rx(q, a) => {
            one(e, 11, q);
            e.f64(a);
        }
        Gate::Ry(q, a) => {
            one(e, 12, q);
            e.f64(a);
        }
        Gate::Rz(q, a) => {
            one(e, 13, q);
            e.f64(a);
        }
        Gate::P(q, a) => {
            one(e, 14, q);
            e.f64(a);
        }
        Gate::U(q, t, p, l) => {
            one(e, 15, q);
            e.f64(t);
            e.f64(p);
            e.f64(l);
        }
        Gate::Cx(a, b) => {
            one(e, 16, a);
            e.usize(b);
        }
        Gate::Cz(a, b) => {
            one(e, 17, a);
            e.usize(b);
        }
        Gate::Cp(a, b, t) => {
            one(e, 18, a);
            e.usize(b);
            e.f64(t);
        }
        Gate::Swap(a, b) => {
            one(e, 19, a);
            e.usize(b);
        }
    }
}

fn get_gate(d: &mut Decoder<'_>) -> Result<Gate, WireError> {
    let tag = d.u8()?;
    Ok(match tag {
        0 => Gate::I(d.usize()?),
        1 => Gate::X(d.usize()?),
        2 => Gate::Y(d.usize()?),
        3 => Gate::Z(d.usize()?),
        4 => Gate::H(d.usize()?),
        5 => Gate::S(d.usize()?),
        6 => Gate::Sdg(d.usize()?),
        7 => Gate::T(d.usize()?),
        8 => Gate::Tdg(d.usize()?),
        9 => Gate::Sx(d.usize()?),
        10 => Gate::Sxdg(d.usize()?),
        11 => Gate::Rx(d.usize()?, d.f64()?),
        12 => Gate::Ry(d.usize()?, d.f64()?),
        13 => Gate::Rz(d.usize()?, d.f64()?),
        14 => Gate::P(d.usize()?, d.f64()?),
        15 => Gate::U(d.usize()?, d.f64()?, d.f64()?, d.f64()?),
        16 => Gate::Cx(d.usize()?, d.usize()?),
        17 => Gate::Cz(d.usize()?, d.usize()?),
        18 => Gate::Cp(d.usize()?, d.usize()?, d.f64()?),
        19 => Gate::Swap(d.usize()?, d.usize()?),
        tag => {
            return Err(WireError::UnknownTag {
                context: "Gate",
                tag,
            })
        }
    })
}

fn put_circuit(e: &mut Encoder, c: &Circuit) {
    e.usize(c.width());
    e.str(c.name());
    e.seq(c.gates(), put_gate);
}

fn get_circuit(d: &mut Decoder<'_>) -> Result<Circuit, WireError> {
    let width = d.usize()?;
    let name = d.str()?;
    let mut circuit = Circuit::with_name(width, name);
    let n = d.seq_len(2)?;
    for _ in 0..n {
        let gate = get_gate(d)?;
        // `try_push` re-validates operands against the register, so a
        // forged frame cannot smuggle an out-of-range or self-looped
        // gate past the library invariants.
        circuit
            .try_push(gate)
            .map_err(|_| WireError::InvalidValue { context: "Circuit" })?;
    }
    Ok(circuit)
}

fn put_link_pair(e: &mut Encoder, pair: &LinkPair) {
    e.usize(pair.first().low());
    e.usize(pair.first().high());
    e.usize(pair.second().low());
    e.usize(pair.second().high());
}

fn get_link_pair(d: &mut Decoder<'_>) -> Result<LinkPair, WireError> {
    let (a_low, a_high) = (d.usize()?, d.usize()?);
    let (b_low, b_high) = (d.usize()?, d.usize()?);
    if a_low == a_high || b_low == b_high {
        return Err(WireError::InvalidValue {
            context: "LinkPair",
        });
    }
    Ok(LinkPair::new(
        Link::new(a_low, a_high),
        Link::new(b_low, b_high),
    ))
}

fn put_crosstalk_treatment(e: &mut Encoder, t: &CrosstalkTreatment) {
    match t {
        CrosstalkTreatment::None => e.u8(0),
        CrosstalkTreatment::Sigma(sigma) => {
            e.u8(1);
            e.f64(*sigma);
        }
        CrosstalkTreatment::Measured(map) => {
            e.u8(2);
            e.usize(map.len());
            for (pair, ratio) in map {
                put_link_pair(e, pair);
                e.f64(*ratio);
            }
        }
    }
}

fn get_crosstalk_treatment(d: &mut Decoder<'_>) -> Result<CrosstalkTreatment, WireError> {
    Ok(match d.u8()? {
        0 => CrosstalkTreatment::None,
        1 => CrosstalkTreatment::Sigma(d.f64()?),
        2 => {
            let n = d.seq_len(40)?;
            let mut map = std::collections::BTreeMap::new();
            for _ in 0..n {
                let pair = get_link_pair(d)?;
                let ratio = d.f64()?;
                if map.insert(pair, ratio).is_some() {
                    return Err(WireError::InvalidValue {
                        context: "CrosstalkTreatment::Measured",
                    });
                }
            }
            CrosstalkTreatment::Measured(map)
        }
        tag => {
            return Err(WireError::UnknownTag {
                context: "CrosstalkTreatment",
                tag,
            })
        }
    })
}

fn put_strategy(e: &mut Encoder, s: &Strategy) {
    e.str(&s.name);
    match &s.partition {
        PartitionPolicy::NoiseAware(t) => {
            e.u8(0);
            put_crosstalk_treatment(e, t);
        }
        PartitionPolicy::TopologyGreedy => e.u8(1),
        PartitionPolicy::FidelityDegree => e.u8(2),
    }
    e.bool(s.crosstalk_aware_routing);
    e.bool(s.serialize_conflicts);
}

fn get_strategy(d: &mut Decoder<'_>) -> Result<Strategy, WireError> {
    let name = d.str()?;
    let partition = match d.u8()? {
        0 => PartitionPolicy::NoiseAware(get_crosstalk_treatment(d)?),
        1 => PartitionPolicy::TopologyGreedy,
        2 => PartitionPolicy::FidelityDegree,
        tag => {
            return Err(WireError::UnknownTag {
                context: "PartitionPolicy",
                tag,
            })
        }
    };
    Ok(Strategy {
        name,
        partition,
        crosstalk_aware_routing: d.bool()?,
        serialize_conflicts: d.bool()?,
    })
}

fn put_shot_parallelism(e: &mut Encoder, p: &ShotParallelism) {
    match *p {
        ShotParallelism::Serial => e.u8(0),
        ShotParallelism::Sharded { shards, threads } => {
            e.u8(1);
            e.usize(shards);
            e.usize(threads);
        }
        ShotParallelism::Auto => e.u8(2),
    }
}

fn get_shot_parallelism(d: &mut Decoder<'_>) -> Result<ShotParallelism, WireError> {
    Ok(match d.u8()? {
        0 => ShotParallelism::Serial,
        1 => ShotParallelism::Sharded {
            shards: d.usize()?,
            threads: d.usize()?,
        },
        2 => ShotParallelism::Auto,
        tag => {
            return Err(WireError::UnknownTag {
                context: "ShotParallelism",
                tag,
            })
        }
    })
}

fn put_trajectory_kernel(e: &mut Encoder, k: &TrajectoryKernel) {
    match k {
        TrajectoryKernel::Replay => e.u8(0),
        TrajectoryKernel::SurvivalSkip => e.u8(1),
    }
}

fn get_trajectory_kernel(d: &mut Decoder<'_>) -> Result<TrajectoryKernel, WireError> {
    Ok(match d.u8()? {
        0 => TrajectoryKernel::Replay,
        1 => TrajectoryKernel::SurvivalSkip,
        tag => {
            return Err(WireError::UnknownTag {
                context: "TrajectoryKernel",
                tag,
            })
        }
    })
}

fn put_routing_choice(e: &mut Encoder, c: &RoutingChoice) {
    match c {
        RoutingChoice::EarliestFree => e.u8(0),
        RoutingChoice::CalibrationAware { pressure_per_ns } => {
            e.u8(1);
            e.f64(*pressure_per_ns);
        }
    }
}

fn get_routing_choice(d: &mut Decoder<'_>) -> Result<RoutingChoice, WireError> {
    Ok(match d.u8()? {
        0 => RoutingChoice::EarliestFree,
        1 => RoutingChoice::CalibrationAware {
            pressure_per_ns: d.f64()?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                context: "RoutingChoice",
                tag,
            })
        }
    })
}

fn put_job_request(e: &mut Encoder, r: &JobRequest) {
    put_circuit(e, &r.circuit);
    e.f64(r.arrival);
    e.option(&r.id, |e, v| e.u64(*v));
    e.option(&r.shots, |e, v| e.usize(*v));
    e.option(&r.strategy, put_strategy);
    e.option(&r.fidelity_threshold, |e, v| e.f64(*v));
    e.option(&r.shot_parallelism, put_shot_parallelism);
    e.option(&r.trajectory_kernel, put_trajectory_kernel);
    e.option(&r.routing, put_routing_choice);
}

fn get_job_request(d: &mut Decoder<'_>) -> Result<JobRequest, WireError> {
    Ok(JobRequest {
        circuit: get_circuit(d)?,
        arrival: d.f64()?,
        id: d.option(|d| d.u64())?,
        shots: d.option(|d| d.usize())?,
        strategy: d.option(get_strategy)?,
        fidelity_threshold: d.option(|d| d.f64())?,
        shot_parallelism: d.option(get_shot_parallelism)?,
        trajectory_kernel: d.option(get_trajectory_kernel)?,
        routing: d.option(get_routing_choice)?,
    })
}

fn put_ticket(e: &mut Encoder, t: &JobTicket) {
    e.usize(t.seq);
    e.u64(t.id);
}

fn get_ticket(d: &mut Decoder<'_>) -> Result<JobTicket, WireError> {
    Ok(JobTicket {
        seq: d.usize()?,
        id: d.u64()?,
    })
}

fn put_queue_stats(e: &mut Encoder, s: &QueueStats) {
    e.f64(s.mean_waiting);
    e.f64(s.mean_turnaround);
    e.f64(s.makespan);
    e.f64(s.mean_throughput);
    e.usize(s.batches);
}

fn get_queue_stats(d: &mut Decoder<'_>) -> Result<QueueStats, WireError> {
    Ok(QueueStats {
        mean_waiting: d.f64()?,
        mean_turnaround: d.f64()?,
        makespan: d.f64()?,
        mean_throughput: d.f64()?,
        batches: d.usize()?,
    })
}

fn put_device_report(e: &mut Encoder, r: &DeviceReport) {
    e.str(&r.device);
    e.usize(r.jobs);
    put_queue_stats(e, &r.stats);
}

fn get_device_report(d: &mut Decoder<'_>) -> Result<DeviceReport, WireError> {
    Ok(DeviceReport {
        device: d.str()?,
        jobs: d.usize()?,
        stats: get_queue_stats(d)?,
    })
}

fn put_batch_report(e: &mut Encoder, r: &BatchReport) {
    e.usize(r.batch_index);
    e.str(&r.device);
    e.seq(&r.job_ids, |e, id| e.u64(*id));
    e.f64(r.start);
    e.f64(r.completion);
    e.f64(r.makespan);
    e.usize(r.used_qubits);
    e.usize(r.conflict_count);
}

fn get_batch_report(d: &mut Decoder<'_>) -> Result<BatchReport, WireError> {
    Ok(BatchReport {
        batch_index: d.usize()?,
        device: d.str()?,
        job_ids: d.seq(8, |d| d.u64())?,
        start: d.f64()?,
        completion: d.f64()?,
        makespan: d.f64()?,
        used_qubits: d.usize()?,
        conflict_count: d.usize()?,
    })
}

fn put_counts(e: &mut Encoder, c: &Counts) {
    e.usize(c.width());
    let entries: Vec<(usize, usize)> = c.iter().collect();
    e.seq(&entries, |e, &(idx, n)| {
        e.usize(idx);
        e.usize(n);
    });
}

fn get_counts(d: &mut Decoder<'_>) -> Result<Counts, WireError> {
    let width = d.usize()?;
    let entries = d.seq(16, |d| Ok((d.usize()?, d.usize()?)))?;
    Counts::from_entries(width, entries).ok_or(WireError::InvalidValue { context: "Counts" })
}

fn put_program_result(e: &mut Encoder, r: &ProgramResult) {
    e.str(&r.name);
    e.seq(&r.partition, |e, q| e.usize(*q));
    e.f64(r.efs);
    e.usize(r.swap_count);
    put_counts(e, &r.counts);
    e.option(&r.pst, |e, v| e.f64(*v));
    e.f64(r.jsd);
}

fn get_program_result(d: &mut Decoder<'_>) -> Result<ProgramResult, WireError> {
    Ok(ProgramResult {
        name: d.str()?,
        partition: d.seq(8, |d| d.usize())?,
        efs: d.f64()?,
        swap_count: d.usize()?,
        counts: get_counts(d)?,
        pst: d.option(|d| d.f64())?,
        jsd: d.f64()?,
    })
}

fn put_job_result(e: &mut Encoder, r: &JobResult) {
    e.u64(r.job_id);
    e.usize(r.batch_index);
    e.f64(r.start);
    e.f64(r.completion);
    e.f64(r.waiting);
    e.f64(r.turnaround);
    put_program_result(e, &r.result);
}

fn get_job_result(d: &mut Decoder<'_>) -> Result<JobResult, WireError> {
    Ok(JobResult {
        job_id: d.u64()?,
        batch_index: d.usize()?,
        start: d.f64()?,
        completion: d.f64()?,
        waiting: d.f64()?,
        turnaround: d.f64()?,
        result: get_program_result(d)?,
    })
}

fn put_shrink_reason(e: &mut Encoder, r: &ShrinkReason) {
    match r {
        ShrinkReason::PartitionFailure => e.u8(0),
        ShrinkReason::FidelityGate => e.u8(1),
    }
}

fn get_shrink_reason(d: &mut Decoder<'_>) -> Result<ShrinkReason, WireError> {
    Ok(match d.u8()? {
        0 => ShrinkReason::PartitionFailure,
        1 => ShrinkReason::FidelityGate,
        tag => {
            return Err(WireError::UnknownTag {
                context: "ShrinkReason",
                tag,
            })
        }
    })
}

fn put_event(e: &mut Encoder, event: &Event) {
    match event {
        Event::JobSubmitted {
            job_id,
            seq,
            arrival,
            width,
            shots,
        } => {
            e.u8(0);
            e.u64(*job_id);
            e.usize(*seq);
            e.f64(*arrival);
            e.usize(*width);
            e.usize(*shots);
        }
        Event::BatchRouted {
            batch_index,
            device,
            policy,
            score,
            start,
            candidates,
        } => {
            e.u8(1);
            e.usize(*batch_index);
            e.str(device);
            e.str(policy);
            e.f64(*score);
            e.f64(*start);
            e.usize(*candidates);
        }
        Event::BatchPlanned {
            batch_index,
            device,
            job_ids,
            start,
            makespan,
        } => {
            e.u8(2);
            e.usize(*batch_index);
            e.str(device);
            e.seq(job_ids, |e, id| e.u64(*id));
            e.f64(*start);
            e.f64(*makespan);
        }
        Event::BatchShrunk {
            batch_index,
            device,
            dropped_job_id,
            remaining,
            reason,
        } => {
            e.u8(3);
            e.usize(*batch_index);
            e.str(device);
            e.u64(*dropped_job_id);
            e.usize(*remaining);
            put_shrink_reason(e, reason);
        }
        Event::DeviceRecalibrated { device, epoch } => {
            e.u8(4);
            e.str(device);
            e.u64(*epoch);
        }
        Event::JobCompleted {
            job_id,
            seq,
            batch_index,
            completion,
            turnaround,
        } => {
            e.u8(5);
            e.u64(*job_id);
            e.usize(*seq);
            e.usize(*batch_index);
            e.f64(*completion);
            e.f64(*turnaround);
        }
    }
}

fn get_event(d: &mut Decoder<'_>) -> Result<Event, WireError> {
    Ok(match d.u8()? {
        0 => Event::JobSubmitted {
            job_id: d.u64()?,
            seq: d.usize()?,
            arrival: d.f64()?,
            width: d.usize()?,
            shots: d.usize()?,
        },
        1 => Event::BatchRouted {
            batch_index: d.usize()?,
            device: d.str()?,
            policy: d.str()?,
            score: d.f64()?,
            start: d.f64()?,
            candidates: d.usize()?,
        },
        2 => Event::BatchPlanned {
            batch_index: d.usize()?,
            device: d.str()?,
            job_ids: d.seq(8, |d| d.u64())?,
            start: d.f64()?,
            makespan: d.f64()?,
        },
        3 => Event::BatchShrunk {
            batch_index: d.usize()?,
            device: d.str()?,
            dropped_job_id: d.u64()?,
            remaining: d.usize()?,
            reason: get_shrink_reason(d)?,
        },
        4 => Event::DeviceRecalibrated {
            device: d.str()?,
            epoch: d.u64()?,
        },
        5 => Event::JobCompleted {
            job_id: d.u64()?,
            seq: d.usize()?,
            batch_index: d.usize()?,
            completion: d.f64()?,
            turnaround: d.f64()?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                context: "Event",
                tag,
            })
        }
    })
}

fn put_service_report(e: &mut Encoder, r: &ServiceReport) {
    put_queue_stats(e, &r.stats);
    e.seq(&r.per_device, put_device_report);
    e.seq(&r.batches, put_batch_report);
    e.seq(&r.job_results, put_job_result);
    e.seq(&r.events, put_event);
    e.usize(r.dropped_events);
}

fn get_service_report(d: &mut Decoder<'_>) -> Result<ServiceReport, WireError> {
    Ok(ServiceReport {
        stats: get_queue_stats(d)?,
        per_device: d.seq(1, get_device_report)?,
        batches: d.seq(1, get_batch_report)?,
        job_results: d.seq(1, get_job_result)?,
        events: d.seq(1, get_event)?,
        dropped_events: d.usize()?,
    })
}

fn put_route_cache_stats(e: &mut Encoder, s: &RouteCacheStats) {
    // The four probe counters are the frozen v3 base; the plan-cache
    // counters append after them as optional trailing fields, so a
    // payload truncated after the base still decodes (plan fields read
    // as zero). Any future appendix must extend *after* these, whole
    // or absent.
    e.usize(s.hits);
    e.usize(s.misses);
    e.usize(s.entries);
    e.usize(s.invalidated);
    e.usize(s.plan_hits);
    e.usize(s.plan_misses);
    e.usize(s.plan_entries);
    e.usize(s.plan_invalidated);
}

fn get_route_cache_stats(d: &mut Decoder<'_>) -> Result<RouteCacheStats, WireError> {
    let hits = d.usize()?;
    let misses = d.usize()?;
    let entries = d.usize()?;
    let invalidated = d.usize()?;
    let (plan_hits, plan_misses, plan_entries, plan_invalidated) = if d.remaining() == 0 {
        // A peer that predates the plan cache stops after the probe
        // counters; its plan cache is trivially empty.
        (0, 0, 0, 0)
    } else {
        (d.usize()?, d.usize()?, d.usize()?, d.usize()?)
    };
    Ok(RouteCacheStats {
        hits,
        misses,
        entries,
        invalidated,
        plan_hits,
        plan_misses,
        plan_entries,
        plan_invalidated,
    })
}

fn put_calibration_fault(e: &mut Encoder, fault: &WireCalibrationFault) {
    match *fault {
        WireCalibrationFault::NonFinite => e.u8(0),
        WireCalibrationFault::QubitCountMismatch { expected, got } => {
            e.u8(1);
            e.u64(expected);
            e.u64(got);
        }
        WireCalibrationFault::MissingLinks => e.u8(2),
    }
}

fn get_calibration_fault(d: &mut Decoder<'_>) -> Result<WireCalibrationFault, WireError> {
    Ok(match d.u8()? {
        0 => WireCalibrationFault::NonFinite,
        1 => WireCalibrationFault::QubitCountMismatch {
            expected: d.u64()?,
            got: d.u64()?,
        },
        2 => WireCalibrationFault::MissingLinks,
        tag => {
            return Err(WireError::UnknownTag {
                context: "WireCalibrationFault",
                tag,
            })
        }
    })
}

fn put_runtime_error(e: &mut Encoder, err: &WireRuntimeError) {
    match err {
        WireRuntimeError::ZeroParallel => e.u8(0),
        WireRuntimeError::NoDevices => e.u8(1),
        WireRuntimeError::ZeroShots => e.u8(2),
        WireRuntimeError::EmptyCircuit => e.u8(3),
        WireRuntimeError::NonFiniteTime { value } => {
            e.u8(4);
            e.f64(*value);
        }
        WireRuntimeError::InvalidThreshold { value } => {
            e.u8(5);
            e.f64(*value);
        }
        WireRuntimeError::InvalidCalibration { device, fault } => {
            e.u8(6);
            e.str(device);
            put_calibration_fault(e, fault);
        }
        WireRuntimeError::DriftHorizonTooFar { steps, max } => {
            e.u8(7);
            e.u64(*steps);
            e.u64(*max);
        }
        WireRuntimeError::JobUnplaceable { job_id, detail } => {
            e.u8(8);
            e.u64(*job_id);
            e.str(detail);
        }
        WireRuntimeError::Core { detail } => {
            e.u8(9);
            e.str(detail);
        }
        WireRuntimeError::QueueCorrupted { seq } => {
            e.u8(10);
            e.u64(*seq);
        }
    }
}

fn get_runtime_error(d: &mut Decoder<'_>) -> Result<WireRuntimeError, WireError> {
    Ok(match d.u8()? {
        0 => WireRuntimeError::ZeroParallel,
        1 => WireRuntimeError::NoDevices,
        2 => WireRuntimeError::ZeroShots,
        3 => WireRuntimeError::EmptyCircuit,
        4 => WireRuntimeError::NonFiniteTime { value: d.f64()? },
        5 => WireRuntimeError::InvalidThreshold { value: d.f64()? },
        6 => WireRuntimeError::InvalidCalibration {
            device: d.str()?,
            fault: get_calibration_fault(d)?,
        },
        7 => WireRuntimeError::DriftHorizonTooFar {
            steps: d.u64()?,
            max: d.u64()?,
        },
        8 => WireRuntimeError::JobUnplaceable {
            job_id: d.u64()?,
            detail: d.str()?,
        },
        9 => WireRuntimeError::Core { detail: d.str()? },
        10 => WireRuntimeError::QueueCorrupted { seq: d.u64()? },
        tag => {
            return Err(WireError::UnknownTag {
                context: "WireRuntimeError",
                tag,
            })
        }
    })
}

fn put_fault(e: &mut Encoder, fault: &Fault) {
    match fault {
        Fault::UnsupportedVersion { client, min, max } => {
            e.u8(0);
            e.u16(*client);
            e.u16(*min);
            e.u16(*max);
        }
        Fault::HandshakeRequired => e.u8(1),
        Fault::UnknownRequest { tag } => {
            e.u8(2);
            e.u8(*tag);
        }
        Fault::MalformedRequest { detail } => {
            e.u8(3);
            e.str(detail);
        }
        Fault::Runtime(err) => {
            e.u8(4);
            put_runtime_error(e, err);
        }
        Fault::ShuttingDown => e.u8(5),
    }
}

fn get_fault(d: &mut Decoder<'_>) -> Result<Fault, WireError> {
    Ok(match d.u8()? {
        0 => Fault::UnsupportedVersion {
            client: d.u16()?,
            min: d.u16()?,
            max: d.u16()?,
        },
        1 => Fault::HandshakeRequired,
        2 => Fault::UnknownRequest { tag: d.u8()? },
        3 => Fault::MalformedRequest { detail: d.str()? },
        4 => Fault::Runtime(get_runtime_error(d)?),
        5 => Fault::ShuttingDown,
        tag => {
            return Err(WireError::UnknownTag {
                context: "Fault",
                tag,
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Message framing payloads.
// ---------------------------------------------------------------------------

/// Request tag bytes (the high bit distinguishes responses).
mod req_tag {
    pub const HELLO: u8 = 0x01;
    pub const SUBMIT: u8 = 0x02;
    pub const TICK: u8 = 0x03;
    pub const REPORT: u8 = 0x04;
    pub const DRAIN: u8 = 0x05;
    pub const EVENTS: u8 = 0x06;
    pub const SHUTDOWN: u8 = 0x07;
    pub const TAKE_RESULT: u8 = 0x08;
    pub const CACHE_STATS: u8 = 0x09;
}

/// Response tag bytes.
mod resp_tag {
    pub const HELLO_ACK: u8 = 0x81;
    pub const TICKET: u8 = 0x82;
    pub const COMPLETED: u8 = 0x83;
    pub const JOB_REPORT: u8 = 0x84;
    pub const REPORT: u8 = 0x85;
    pub const EVENTS: u8 = 0x86;
    pub const ERROR: u8 = 0x87;
    pub const TAKEN: u8 = 0x88;
    pub const CACHE_STATS: u8 = 0x89;
}

impl Request {
    /// Encodes the request as one frame payload (tag byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Request::Hello { version } => {
                e.u8(req_tag::HELLO);
                e.u32(MAGIC);
                e.u16(*version);
            }
            Request::Submit(request) => {
                e.u8(req_tag::SUBMIT);
                put_job_request(&mut e, request);
            }
            Request::Tick { now } => {
                e.u8(req_tag::TICK);
                e.f64(*now);
            }
            Request::Report { ticket } => {
                e.u8(req_tag::REPORT);
                put_ticket(&mut e, ticket);
            }
            Request::Drain => e.u8(req_tag::DRAIN),
            Request::Events => e.u8(req_tag::EVENTS),
            Request::Shutdown => e.u8(req_tag::SHUTDOWN),
            Request::TakeResult { ticket } => {
                e.u8(req_tag::TAKE_RESULT);
                put_ticket(&mut e, ticket);
            }
            Request::CacheStats => e.u8(req_tag::CACHE_STATS),
        }
        e.finish()
    }

    /// Decodes one frame payload, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Request, WireError> {
        let mut d = Decoder::new(bytes);
        let request = match d.u8()? {
            req_tag::HELLO => {
                let magic = d.u32()?;
                if magic != MAGIC {
                    return Err(WireError::BadMagic { got: magic });
                }
                Request::Hello { version: d.u16()? }
            }
            req_tag::SUBMIT => Request::Submit(Box::new(get_job_request(&mut d)?)),
            req_tag::TICK => Request::Tick { now: d.f64()? },
            req_tag::REPORT => Request::Report {
                ticket: get_ticket(&mut d)?,
            },
            req_tag::DRAIN => Request::Drain,
            req_tag::EVENTS => Request::Events,
            req_tag::SHUTDOWN => Request::Shutdown,
            req_tag::TAKE_RESULT => Request::TakeResult {
                ticket: get_ticket(&mut d)?,
            },
            req_tag::CACHE_STATS => Request::CacheStats,
            tag => {
                return Err(WireError::UnknownTag {
                    context: "Request",
                    tag,
                })
            }
        };
        d.expect_end()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes the response as one frame payload (tag byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Response::HelloAck { version } => {
                e.u8(resp_tag::HELLO_ACK);
                e.u32(MAGIC);
                e.u16(*version);
            }
            Response::Ticket(ticket) => {
                e.u8(resp_tag::TICKET);
                put_ticket(&mut e, ticket);
            }
            Response::Completed(tickets) => {
                e.u8(resp_tag::COMPLETED);
                e.seq(tickets, put_ticket);
            }
            Response::JobReport(result) => {
                e.u8(resp_tag::JOB_REPORT);
                let inner = result.as_deref();
                e.option(&inner, |e, r| put_job_result(e, r));
            }
            Response::Report(report) => {
                e.u8(resp_tag::REPORT);
                put_service_report(&mut e, report);
            }
            Response::Events(events) => {
                e.u8(resp_tag::EVENTS);
                e.seq(events, put_event);
            }
            Response::Error(fault) => {
                e.u8(resp_tag::ERROR);
                put_fault(&mut e, fault);
            }
            Response::Taken(result) => {
                e.u8(resp_tag::TAKEN);
                let inner = result.as_deref();
                e.option(&inner, |e, r| put_job_result(e, r));
            }
            Response::CacheStats(stats) => {
                e.u8(resp_tag::CACHE_STATS);
                put_route_cache_stats(&mut e, stats);
            }
        }
        e.finish()
    }

    /// Decodes one frame payload, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Response, WireError> {
        let mut d = Decoder::new(bytes);
        let response = match d.u8()? {
            resp_tag::HELLO_ACK => {
                let magic = d.u32()?;
                if magic != MAGIC {
                    return Err(WireError::BadMagic { got: magic });
                }
                Response::HelloAck { version: d.u16()? }
            }
            resp_tag::TICKET => Response::Ticket(get_ticket(&mut d)?),
            resp_tag::COMPLETED => Response::Completed(d.seq(16, get_ticket)?),
            resp_tag::JOB_REPORT => Response::JobReport(d.option(get_job_result)?.map(Box::new)),
            resp_tag::REPORT => Response::Report(Box::new(get_service_report(&mut d)?)),
            resp_tag::EVENTS => Response::Events(d.seq(1, get_event)?),
            resp_tag::ERROR => Response::Error(get_fault(&mut d)?),
            resp_tag::TAKEN => Response::Taken(d.option(get_job_result)?.map(Box::new)),
            resp_tag::CACHE_STATS => Response::CacheStats(get_route_cache_stats(&mut d)?),
            tag => {
                return Err(WireError::UnknownTag {
                    context: "Response",
                    tag,
                })
            }
        };
        d.expect_end()?;
        Ok(response)
    }
}
