//! End-to-end test of the real `qucpd` binary: spawn the process,
//! connect over its unix socket, run a workload, shut it down, and
//! check it exits cleanly.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use qucp_circuit::{Circuit, Gate};
use qucp_daemon::Client;
use qucp_runtime::JobRequest;

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn qucpd_binary_serves_a_workload_end_to_end() {
    let socket = std::env::temp_dir().join(format!("qucpd-bin-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);

    let child = Command::new(env!("CARGO_BIN_EXE_qucpd"))
        .args([
            "--socket",
            socket.to_str().expect("utf-8 temp path"),
            "--devices",
            "melbourne",
            "--seed",
            "7",
            "--shots",
            "64",
            "--cadence-ms",
            "2",
        ])
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn qucpd");
    let mut child = KillOnDrop(child);

    // Wait for the daemon to bind its socket.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut client = loop {
        if socket.exists() {
            if let Ok(client) = Client::connect_unix(&socket) {
                break client;
            }
        }
        assert!(Instant::now() < deadline, "qucpd never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(20));
    };

    // Submit a few jobs; the wall-clock driver completes them without
    // any client tick.
    let mut tickets = Vec::new();
    for i in 0..3u64 {
        let mut circuit = Circuit::with_name(2, format!("bell-{i}"));
        circuit.try_push(Gate::H(0)).unwrap();
        circuit.try_push(Gate::Cx(0, 1)).unwrap();
        tickets.push(
            client
                .submit(JobRequest::new(circuit, 0.0).with_id(100 + i))
                .expect("submit"),
        );
    }
    for ticket in &tickets {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if client.report(*ticket).expect("report").is_some() {
                break;
            }
            assert!(Instant::now() < deadline, "job {ticket:?} never completed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    let report = client.shutdown().expect("shutdown");
    assert_eq!(report.job_results.len(), 3);
    let mut ids: Vec<u64> = report.job_results.iter().map(|r| r.job_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![100, 101, 102]);

    // The process must exit cleanly after the shutdown request.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match child.0.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "qucpd exited with {status}");
                break;
            }
            None => {
                assert!(Instant::now() < deadline, "qucpd never exited");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}
