//! Property-based tests for partitioning, mapping and the merged-schedule
//! context.

use proptest::prelude::*;
use qucp_circuit::Circuit;
use qucp_core::{
    allocate_partitions, candidate_partitions, context::build_context, local_topology, map_program,
    CrosstalkTreatment, PartitionPolicy,
};
use qucp_device::ibm;
use qucp_sim::noiseless_probabilities;
use std::collections::BTreeSet;

/// A random program on `width` qubits biased toward two-qubit structure.
fn arb_program(width: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        (0..width).prop_map(|q| (0, q, q)),
        ((0..width), (0..width))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| (1, a, b)),
    ];
    proptest::collection::vec(gate, 1..25).prop_map(move |ops| {
        let mut c = Circuit::new(width);
        for (kind, a, b) in ops {
            if kind == 0 {
                c.h(a);
            } else {
                c.cx(a, b);
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn candidates_are_connected(size in 2usize..6) {
        let dev = ibm::toronto();
        for c in candidate_partitions(&dev, size, &BTreeSet::new()) {
            prop_assert_eq!(c.len(), size);
            prop_assert!(dev.topology().is_connected_subset(&c));
            let mut sorted = c.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, c);
        }
    }

    #[test]
    fn allocations_always_disjoint(w1 in 2usize..5, w2 in 2usize..5, w3 in 2usize..4) {
        let dev = ibm::manhattan();
        let p1 = {
            let mut c = Circuit::new(w1);
            for i in 1..w1 { c.cx(i - 1, i); }
            c
        };
        let p2 = {
            let mut c = Circuit::new(w2);
            for i in 1..w2 { c.cx(i - 1, i); }
            c
        };
        let p3 = {
            let mut c = Circuit::new(w3);
            for i in 1..w3 { c.cx(i - 1, i); }
            c
        };
        let allocs = allocate_partitions(
            &dev,
            &[&p1, &p2, &p3],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(4.0)),
        ).unwrap();
        let mut all: Vec<usize> = allocs.iter().flat_map(|a| a.qubits.clone()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n);
        prop_assert_eq!(n, w1 + w2 + w3);
        for a in &allocs {
            prop_assert!(dev.topology().is_connected_subset(&a.qubits));
            prop_assert!(a.efs.score >= 0.0);
        }
    }

    #[test]
    fn mapping_routes_every_gate_onto_links(program in arb_program(4)) {
        let dev = ibm::toronto();
        let allocs = allocate_partitions(
            &dev,
            &[&program],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::None),
        ).unwrap();
        let mapped = map_program(&dev, &allocs[0].qubits, &program);
        let local = local_topology(&dev, &allocs[0].qubits);
        for g in mapped.circuit.gates() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                let qs = qs.as_slice();
                prop_assert!(local.has_link(qs[0], qs[1]));
            }
        }
        // Mappings are permutations.
        let mut init = mapped.initial_mapping.clone();
        init.sort_unstable();
        prop_assert_eq!(init, (0..4).collect::<Vec<_>>());
        let mut fin = mapped.final_mapping.clone();
        fin.sort_unstable();
        prop_assert_eq!(fin, (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn routing_preserves_distribution(program in arb_program(4)) {
        let dev = ibm::toronto();
        let allocs = allocate_partitions(
            &dev,
            &[&program],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::None),
        ).unwrap();
        let mapped = map_program(&dev, &allocs[0].qubits, &program);
        let routed_p = noiseless_probabilities(&mapped.circuit);
        let logical_p = noiseless_probabilities(&program);
        for (outcome, &p) in routed_p.iter().enumerate() {
            let mut logical = 0usize;
            for (lq, &wire) in mapped.final_mapping.iter().enumerate() {
                if outcome >> wire & 1 == 1 {
                    logical |= 1 << lq;
                }
            }
            prop_assert!((p - logical_p[logical]).abs() < 1e-9);
        }
    }

    #[test]
    fn context_scalings_at_least_one(seed in 0u64..30) {
        let dev = ibm::toronto();
        let p1 = {
            let mut c = Circuit::new(3);
            c.cx(0, 1).cx(1, 2).cx(0, 1);
            c
        };
        let p2 = p1.clone();
        let allocs = allocate_partitions(
            &dev,
            &[&p1, &p2],
            &PartitionPolicy::TopologyGreedy,
        ).unwrap();
        let m1 = map_program(&dev, &allocs[0].qubits, &p1);
        let m2 = map_program(&dev, &allocs[1].qubits, &p2);
        let ctx = build_context(&dev, &[m1, m2], false);
        let _ = seed;
        for s in &ctx.scalings {
            prop_assert!(s.max_factor() >= 1.0);
        }
        prop_assert!(ctx.makespan > 0.0);
        prop_assert!(ctx.serial_runtime >= ctx.makespan);
    }
}
