//! Noise-aware qubit mapping inside an allocated partition: initial
//! placement (HA-style heuristic, Niu et al. \[18\] of the paper) and
//! reliability-weighted SWAP routing.
//!
//! The mapped program stays in *partition-local* coordinates: local wire
//! `w` is carried by physical qubit `layout[w]`. Routing inserts SWAPs,
//! which permute which logical qubit lives on which wire; the final
//! mapping is recorded so measured counts can be permuted back to
//! logical order.

use std::collections::BTreeSet;

use qucp_circuit::{Circuit, Gate};
use qucp_device::{Device, Link, Topology};
use qucp_sim::Counts;

/// A program mapped and routed onto a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedProgram {
    /// The routed circuit in local wire coordinates.
    pub circuit: Circuit,
    /// Local wire → physical qubit.
    pub layout: Vec<usize>,
    /// Logical qubit → local wire before routing.
    pub initial_mapping: Vec<usize>,
    /// Logical qubit → local wire after all SWAPs.
    pub final_mapping: Vec<usize>,
    /// Number of SWAP gates inserted by routing.
    pub swap_count: usize,
}

impl MappedProgram {
    /// Permutes measured counts (local wire order) back into logical
    /// qubit order so they can be compared with the ideal distribution
    /// of the unmapped circuit.
    pub fn to_logical_counts(&self, counts: &Counts) -> Counts {
        let mut out = Counts::new(counts.width());
        for (outcome, n) in counts.iter() {
            let mut logical = 0usize;
            for (lq, &wire) in self.final_mapping.iter().enumerate() {
                if outcome >> wire & 1 == 1 {
                    logical |= 1 << lq;
                }
            }
            for _ in 0..n {
                out.record(logical);
            }
        }
        out
    }
}

/// Builds the partition-local topology: local index = position of the
/// physical qubit in the (sorted) partition list.
pub fn local_topology(device: &Device, partition: &[usize]) -> Topology {
    let links = device.topology().links_within(partition);
    let local = |q: usize| partition.iter().position(|&p| p == q).unwrap();
    let edges: Vec<(usize, usize)> = links
        .iter()
        .map(|l| (local(l.low()), local(l.high())))
        .collect();
    Topology::new(partition.len(), &edges)
}

/// Noise-aware initial mapping: logical qubit → local wire.
///
/// Logical qubits are placed in descending interaction-weight order;
/// each is put on the free wire minimizing the reliability-weighted
/// distance to its already-placed interaction partners (falling back to
/// wire quality — subgraph degree, then readout error — when it has no
/// placed partner yet).
pub fn initial_mapping(device: &Device, partition: &[usize], circuit: &Circuit) -> Vec<usize> {
    let k = partition.len();
    assert_eq!(
        circuit.width(),
        k,
        "partition size must equal program width"
    );
    let topo = local_topology(device, partition);
    let cal = device.calibration();
    let weights = circuit.interaction_graph();
    let mut total_weight = vec![0usize; k];
    for (&(a, b), &w) in &weights {
        total_weight[a] += w;
        total_weight[b] += w;
    }
    let mut logical_order: Vec<usize> = (0..k).collect();
    logical_order.sort_by_key(|&l| (std::cmp::Reverse(total_weight[l]), l));

    // Wire quality: high subgraph degree, low readout error.
    let quality = |w: usize| {
        (
            std::cmp::Reverse(topo.degree(w)),
            (cal.readout_error(partition[w]) * 1e9) as u64,
            w,
        )
    };
    let mean_err = {
        let links = topo.links();
        if links.is_empty() {
            0.02
        } else {
            links
                .iter()
                .map(|l| cal.cx_error(Link::new(partition[l.low()], partition[l.high()])))
                .sum::<f64>()
                / links.len() as f64
        }
    };

    let mut mapping = vec![usize::MAX; k];
    let mut free: BTreeSet<usize> = (0..k).collect();
    for &l in &logical_order {
        let placed_partners: Vec<(usize, usize)> = weights
            .iter()
            .filter_map(|(&(a, b), &w)| {
                if a == l && mapping[b] != usize::MAX {
                    Some((mapping[b], w))
                } else if b == l && mapping[a] != usize::MAX {
                    Some((mapping[a], w))
                } else {
                    None
                }
            })
            .collect();
        let wire = if placed_partners.is_empty() {
            *free.iter().min_by_key(|&&w| quality(w)).expect("free wire")
        } else {
            *free
                .iter()
                .min_by(|&&a, &&b| {
                    let cost = |w: usize| -> f64 {
                        placed_partners
                            .iter()
                            .map(|&(pw, weight)| {
                                let d = topo.distance(w, pw);
                                let link_cost = if d == 1 {
                                    cal.cx_error(Link::new(partition[w], partition[pw]))
                                } else {
                                    d as f64 * 3.0 * mean_err
                                };
                                weight as f64 * link_cost
                            })
                            .sum()
                    };
                    cost(a).total_cmp(&cost(b)).then(a.cmp(&b))
                })
                .expect("free wire")
        };
        mapping[l] = wire;
        free.remove(&wire);
    }
    mapping
}

/// Routes a program onto its partition, inserting reliability-weighted
/// SWAPs until every two-qubit gate lands on a coupled wire pair.
///
/// `link_penalty` adds a policy-specific cost to candidate SWAP links —
/// the CNA baseline uses it to penalize links with strong crosstalk
/// partners in other partitions (gate-level crosstalk awareness).
///
/// # Panics
///
/// Panics if the partition subgraph is disconnected (the partitioner
/// guarantees connectivity).
pub fn route(
    device: &Device,
    partition: &[usize],
    circuit: &Circuit,
    initial: &[usize],
    link_penalty: impl Fn(Link) -> f64,
) -> MappedProgram {
    let k = partition.len();
    let topo = local_topology(device, partition);
    let cal = device.calibration();
    let mut pi: Vec<usize> = initial.to_vec(); // logical -> wire
    let mut routed = Circuit::with_name(k, circuit.name());
    let mut swap_count = 0usize;

    let swap_cost = |a: usize, b: usize| -> f64 {
        let link = Link::new(partition[a], partition[b]);
        // Three CNOTs of error plus any policy penalty.
        3.0 * cal.cx_error(link) + link_penalty(link)
    };

    for gate in circuit.gates() {
        let qs = gate.qubits();
        let qs = qs.as_slice();
        if qs.len() == 1 {
            routed.push(gate.map_qubits(|q| pi[q]));
            continue;
        }
        let (a, b) = (qs[0], qs[1]);
        while topo.distance(pi[a], pi[b]) > 1 {
            let d = topo.distance(pi[a], pi[b]);
            // Candidate swaps: move either endpoint one step closer.
            let mut best: Option<(f64, usize, usize)> = None;
            for (from, toward) in [(pi[a], pi[b]), (pi[b], pi[a])] {
                for &nb in topo.neighbors(from) {
                    if topo.distance(nb, toward) < d {
                        let cost = swap_cost(from, nb);
                        let key = (cost, from.min(nb), from.max(nb));
                        if best.is_none()
                            || (key.0, key.1, key.2)
                                < (best.unwrap().0, best.unwrap().1, best.unwrap().2)
                        {
                            best = Some(key);
                        }
                    }
                }
            }
            let (_, w1, w2) = best.expect("partition subgraph is connected");
            routed.push(Gate::Swap(w1, w2));
            swap_count += 1;
            // Update the logical positions living on those wires.
            for wire in pi.iter_mut() {
                if *wire == w1 {
                    *wire = w2;
                } else if *wire == w2 {
                    *wire = w1;
                }
            }
        }
        routed.push(gate.map_qubits(|q| pi[q]));
    }

    MappedProgram {
        circuit: routed,
        layout: partition.to_vec(),
        initial_mapping: initial.to_vec(),
        final_mapping: pi,
        swap_count,
    }
}

/// Convenience: initial mapping + routing with no link penalty.
pub fn map_program(device: &Device, partition: &[usize], circuit: &Circuit) -> MappedProgram {
    let initial = initial_mapping(device, partition, circuit);
    route(device, partition, circuit, &initial, |_| 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_circuit::library;
    use qucp_device::{ibm, Calibration, CrosstalkModel};
    use qucp_sim::noiseless_probabilities;

    fn line_device(n: usize) -> Device {
        let t = Topology::line(n);
        let cal = Calibration::uniform(&t, 0.02, 3e-4, 0.02);
        Device::new("line", t, cal, CrosstalkModel::none())
    }

    #[test]
    fn local_topology_reindexes() {
        let dev = ibm::toronto();
        let partition = vec![1, 2, 4];
        let t = local_topology(&dev, &partition);
        assert_eq!(t.num_qubits(), 3);
        // 1-2 and 1-4 are links of Toronto.
        assert!(t.has_link(0, 1));
        assert!(t.has_link(0, 2));
        assert!(!t.has_link(1, 2));
    }

    #[test]
    fn initial_mapping_is_a_permutation() {
        let dev = ibm::toronto();
        let bench = library::by_name("adder").unwrap().circuit();
        let partition = vec![12, 13, 14, 16];
        let m = initial_mapping(&dev, &partition, &bench);
        let mut sorted = m.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn routing_places_all_two_qubit_gates_on_links() {
        let dev = ibm::toronto();
        for name in ["adder", "alu-v0_27", "4mod5-v1_22", "variation"] {
            let bench = library::by_name(name).unwrap().circuit();
            let size = bench.width();
            // A path-shaped partition to force swaps.
            let partition: Vec<usize> = match size {
                3 => vec![0, 1, 2],
                4 => vec![0, 1, 2, 3],
                _ => vec![0, 1, 2, 3, 5],
            };
            let mapped = map_program(&dev, &partition, &bench);
            let local = local_topology(&dev, &partition);
            for g in mapped.circuit.gates() {
                if g.is_two_qubit() {
                    let qs = g.qubits();
                    let qs = qs.as_slice();
                    assert!(
                        local.has_link(qs[0], qs[1]),
                        "{name}: gate {g:?} not on a link"
                    );
                }
            }
        }
    }

    #[test]
    fn routing_preserves_semantics_up_to_wire_permutation() {
        let dev = ibm::toronto();
        for name in ["adder", "fredkin", "bell", "linearsolver"] {
            let bench = library::by_name(name).unwrap().circuit();
            let size = bench.width();
            let partition: Vec<usize> = match size {
                3 => vec![3, 5, 8],
                4 => vec![1, 2, 3, 5],
                _ => vec![1, 2, 3, 4, 5],
            };
            let mapped = map_program(&dev, &partition, &bench);
            // Compare noiseless distributions after undoing the wire
            // permutation. Build pseudo-counts from exact probabilities.
            let routed_p = noiseless_probabilities(&mapped.circuit);
            let logical_p = noiseless_probabilities(&bench);
            for (outcome, &p) in routed_p.iter().enumerate() {
                let mut logical = 0usize;
                for (lq, &wire) in mapped.final_mapping.iter().enumerate() {
                    if outcome >> wire & 1 == 1 {
                        logical |= 1 << lq;
                    }
                }
                assert!(
                    (p - logical_p[logical]).abs() < 1e-9,
                    "{name}: outcome {outcome} p {p} vs logical {}",
                    logical_p[logical]
                );
            }
        }
    }

    #[test]
    fn adjacent_program_needs_no_swaps() {
        let dev = line_device(4);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mapped = map_program(&dev, &[1, 2], &c);
        assert_eq!(mapped.swap_count, 0);
        assert_eq!(mapped.initial_mapping, mapped.final_mapping);
    }

    #[test]
    fn distant_interaction_forces_swaps() {
        let dev = line_device(5);
        let mut c = Circuit::new(5);
        // Only qubits 0 and 4 interact; any placement on a line of 5
        // needs routing if they end up far apart — force the worst case
        // with an explicit bad initial mapping.
        c.cx(0, 4);
        let initial = vec![0, 1, 2, 3, 4];
        let mapped = route(&dev, &[0, 1, 2, 3, 4], &c, &initial, |_| 0.0);
        assert!(mapped.swap_count >= 3);
        // Gate lands on a link.
        let local = local_topology(&dev, &[0, 1, 2, 3, 4]);
        let last = mapped.circuit.gates().last().unwrap();
        let qs = last.qubits();
        let qs = qs.as_slice();
        assert!(local.has_link(qs[0], qs[1]));
    }

    #[test]
    fn initial_mapping_places_partners_adjacently_when_possible() {
        let dev = line_device(4);
        let mut c = Circuit::new(3);
        for _ in 0..5 {
            c.cx(0, 1);
        }
        c.cx(1, 2);
        let m = initial_mapping(&dev, &[0, 1, 2], &c);
        let topo = local_topology(&dev, &[0, 1, 2]);
        // The heavy pair (0,1) must be adjacent.
        assert_eq!(topo.distance(m[0], m[1]), 1);
    }

    #[test]
    fn to_logical_counts_permutes_bits() {
        let mapped = MappedProgram {
            circuit: Circuit::new(2),
            layout: vec![10, 11],
            initial_mapping: vec![0, 1],
            final_mapping: vec![1, 0], // logical 0 ended on wire 1
            swap_count: 1,
        };
        let mut counts = Counts::new(2);
        counts.record(0b01); // wire0 = 1, wire1 = 0
        let logical = mapped.to_logical_counts(&counts);
        // Logical 0 reads wire 1 (=0), logical 1 reads wire 0 (=1).
        assert_eq!(logical.count(0b10), 1);
    }

    #[test]
    fn penalty_steers_swap_selection() {
        // Line 0-1-2-3; route cx(0,3). Penalizing one inner link should
        // push swaps to the other side.
        let dev = line_device(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let initial = vec![0, 1, 2, 3];
        let no_pen = route(&dev, &[0, 1, 2, 3], &c, &initial, |_| 0.0);
        let with_pen = route(&dev, &[0, 1, 2, 3], &c, &initial, |l| {
            if l == Link::new(0, 1) {
                10.0
            } else {
                0.0
            }
        });
        assert_eq!(no_pen.swap_count, with_pen.swap_count);
        // The penalized route must not use the 0-1 link for its swaps.
        for g in with_pen.circuit.gates() {
            if matches!(g, Gate::Swap(..)) {
                let qs = g.qubits();
                let qs = qs.as_slice();
                assert_ne!((qs[0].min(qs[1]), qs[0].max(qs[1])), (0, 1));
            }
        }
    }
}
