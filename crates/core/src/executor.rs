//! The parallel workload driver: partition → map → schedule → execute
//! → score, under a chosen [`Strategy`](crate::strategy::Strategy).
//!
//! Since the staged refactor this module is a thin façade over
//! [`Pipeline`](crate::pipeline::Pipeline): [`execute_parallel`] and
//! [`plan_workload`] assemble the stage combination matching the
//! strategy and delegate, preserving the original signatures (and
//! bit-for-bit outcomes) for every existing caller.

use qucp_circuit::Circuit;
use qucp_device::Device;
use qucp_sim::{Counts, ExecutionConfig};

use crate::error::CoreError;
use crate::mapping::MappedProgram;
use crate::partition::Allocation;
use crate::pipeline::Pipeline;
use crate::strategy::Strategy;

/// Configuration of a parallel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// Simulator settings (shots, seed, noise channels).
    pub execution: ExecutionConfig,
    /// Run the cancellation peephole pass before mapping (stands in for
    /// the paper's `optimization_level = 3`).
    pub optimize: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            execution: ExecutionConfig::default(),
            optimize: true,
        }
    }
}

/// Per-program outcome of a parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramResult {
    /// Program name.
    pub name: String,
    /// Physical qubits of the allocated partition.
    pub partition: Vec<usize>,
    /// EFS of the chosen partition at allocation time.
    pub efs: f64,
    /// SWAPs inserted by routing.
    pub swap_count: usize,
    /// Measured counts, permuted back to logical qubit order.
    pub counts: Counts,
    /// PST against the ideal outcome (deterministic circuits only).
    pub pst: Option<f64>,
    /// Jensen-Shannon divergence against the noiseless distribution.
    pub jsd: f64,
}

/// Outcome of a parallel workload execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelOutcome {
    /// Per-program results in the caller's order.
    pub programs: Vec<ProgramResult>,
    /// Hardware throughput: used qubits / device qubits (Sec. II-A).
    pub throughput: f64,
    /// Cross-program one-hop CNOT overlaps encountered.
    pub conflict_count: usize,
    /// Merged-schedule makespan (ns).
    pub makespan: f64,
    /// Serial runtime (ns) that independent execution would need.
    pub serial_runtime: f64,
}

impl ParallelOutcome {
    /// Mean PST over the deterministic programs (`None` if there are
    /// none).
    pub fn mean_pst(&self) -> Option<f64> {
        let psts: Vec<f64> = self.programs.iter().filter_map(|p| p.pst).collect();
        if psts.is_empty() {
            None
        } else {
            Some(psts.iter().sum::<f64>() / psts.len() as f64)
        }
    }

    /// Mean JSD over all programs.
    pub fn mean_jsd(&self) -> f64 {
        self.programs.iter().map(|p| p.jsd).sum::<f64>() / self.programs.len().max(1) as f64
    }

    /// Runtime reduction factor of parallel over serial execution.
    pub fn runtime_reduction(&self) -> f64 {
        if self.makespan == 0.0 {
            1.0
        } else {
            self.serial_runtime / self.makespan
        }
    }
}

/// A planned (not yet executed) workload: the optimized circuits, their
/// partition allocations, and the routed mappings, index-aligned.
pub type WorkloadPlan = (Vec<Circuit>, Vec<Allocation>, Vec<MappedProgram>);

/// Allocates, maps and routes `programs` without executing them.
///
/// Exposed separately so the threshold explorer (Fig. 4) and the
/// ablation benches can inspect plans cheaply.
///
/// # Errors
///
/// Propagates partitioning failures ([`CoreError::PartitionUnavailable`],
/// [`CoreError::ProgramTooWide`]).
pub fn plan_workload(
    device: &Device,
    programs: &[Circuit],
    strategy: &Strategy,
    optimize: bool,
) -> Result<WorkloadPlan, CoreError> {
    // Merge-free: plan-only callers (σ-tuning, ablations) would
    // discard the workload context, so don't compute it.
    Pipeline::from_strategy(strategy).plan_unmerged(device, programs, optimize)
}

/// Executes `programs` simultaneously on `device` under `strategy`.
///
/// Equivalent to `Pipeline::from_strategy(strategy).execute(..)`.
///
/// # Errors
///
/// Returns a [`CoreError`] if partitioning fails or a mapped job is
/// rejected by the simulator (which would indicate a mapping bug).
pub fn execute_parallel(
    device: &Device,
    programs: &[Circuit],
    strategy: &Strategy,
    cfg: &ParallelConfig,
) -> Result<ParallelOutcome, CoreError> {
    Pipeline::from_strategy(strategy).execute(device, programs, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy;
    use qucp_circuit::library;
    use qucp_device::ibm;

    fn quick_cfg() -> ParallelConfig {
        ParallelConfig {
            execution: ExecutionConfig::default().with_shots(512).with_seed(42),
            optimize: true,
        }
    }

    #[test]
    fn single_program_executes() {
        let dev = ibm::toronto();
        let prog = library::by_name("fredkin").unwrap().circuit();
        let out = execute_parallel(&dev, &[prog], &strategy::qucp(4.0), &quick_cfg()).unwrap();
        assert_eq!(out.programs.len(), 1);
        let r = &out.programs[0];
        assert_eq!(r.counts.shots(), 512);
        assert!(r.pst.is_some(), "fredkin is deterministic");
        let pst = r.pst.unwrap();
        assert!(pst > 0.4, "pst unexpectedly low: {pst}");
        assert!((out.throughput - 3.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn three_programs_execute_disjointly() {
        let dev = ibm::toronto();
        let progs = vec![
            library::by_name("adder").unwrap().circuit(),
            library::by_name("fredkin").unwrap().circuit(),
            library::by_name("linearsolver").unwrap().circuit(),
        ];
        let out = execute_parallel(&dev, &progs, &strategy::qucp(4.0), &quick_cfg()).unwrap();
        assert_eq!(out.programs.len(), 3);
        let mut all: Vec<usize> = out
            .programs
            .iter()
            .flat_map(|p| p.partition.clone())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
        assert!((out.throughput - 10.0 / 27.0).abs() < 1e-12);
        assert!(out.runtime_reduction() > 1.5, "parallel should be faster");
    }

    #[test]
    fn jsd_is_finite_and_bounded() {
        let dev = ibm::toronto();
        let progs = vec![
            library::by_name("bell").unwrap().circuit(),
            library::by_name("variation").unwrap().circuit(),
        ];
        let out = execute_parallel(&dev, &progs, &strategy::qucp(4.0), &quick_cfg()).unwrap();
        for p in &out.programs {
            assert!(p.jsd >= 0.0 && p.jsd <= 1.0, "{} jsd {}", p.name, p.jsd);
            assert!(p.pst.is_none());
        }
        assert!(out.mean_jsd() > 0.0);
        assert!(out.mean_pst().is_none());
    }

    #[test]
    fn all_strategies_run_the_same_workload() {
        let dev = ibm::toronto();
        let progs = vec![
            library::by_name("fredkin").unwrap().circuit(),
            library::by_name("linearsolver").unwrap().circuit(),
        ];
        for strat in [
            strategy::qucp(4.0),
            strategy::qumc_with_ground_truth(&dev),
            strategy::cna(),
            strategy::multiqc(),
            strategy::qucloud(),
        ] {
            let out = execute_parallel(&dev, &progs, &strat, &quick_cfg())
                .unwrap_or_else(|e| panic!("{} failed: {e}", strat.name));
            assert_eq!(out.programs.len(), 2, "{}", strat.name);
        }
    }

    #[test]
    fn plan_workload_exposes_mapping() {
        let dev = ibm::toronto();
        let progs = vec![library::by_name("adder").unwrap().circuit()];
        let (opt, allocs, mapped) =
            plan_workload(&dev, &progs, &strategy::qucp(4.0), true).unwrap();
        assert_eq!(opt.len(), 1);
        assert_eq!(allocs.len(), 1);
        assert_eq!(mapped.len(), 1);
        assert_eq!(mapped[0].layout, allocs[0].qubits);
    }

    #[test]
    fn too_many_programs_fail_cleanly() {
        let dev = ibm::toronto();
        let progs: Vec<_> = (0..8)
            .map(|_| library::by_name("alu-v0_27").unwrap().circuit())
            .collect();
        let err = execute_parallel(&dev, &progs, &strategy::qucp(4.0), &quick_cfg()).unwrap_err();
        assert!(matches!(err, CoreError::PartitionUnavailable { .. }));
    }

    #[test]
    fn outcome_reproducible() {
        let dev = ibm::toronto();
        let progs = vec![library::by_name("fredkin").unwrap().circuit()];
        let a = execute_parallel(&dev, &progs, &strategy::qucp(4.0), &quick_cfg()).unwrap();
        let b = execute_parallel(&dev, &progs, &strategy::qucp(4.0), &quick_cfg()).unwrap();
        assert_eq!(a, b);
    }
}
