//! A cloud job-queue model quantifying the motivation of Sec. I/II-A:
//! multi-programming improves hardware throughput and reduces the total
//! runtime (waiting time + execution time) of queued jobs.
//!
//! The model is a deterministic discrete-event simulation: jobs arrive
//! at given times, each needing a number of qubits and an execution
//! duration; the device serves them FIFO, either one at a time
//! (dedicated mode) or packing up to `max_parallel` jobs whose combined
//! qubit demand fits the chip (multi-programmed mode).
//!
//! The `qucp-runtime` crate implements the same FIFO/packing semantics
//! over *real* planned-and-executed batches and reports the same
//! [`QueueStats`], so the analytical model and the runtime can be
//! compared head-to-head.

use crate::error::CoreError;

/// A queued job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedJob {
    /// Arrival time (arbitrary time units).
    pub arrival: f64,
    /// Qubits required.
    pub qubits: usize,
    /// Execution duration once started.
    pub duration: f64,
}

/// Aggregate statistics of a queue simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStats {
    /// Mean waiting time (start − arrival).
    pub mean_waiting: f64,
    /// Mean turnaround (completion − arrival).
    pub mean_turnaround: f64,
    /// Time the last job completes.
    pub makespan: f64,
    /// Mean hardware throughput while the device was busy (used qubits /
    /// device qubits, time-averaged over busy periods).
    pub mean_throughput: f64,
    /// Number of execution batches dispatched.
    pub batches: usize,
}

/// Simulates FIFO service of `jobs` on a `device_qubits`-qubit machine,
/// packing up to `max_parallel` jobs per batch (1 = dedicated mode).
///
/// Jobs in a batch run simultaneously; the batch lasts as long as its
/// longest member. Only jobs that have arrived by the batch start are
/// packed (no reordering — FIFO head-of-line semantics, like the IBM
/// fair-share queue the paper describes).
///
/// # Errors
///
/// [`CoreError::OversizedJob`] if a job needs more qubits than the
/// device has; [`CoreError::ZeroParallel`] if `max_parallel` is zero.
pub fn simulate_queue(
    jobs: &[QueuedJob],
    device_qubits: usize,
    max_parallel: usize,
) -> Result<QueueStats, CoreError> {
    if max_parallel == 0 {
        return Err(CoreError::ZeroParallel);
    }
    for (i, j) in jobs.iter().enumerate() {
        if j.qubits > device_qubits {
            return Err(CoreError::OversizedJob {
                job: i,
                qubits: j.qubits,
                device: device_qubits,
            });
        }
    }
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| jobs[a].arrival.total_cmp(&jobs[b].arrival).then(a.cmp(&b)));

    let mut clock = 0.0f64;
    let mut next = 0usize;
    let mut total_wait = 0.0;
    let mut total_turnaround = 0.0;
    let mut busy_qubit_time = 0.0;
    let mut busy_time = 0.0;
    let mut batches = 0usize;

    while next < order.len() {
        let head = &jobs[order[next]];
        if clock < head.arrival {
            clock = head.arrival;
        }
        // Pack the FIFO prefix of arrived jobs that fits.
        let mut batch: Vec<usize> = Vec::new();
        let mut used = 0usize;
        let mut i = next;
        while i < order.len() && batch.len() < max_parallel {
            let j = &jobs[order[i]];
            if j.arrival > clock || used + j.qubits > device_qubits {
                break;
            }
            used += j.qubits;
            batch.push(order[i]);
            i += 1;
        }
        debug_assert!(!batch.is_empty());
        let batch_duration = batch
            .iter()
            .map(|&j| jobs[j].duration)
            .fold(0.0f64, f64::max);
        for &j in &batch {
            total_wait += clock - jobs[j].arrival;
            total_turnaround += clock + batch_duration - jobs[j].arrival;
            busy_qubit_time += jobs[j].qubits as f64 * jobs[j].duration;
        }
        busy_time += batch_duration;
        clock += batch_duration;
        next = i;
        batches += 1;
    }

    let n = jobs.len().max(1) as f64;
    Ok(QueueStats {
        mean_waiting: total_wait / n,
        mean_turnaround: total_turnaround / n,
        makespan: clock,
        mean_throughput: if busy_time > 0.0 {
            busy_qubit_time / (busy_time * device_qubits as f64)
        } else {
            0.0
        },
        batches,
    })
}

/// Generates a deterministic synthetic workload of `n` jobs resembling
/// the paper's setting: small circuits (2–6 qubits) arriving in a burst.
pub fn synthetic_workload(n: usize, seed: u64) -> Vec<QueuedJob> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += rng.gen_range(0.0..0.5);
            QueuedJob {
                arrival: t,
                qubits: rng.gen_range(2..=6),
                duration: rng.gen_range(0.8..1.4),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(n: usize, qubits: usize, duration: f64) -> Vec<QueuedJob> {
        (0..n)
            .map(|_| QueuedJob {
                arrival: 0.0,
                qubits,
                duration,
            })
            .collect()
    }

    #[test]
    fn dedicated_mode_serializes() {
        let jobs = burst(4, 4, 1.0);
        let s = simulate_queue(&jobs, 15, 1).unwrap();
        assert_eq!(s.batches, 4);
        assert!((s.makespan - 4.0).abs() < 1e-12);
        // Waits: 0,1,2,3 → mean 1.5.
        assert!((s.mean_waiting - 1.5).abs() < 1e-12);
    }

    #[test]
    fn multiprogramming_packs_jobs() {
        let jobs = burst(4, 4, 1.0);
        let s = simulate_queue(&jobs, 15, 3).unwrap();
        // 3 jobs fit (12 ≤ 15), then 1.
        assert_eq!(s.batches, 2);
        assert!((s.makespan - 2.0).abs() < 1e-12);
        assert!(s.mean_waiting < 1.5);
    }

    #[test]
    fn fig1_melbourne_throughput_numbers() {
        // One 4-qubit circuit on the 15-qubit Melbourne: 26.7%; two in
        // parallel: 53.3% (paper Fig. 1).
        let jobs = burst(2, 4, 1.0);
        let solo = simulate_queue(&jobs, 15, 1).unwrap();
        assert!((solo.mean_throughput - 4.0 / 15.0).abs() < 1e-9);
        let dual = simulate_queue(&jobs, 15, 2).unwrap();
        assert!((dual.mean_throughput - 8.0 / 15.0).abs() < 1e-9);
        // Total runtime halves.
        assert!((solo.makespan / dual.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn qubit_capacity_limits_packing() {
        let jobs = burst(3, 6, 1.0);
        let s = simulate_queue(&jobs, 15, 3).unwrap();
        // 6+6 = 12 fits, +6 would exceed 15 → batches of 2 then 1.
        assert_eq!(s.batches, 2);
    }

    #[test]
    fn late_arrivals_are_not_packed_early() {
        let jobs = vec![
            QueuedJob {
                arrival: 0.0,
                qubits: 4,
                duration: 1.0,
            },
            QueuedJob {
                arrival: 0.9,
                qubits: 4,
                duration: 1.0,
            },
        ];
        let s = simulate_queue(&jobs, 15, 2).unwrap();
        // Second job arrives mid-flight of the first batch: two batches.
        assert_eq!(s.batches, 2);
        assert!((s.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn turnaround_includes_execution() {
        let jobs = burst(1, 4, 2.5);
        let s = simulate_queue(&jobs, 15, 1).unwrap();
        assert!((s.mean_turnaround - 2.5).abs() < 1e-12);
        assert_eq!(s.mean_waiting, 0.0);
    }

    #[test]
    fn synthetic_workload_is_deterministic() {
        assert_eq!(synthetic_workload(20, 7), synthetic_workload(20, 7));
        let jobs = synthetic_workload(50, 9);
        assert_eq!(jobs.len(), 50);
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(jobs.iter().all(|j| (2..=6).contains(&j.qubits)));
    }

    #[test]
    fn multiprogramming_beats_dedicated_on_synthetic_load() {
        let jobs = synthetic_workload(40, 123);
        let solo = simulate_queue(&jobs, 27, 1).unwrap();
        let multi = simulate_queue(&jobs, 27, 4).unwrap();
        assert!(multi.mean_waiting < solo.mean_waiting);
        assert!(multi.makespan < solo.makespan);
        assert!(multi.mean_throughput > solo.mean_throughput);
    }

    #[test]
    fn zero_parallel_is_an_error() {
        let err = simulate_queue(&[], 15, 0).unwrap_err();
        assert!(matches!(err, CoreError::ZeroParallel));
    }

    #[test]
    fn oversized_job_is_an_error() {
        let err = simulate_queue(
            &[QueuedJob {
                arrival: 0.0,
                qubits: 20,
                duration: 1.0,
            }],
            15,
            1,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::OversizedJob {
                job: 0,
                qubits: 20,
                device: 15
            }
        ));
    }

    #[test]
    fn nan_arrivals_do_not_panic() {
        // total_cmp orders NaN after every finite arrival instead of
        // panicking mid-sort.
        let jobs = vec![
            QueuedJob {
                arrival: f64::NAN,
                qubits: 2,
                duration: 1.0,
            },
            QueuedJob {
                arrival: 0.0,
                qubits: 2,
                duration: 1.0,
            },
        ];
        let s = simulate_queue(&jobs, 15, 2).unwrap();
        // The NaN arrival sorts last and never compares "later than the
        // clock", so both jobs still get served.
        assert!(s.batches >= 1);
        assert!(s.makespan.is_finite() || s.makespan.is_nan());
    }
}
