//! A SABRE-style lookahead router (Li, Ding & Xie, ASPLOS'19 — the
//! algorithm behind Qiskit's default router, which the paper's
//! `optimization_level = 3` baseline uses).
//!
//! Unlike the greedy shortest-path router in [`crate::mapping`], SABRE
//! keeps a *front layer* of dependency-free two-qubit gates and picks the
//! SWAP minimizing the summed distance of the whole front plus a
//! discounted extended window — letting one SWAP serve several upcoming
//! gates. Provided as an alternative backend and compared against the
//! shortest-path router by the `ablation_routing` bench.

use std::collections::BTreeSet;

use qucp_circuit::{Circuit, Gate};
use qucp_device::{Device, Link};

use crate::mapping::{local_topology, MappedProgram};

/// Tuning knobs of the lookahead router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SabreOptions {
    /// Number of upcoming two-qubit gates in the extended window.
    pub extended_window: usize,
    /// Discount applied to the extended window's distance sum.
    pub extended_weight: f64,
    /// Weight of the SWAP link's own error in the score (reliability
    /// tie-breaking).
    pub reliability_weight: f64,
}

impl Default for SabreOptions {
    fn default() -> Self {
        SabreOptions {
            extended_window: 8,
            extended_weight: 0.5,
            reliability_weight: 10.0,
        }
    }
}

/// Routes `circuit` onto `partition` with SABRE-style lookahead.
///
/// Produces the same [`MappedProgram`] contract as
/// [`crate::mapping::route`]: every two-qubit gate of the output sits on
/// a coupling link, and `final_mapping` records the wire permutation for
/// count correction.
///
/// # Panics
///
/// Panics if the partition subgraph is disconnected or the initial
/// mapping is not a permutation of the wires.
pub fn route_sabre(
    device: &Device,
    partition: &[usize],
    circuit: &Circuit,
    initial: &[usize],
    options: &SabreOptions,
) -> MappedProgram {
    let k = partition.len();
    assert_eq!(
        circuit.width(),
        k,
        "partition size must equal program width"
    );
    let topo = local_topology(device, partition);
    let cal = device.calibration();
    let gates = circuit.gates();
    let n = gates.len();

    // Dependency DAG: a gate depends on the previous gate on each wire.
    let mut indegree = vec![0usize; n];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_on_qubit: Vec<Option<usize>> = vec![None; k];
    for (i, g) in gates.iter().enumerate() {
        for q in &g.qubits() {
            if let Some(p) = last_on_qubit[q] {
                successors[p].push(i);
                indegree[i] += 1;
            }
            last_on_qubit[q] = Some(i);
        }
    }
    let mut front: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();

    let mut pi: Vec<usize> = initial.to_vec(); // logical -> wire
    let mut routed = Circuit::with_name(k, circuit.name());
    let mut swap_count = 0usize;
    let mut emitted = vec![false; n];
    let mut emitted_count = 0usize;
    let mut last_swap: Option<(usize, usize)> = None;
    let mut swaps_since_emit = 0usize;
    // Livelock guard: beyond this many swaps without progress, fall back
    // to a guaranteed shortest-path step.
    let stall_limit = 4 * k * k + 8;

    let wire_pair = |pi: &[usize], gi: usize| -> (usize, usize) {
        let qs = gates[gi].qubits();
        let qs = qs.as_slice();
        (pi[qs[0]], pi[qs[1]])
    };

    while emitted_count < n {
        // Emit every executable front gate.
        let executable: Vec<usize> = front
            .iter()
            .copied()
            .filter(|&gi| {
                let g = &gates[gi];
                if g.is_two_qubit() {
                    let (a, b) = wire_pair(&pi, gi);
                    topo.has_link(a, b)
                } else {
                    true
                }
            })
            .collect();
        if !executable.is_empty() {
            for gi in executable {
                front.remove(&gi);
                emitted[gi] = true;
                emitted_count += 1;
                swaps_since_emit = 0;
                last_swap = None;
                routed.push(gates[gi].map_qubits(|q| pi[q]));
                for &s in &successors[gi] {
                    indegree[s] -= 1;
                    if indegree[s] == 0 {
                        front.insert(s);
                    }
                }
            }
            continue;
        }

        // All front gates are blocked two-qubit gates: pick a SWAP.
        let front_2q: Vec<usize> = front.iter().copied().collect();
        debug_assert!(!front_2q.is_empty(), "blocked front cannot be empty");

        if swaps_since_emit > stall_limit {
            // Fallback: walk the first blocked gate together along a
            // shortest path (guaranteed progress).
            let gi = front_2q[0];
            let (a, b) = wire_pair(&pi, gi);
            let path = topo.shortest_path(a, b).expect("connected partition");
            let (w1, w2) = (path[0], path[1]);
            apply_swap(&mut pi, &mut routed, &mut swap_count, w1, w2);
            swaps_since_emit += 1;
            continue;
        }

        // Extended window: the next few not-yet-emitted 2q gates.
        let extended: Vec<usize> = (0..n)
            .filter(|&i| !emitted[i] && gates[i].is_two_qubit() && !front.contains(&i))
            .take(options.extended_window)
            .collect();

        // Candidate swaps: links touching any wire of a blocked gate.
        let mut candidates: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &gi in &front_2q {
            let (a, b) = wire_pair(&pi, gi);
            for &w in &[a, b] {
                for &nb in topo.neighbors(w) {
                    candidates.insert((w.min(nb), w.max(nb)));
                }
            }
        }
        let mut best: Option<(f64, (usize, usize))> = None;
        for &(w1, w2) in &candidates {
            if last_swap == Some((w1, w2)) && candidates.len() > 1 {
                continue; // tabu: don't undo the previous swap
            }
            // Tentative mapping after the swap.
            let mut trial = pi.clone();
            for wire in trial.iter_mut() {
                if *wire == w1 {
                    *wire = w2;
                } else if *wire == w2 {
                    *wire = w1;
                }
            }
            let dist_sum = |set: &[usize], mapping: &[usize]| -> f64 {
                set.iter()
                    .map(|&gi| {
                        let qs = gates[gi].qubits();
                        let qs = qs.as_slice();
                        topo.distance(mapping[qs[0]], mapping[qs[1]]) as f64
                    })
                    .sum()
            };
            let link = Link::new(partition[w1], partition[w2]);
            let score = dist_sum(&front_2q, &trial)
                + options.extended_weight * dist_sum(&extended, &trial)
                + options.reliability_weight * cal.cx_error(link);
            let better = match best {
                None => true,
                Some((b, bk)) => score < b - 1e-12 || (score < b + 1e-12 && (w1, w2) < bk),
            };
            if better {
                best = Some((score, (w1, w2)));
            }
        }
        let (_, (w1, w2)) = best.expect("candidate swaps exist for blocked gates");
        apply_swap(&mut pi, &mut routed, &mut swap_count, w1, w2);
        last_swap = Some((w1, w2));
        swaps_since_emit += 1;
    }

    MappedProgram {
        circuit: routed,
        layout: partition.to_vec(),
        initial_mapping: initial.to_vec(),
        final_mapping: pi,
        swap_count,
    }
}

fn apply_swap(
    pi: &mut [usize],
    routed: &mut Circuit,
    swap_count: &mut usize,
    w1: usize,
    w2: usize,
) {
    routed.push(Gate::Swap(w1, w2));
    *swap_count += 1;
    for wire in pi.iter_mut() {
        if *wire == w1 {
            *wire = w2;
        } else if *wire == w2 {
            *wire = w1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{initial_mapping, route};
    use crate::partition::{allocate_partitions, PartitionPolicy};
    use crate::CrosstalkTreatment;
    use qucp_circuit::library;
    use qucp_device::ibm;
    use qucp_sim::noiseless_probabilities;

    fn routed_is_valid(device: &Device, partition: &[usize], mp: &MappedProgram) {
        let topo = local_topology(device, partition);
        for g in mp.circuit.gates() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                let qs = qs.as_slice();
                assert!(topo.has_link(qs[0], qs[1]), "gate {g:?} off-link");
            }
        }
    }

    fn semantics_preserved(original: &Circuit, mp: &MappedProgram) {
        let routed_p = noiseless_probabilities(&mp.circuit);
        let logical_p = noiseless_probabilities(original);
        for (outcome, &p) in routed_p.iter().enumerate() {
            let mut logical = 0usize;
            for (lq, &wire) in mp.final_mapping.iter().enumerate() {
                if outcome >> wire & 1 == 1 {
                    logical |= 1 << lq;
                }
            }
            assert!((p - logical_p[logical]).abs() < 1e-9);
        }
    }

    #[test]
    fn sabre_routes_all_benchmarks() {
        let device = ibm::toronto();
        for b in library::all() {
            let circuit = b.circuit();
            let allocs = allocate_partitions(
                &device,
                &[&circuit],
                &PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(4.0)),
            )
            .unwrap();
            let initial = initial_mapping(&device, &allocs[0].qubits, &circuit);
            let mp = route_sabre(
                &device,
                &allocs[0].qubits,
                &circuit,
                &initial,
                &SabreOptions::default(),
            );
            routed_is_valid(&device, &allocs[0].qubits, &mp);
            semantics_preserved(&circuit, &mp);
        }
    }

    #[test]
    fn sabre_handles_forced_long_distance() {
        let device = ibm::toronto();
        // A path partition with an interaction between its endpoints.
        let partition = vec![0, 1, 4, 7, 10];
        let mut c = Circuit::new(5);
        c.cx(0, 4).cx(4, 0).h(2).cx(0, 4);
        let initial = vec![0, 1, 2, 3, 4];
        let mp = route_sabre(&device, &partition, &c, &initial, &SabreOptions::default());
        routed_is_valid(&device, &partition, &mp);
        semantics_preserved(&c, &mp);
        assert!(mp.swap_count >= 3);
    }

    #[test]
    fn sabre_no_swaps_for_adjacent_program() {
        let device = ibm::toronto();
        let partition = vec![0, 1];
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).cx(1, 0);
        let mp = route_sabre(&device, &partition, &c, &[0, 1], &SabreOptions::default());
        assert_eq!(mp.swap_count, 0);
    }

    #[test]
    fn lookahead_not_worse_than_greedy_on_suite() {
        // Aggregate SWAP count over the Table II suite: lookahead should
        // match or beat the shortest-path router.
        let device = ibm::toronto();
        let mut greedy_total = 0usize;
        let mut sabre_total = 0usize;
        for b in library::all() {
            let circuit = b.circuit();
            let allocs = allocate_partitions(
                &device,
                &[&circuit],
                &PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(4.0)),
            )
            .unwrap();
            let initial = initial_mapping(&device, &allocs[0].qubits, &circuit);
            greedy_total +=
                route(&device, &allocs[0].qubits, &circuit, &initial, |_| 0.0).swap_count;
            sabre_total += route_sabre(
                &device,
                &allocs[0].qubits,
                &circuit,
                &initial,
                &SabreOptions::default(),
            )
            .swap_count;
        }
        assert!(
            sabre_total <= greedy_total + 2,
            "sabre {sabre_total} vs greedy {greedy_total}"
        );
    }

    #[test]
    fn deterministic_output() {
        let device = ibm::toronto();
        let circuit = library::by_name("alu-v0_27").unwrap().circuit();
        let partition = vec![1, 2, 3, 4, 5];
        let initial = initial_mapping(&device, &partition, &circuit);
        let a = route_sabre(
            &device,
            &partition,
            &circuit,
            &initial,
            &SabreOptions::default(),
        );
        let b = route_sabre(
            &device,
            &partition,
            &circuit,
            &initial,
            &SabreOptions::default(),
        );
        assert_eq!(a, b);
    }
}
