//! Error types of the parallel execution pipeline.

use std::error::Error;
use std::fmt;

use qucp_circuit::CircuitError;
use qucp_sim::SimError;

/// Errors produced by partitioning, mapping and parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No connected region of the required size is free on the device.
    PartitionUnavailable {
        /// Index of the program that could not be placed.
        program: usize,
        /// Requested partition size.
        size: usize,
    },
    /// A program is wider than the whole device.
    ProgramTooWide {
        /// Index of the offending program.
        program: usize,
        /// Its width.
        width: usize,
        /// Device size.
        device: usize,
    },
    /// A queued job requires more qubits than the device has.
    OversizedJob {
        /// Index of the offending job.
        job: usize,
        /// Qubits the job requires.
        qubits: usize,
        /// Device size.
        device: usize,
    },
    /// A queue or batch was configured with `max_parallel == 0`.
    ZeroParallel,
    /// The simulator rejected a mapped job (indicates a mapping bug).
    Sim(SimError),
    /// A circuit transformation failed.
    Circuit(CircuitError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::PartitionUnavailable { program, size } => {
                write!(
                    f,
                    "no free connected partition of size {size} for program {program}"
                )
            }
            CoreError::ProgramTooWide {
                program,
                width,
                device,
            } => {
                write!(
                    f,
                    "program {program} needs {width} qubits but the device has {device}"
                )
            }
            CoreError::OversizedJob {
                job,
                qubits,
                device,
            } => {
                write!(f, "job {job} needs {qubits} qubits, device has {device}")
            }
            CoreError::ZeroParallel => write!(f, "max_parallel must be positive"),
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
            CoreError::Circuit(e) => write!(f, "circuit transformation failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<CircuitError> for CoreError {
    fn from(e: CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::PartitionUnavailable {
            program: 2,
            size: 5,
        };
        assert!(e.to_string().contains("size 5"));
        let e = CoreError::ProgramTooWide {
            program: 0,
            width: 70,
            device: 65,
        };
        assert!(e.to_string().contains("70 qubits"));
    }

    #[test]
    fn source_chain() {
        let e = CoreError::Sim(SimError::LayoutMismatch {
            circuit: 2,
            layout: 1,
        });
        assert!(e.source().is_some());
        let e = CoreError::PartitionUnavailable {
            program: 0,
            size: 1,
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn conversions() {
        let s: CoreError = SimError::LayoutNotInjective { physical: 3 }.into();
        assert!(matches!(s, CoreError::Sim(_)));
        let c: CoreError = CircuitError::DuplicateQubit { qubit: 1 }.into();
        assert!(matches!(c, CoreError::Circuit(_)));
    }
}
