//! Parallel-execution strategies: QuCP and the baselines it is compared
//! against in the paper (Sec. II-B and IV-A).

use std::collections::BTreeMap;

use qucp_device::{Device, LinkPair};
use qucp_srb::CampaignReport;

use crate::efs::CrosstalkTreatment;
use crate::partition::PartitionPolicy;

/// The σ value the paper settles on after the tuning experiment of
/// Sec. IV-A ("when σ ≥ 4, QuCP provides the same results as QuMC").
pub const DEFAULT_SIGMA: f64 = 4.0;

/// A complete parallel-execution policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    /// Display name (used in reports).
    pub name: String,
    /// Partitioning policy.
    pub partition: PartitionPolicy,
    /// Whether routing penalizes links with strong crosstalk partners in
    /// other partitions (CNA's gate-level awareness).
    pub crosstalk_aware_routing: bool,
    /// Whether overlapping one-hop CNOTs are serialized instead of
    /// suffering crosstalk (CNA's scheduling behaviour).
    pub serialize_conflicts: bool,
}

/// QuCP (this paper): crosstalk-aware partitioning through the σ
/// parameter — no characterization overhead.
pub fn qucp(sigma: f64) -> Strategy {
    Strategy {
        name: format!("QuCP(σ={sigma})"),
        partition: PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(sigma)),
        crosstalk_aware_routing: false,
        serialize_conflicts: false,
    }
}

/// QuMC (Niu & Todri-Sanial 2021): crosstalk-aware partitioning with
/// SRB-measured pair ratios.
pub fn qumc(measured: BTreeMap<LinkPair, f64>) -> Strategy {
    Strategy {
        name: "QuMC".to_string(),
        partition: PartitionPolicy::NoiseAware(CrosstalkTreatment::Measured(measured)),
        crosstalk_aware_routing: false,
        serialize_conflicts: false,
    }
}

/// QuMC with the device's ground-truth crosstalk as a stand-in for a
/// full SRB campaign (SRB estimates exactly this quantity; see
/// DESIGN.md). Following Murali et al. and QuMC practice, only pairs at
/// or above the SRB significance threshold (2×) enter the map — weaker
/// ratios are indistinguishable from 1 under SRB shot noise.
pub fn qumc_with_ground_truth(device: &Device) -> Strategy {
    let measured: BTreeMap<LinkPair, f64> = device
        .crosstalk()
        .pairs()
        .filter(|(_, g)| *g >= qucp_srb::SIGNIFICANT_RATIO)
        .collect();
    qumc(measured)
}

/// Builds the QuMC measured-crosstalk map from an actual SRB campaign:
/// the worst observed ratio of every significantly affected pair.
pub fn crosstalk_map_from_campaign(report: &CampaignReport) -> BTreeMap<LinkPair, f64> {
    report
        .pairs
        .iter()
        .filter(|p| p.is_significant())
        .map(|p| (p.pair, p.worst_ratio()))
        .collect()
}

/// CNA (Ohkura): no noise-aware partitioning; crosstalk considered at
/// gate level *during mapping* (penalized SWAP-link selection). Overlaps
/// that mapping cannot avoid still suffer crosstalk at execution time.
pub fn cna() -> Strategy {
    Strategy {
        name: "CNA".to_string(),
        partition: PartitionPolicy::TopologyGreedy,
        crosstalk_aware_routing: true,
        serialize_conflicts: false,
    }
}

/// A CNA variant that additionally serializes the conflicting CNOTs the
/// mapper could not separate, trading crosstalk for idle decoherence
/// (used by the ablation benches, not a paper baseline).
pub fn cna_serialized() -> Strategy {
    Strategy {
        name: "CNA+serialize".to_string(),
        partition: PartitionPolicy::TopologyGreedy,
        crosstalk_aware_routing: true,
        serialize_conflicts: true,
    }
}

/// MultiQC (Das et al. 2019): reliability-aware partitioning, no
/// crosstalk handling at all.
pub fn multiqc() -> Strategy {
    Strategy {
        name: "MultiQC".to_string(),
        partition: PartitionPolicy::NoiseAware(CrosstalkTreatment::None),
        crosstalk_aware_routing: false,
        serialize_conflicts: false,
    }
}

/// QuCloud (Liu & Dou): fidelity-degree partitioning, no crosstalk
/// handling.
pub fn qucloud() -> Strategy {
    Strategy {
        name: "QuCloud".to_string(),
        partition: PartitionPolicy::FidelityDegree,
        crosstalk_aware_routing: false,
        serialize_conflicts: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::ibm;

    #[test]
    fn qucp_uses_sigma_treatment() {
        let s = qucp(4.0);
        assert!(s.name.contains("QuCP"));
        assert!(matches!(
            s.partition,
            PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(x)) if x == 4.0
        ));
        assert!(!s.serialize_conflicts);
    }

    #[test]
    fn qumc_ground_truth_covers_all_pairs() {
        let dev = ibm::toronto();
        let significant = dev
            .crosstalk()
            .significant_pairs(qucp_srb::SIGNIFICANT_RATIO)
            .len();
        let s = qumc_with_ground_truth(&dev);
        match s.partition {
            PartitionPolicy::NoiseAware(CrosstalkTreatment::Measured(map)) => {
                assert_eq!(map.len(), significant);
                assert!(map.len() < dev.crosstalk().num_pairs());
                assert!(!map.is_empty());
            }
            _ => panic!("expected measured treatment"),
        }
    }

    #[test]
    fn cna_is_gate_level() {
        let s = cna();
        assert!(s.crosstalk_aware_routing);
        assert!(!s.serialize_conflicts);
        assert_eq!(s.partition, PartitionPolicy::TopologyGreedy);
        assert!(cna_serialized().serialize_conflicts);
    }

    #[test]
    fn baselines_ignore_crosstalk_in_partitioning() {
        assert!(matches!(
            multiqc().partition,
            PartitionPolicy::NoiseAware(CrosstalkTreatment::None)
        ));
        assert_eq!(qucloud().partition, PartitionPolicy::FidelityDegree);
    }

    #[test]
    fn default_sigma_matches_paper() {
        assert_eq!(DEFAULT_SIGMA, 4.0);
    }
}
