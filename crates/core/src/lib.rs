//! # qucp-core
//!
//! QuCP — Quantum Crosstalk-aware Parallel workload execution — the
//! primary contribution of *"How Parallel Circuit Execution Can Be
//! Useful for NISQ Computing?"* (Niu & Todri-Sanial, DATE 2022),
//! together with the baselines it is evaluated against.
//!
//! ## Architecture: the staged pipeline
//!
//! Execution is organized as four swappable stages behind traits (see
//! [`pipeline`]):
//!
//! | stage | trait | paper mechanism | default impl |
//! |-------|-------|-----------------|--------------|
//! | 1. partition | [`Partitioner`] | EFS region allocation (Eq. 1) | [`EfsPartitioner`] over any [`PartitionPolicy`] |
//! | 2. map/route | [`Router`] | HA placement + reliability SWAPs | [`ReliabilityRouter`] (± CNA penalties) |
//! | 3. merge | [`ScheduleMerger`] | end-aligned ALAP + γ/serialization | [`AlapMerger`] |
//! | 4. execute | [`Backend`] | noisy execution + PST/JSD scoring | [`SimulatorBackend`] |
//!
//! A [`Strategy`] (QuCP, QuMC, CNA, MultiQC, QuCloud) names a stage
//! combination; [`Pipeline::from_strategy`] assembles it, and
//! [`execute_parallel`]/[`plan_workload`] are thin wrappers kept for
//! callers. New allocation policies or backends implement one trait and
//! plug in without touching the driver — the `qucp-runtime` batch
//! scheduler builds on exactly this seam, executing the programs of a
//! planned workload concurrently through the `Send + Sync` stage
//! objects.
//!
//! Supporting modules: [`partition`] grows and scores candidate regions
//! ([`efs()`], Eq. 1 of the paper), with crosstalk entering either through
//! QuCP's σ parameter or QuMC's measured pair ratios; [`mapping`] places
//! and routes each program inside its region; [`context`] merges the
//! ALAP-aligned schedules and determines which cross-program CNOTs
//! suffer crosstalk (or, for CNA, are serialized); [`threshold`]
//! implements the Fig. 4 throughput/fidelity trade-off; [`queue`] models
//! the cloud-queue motivation of Sec. I analytically (the `qucp-runtime`
//! crate realizes the same semantics as an executable system).
//!
//! ```
//! use qucp_circuit::library;
//! use qucp_device::ibm;
//! use qucp_core::{execute_parallel, strategy, ParallelConfig};
//! use qucp_sim::ExecutionConfig;
//!
//! # fn main() -> Result<(), qucp_core::CoreError> {
//! let device = ibm::toronto();
//! let programs = vec![
//!     library::by_name("fredkin").unwrap().circuit(),
//!     library::by_name("linearsolver").unwrap().circuit(),
//! ];
//! let cfg = ParallelConfig {
//!     execution: ExecutionConfig::default().with_shots(1024),
//!     optimize: true,
//! };
//! let outcome = execute_parallel(&device, &programs, &strategy::qucp(4.0), &cfg)?;
//! assert_eq!(outcome.programs.len(), 2);
//! println!("throughput: {:.1}%", 100.0 * outcome.throughput);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod context;
pub mod efs;
mod error;
mod executor;
pub mod mapping;
pub mod partition;
pub mod pipeline;
pub mod queue;
pub mod report;
pub mod sabre;
pub mod strategy;
pub mod threshold;

pub use efs::{efs, CircuitStats, CrosstalkTreatment, EfsBreakdown};
pub use error::CoreError;
pub use executor::{
    execute_parallel, plan_workload, ParallelConfig, ParallelOutcome, ProgramResult,
};
pub use mapping::{initial_mapping, local_topology, map_program, route, MappedProgram};
pub use partition::{
    allocate_partitions, best_partition, candidate_partitions, Allocation, PartitionPolicy,
};
pub use pipeline::{
    AlapMerger, Backend, EfsPartitioner, Partitioner, Pipeline, PlannedWorkload, ReliabilityRouter,
    Router, ScheduleMerger, SimulatorBackend,
};
pub use sabre::{route_sabre, SabreOptions};
pub use strategy::{Strategy, DEFAULT_SIGMA};
pub use threshold::{
    batch_efs_difference, batch_efs_excesses, efs_difference, parallel_count_for_threshold,
    solo_efs_scores, threshold_sweep, ThresholdPoint,
};
