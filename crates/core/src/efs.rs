//! The Estimated Fidelity Score of Eq. (1) of the paper:
//!
//! ```text
//! EFS = Avg2q(cross) × #2q  +  Avg1q × #1q  +  Σ_{Qi ∈ P} R_Qi
//! ```
//!
//! `Avg2q(cross)` is the average CNOT error inside the candidate
//! partition, with the errors of links that sit one hop away from
//! already-allocated links inflated by a crosstalk factor: the constant
//! σ for QuCP (no characterization needed) or the measured ratio for
//! QuMC (from SRB). Lower EFS means a more reliable partition.

use std::collections::BTreeMap;

use qucp_circuit::Circuit;
use qucp_device::{Device, Link, LinkPair};

/// Gate-count statistics of a program, the `#2q`/`#1q` of Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of two-qubit gates.
    pub two_qubit: usize,
    /// Number of one-qubit gates.
    pub single_qubit: usize,
}

impl CircuitStats {
    /// Extracts the stats from a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        CircuitStats {
            two_qubit: circuit.two_qubit_count(),
            single_qubit: circuit.single_qubit_count(),
        }
    }
}

/// How crosstalk between a candidate partition and already-allocated
/// links enters the EFS.
#[derive(Debug, Clone, PartialEq)]
pub enum CrosstalkTreatment {
    /// Ignore crosstalk (MultiQC / QuCloud / CNA partitioning).
    None,
    /// QuCP: multiply affected CNOT errors by the constant σ, avoiding
    /// any characterization overhead (Sec. III of the paper).
    Sigma(f64),
    /// QuMC: use per-pair measured ratios (from an SRB campaign).
    /// Unmeasured pairs default to 1.
    Measured(BTreeMap<LinkPair, f64>),
}

impl CrosstalkTreatment {
    /// The inflation factor for a candidate link paired with an allocated
    /// link.
    pub fn factor(&self, pair: LinkPair) -> f64 {
        match self {
            CrosstalkTreatment::None => 1.0,
            CrosstalkTreatment::Sigma(sigma) => *sigma,
            CrosstalkTreatment::Measured(map) => map.get(&pair).copied().unwrap_or(1.0),
        }
    }
}

/// The EFS value together with the potential crosstalk pairs that
/// inflated it (the paper's `qcrosstalk` list).
#[derive(Debug, Clone, PartialEq)]
pub struct EfsBreakdown {
    /// The Eq. (1) score (lower is better).
    pub score: f64,
    /// Average (possibly crosstalk-inflated) CNOT error in the partition.
    pub avg_two_qubit_error: f64,
    /// Average one-qubit error in the partition.
    pub avg_single_qubit_error: f64,
    /// Total readout error of the partition.
    pub readout_sum: f64,
    /// Links of the candidate at one-hop distance from allocated links.
    pub crosstalk_pairs: Vec<LinkPair>,
}

/// Computes the EFS of a candidate `partition` for a program with
/// `stats`, given the links already claimed by other programs.
pub fn efs(
    device: &Device,
    partition: &[usize],
    stats: &CircuitStats,
    allocated_links: &[Link],
    treatment: &CrosstalkTreatment,
) -> EfsBreakdown {
    let topo = device.topology();
    let cal = device.calibration();
    let links = topo.links_within(partition);
    let mut crosstalk_pairs = Vec::new();
    let avg2q = if links.is_empty() {
        0.0
    } else {
        let mut total = 0.0;
        for &l in &links {
            let mut e = cal.cx_error(l);
            let mut worst = 1.0f64;
            for &al in allocated_links {
                if !l.shares_qubit(&al) && topo.link_distance(l, al) == 1 {
                    let pair = LinkPair::new(l, al);
                    crosstalk_pairs.push(pair);
                    worst = worst.max(treatment.factor(pair));
                }
            }
            e *= worst;
            total += e;
        }
        total / links.len() as f64
    };
    let avg1q =
        partition.iter().map(|&q| cal.sq_error(q)).sum::<f64>() / partition.len().max(1) as f64;
    let readout_sum: f64 = partition.iter().map(|&q| cal.readout_error(q)).sum();
    EfsBreakdown {
        score: avg2q * stats.two_qubit as f64 + avg1q * stats.single_qubit as f64 + readout_sum,
        avg_two_qubit_error: avg2q,
        avg_single_qubit_error: avg1q,
        readout_sum,
        crosstalk_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::{Calibration, CrosstalkModel, Topology};

    fn device() -> Device {
        let t = Topology::line(6);
        let cal = Calibration::uniform(&t, 0.02, 4e-4, 0.03);
        Device::new("efs", t, cal, CrosstalkModel::none())
    }

    fn stats() -> CircuitStats {
        CircuitStats {
            two_qubit: 10,
            single_qubit: 13,
        }
    }

    #[test]
    fn stats_from_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).t(2);
        let s = CircuitStats::of(&c);
        assert_eq!(s.two_qubit, 2);
        assert_eq!(s.single_qubit, 2);
    }

    #[test]
    fn efs_matches_formula_without_crosstalk() {
        let dev = device();
        let b = efs(&dev, &[0, 1, 2], &stats(), &[], &CrosstalkTreatment::None);
        // Avg2q = 0.02, Avg1q = 4e-4, readout = 3 × 0.03.
        let expected = 0.02 * 10.0 + 4e-4 * 13.0 + 0.09;
        assert!((b.score - expected).abs() < 1e-12, "score {}", b.score);
        assert!(b.crosstalk_pairs.is_empty());
    }

    #[test]
    fn sigma_inflates_one_hop_neighbours() {
        let dev = device();
        // Allocated link 3-4; candidate {0,1,2} has links 0-1, 1-2; link
        // 1-2 is one hop from 3-4 (via qubit 2-3 edge).
        let allocated = [Link::new(3, 4)];
        let none = efs(
            &dev,
            &[0, 1, 2],
            &stats(),
            &allocated,
            &CrosstalkTreatment::None,
        );
        let sigma = efs(
            &dev,
            &[0, 1, 2],
            &stats(),
            &allocated,
            &CrosstalkTreatment::Sigma(4.0),
        );
        assert!(sigma.score > none.score);
        assert_eq!(sigma.crosstalk_pairs.len(), 1);
        // Only link 1-2 is inflated: avg goes from 0.02 to (0.02 + 0.08)/2.
        assert!((sigma.avg_two_qubit_error - 0.05).abs() < 1e-12);
    }

    #[test]
    fn measured_treatment_uses_map() {
        let dev = device();
        let allocated = [Link::new(3, 4)];
        let pair = LinkPair::new(Link::new(1, 2), Link::new(3, 4));
        let mut map = BTreeMap::new();
        map.insert(pair, 6.0);
        let measured = efs(
            &dev,
            &[0, 1, 2],
            &stats(),
            &allocated,
            &CrosstalkTreatment::Measured(map),
        );
        assert!((measured.avg_two_qubit_error - (0.02 + 0.12) / 2.0).abs() < 1e-12);
        // Unmeasured pairs default to 1.
        let empty = efs(
            &dev,
            &[0, 1, 2],
            &stats(),
            &allocated,
            &CrosstalkTreatment::Measured(BTreeMap::new()),
        );
        assert!((empty.avg_two_qubit_error - 0.02).abs() < 1e-12);
    }

    #[test]
    fn shared_qubit_links_are_not_crosstalk_pairs() {
        // Allocated link 2-3: candidate link 1-2 shares qubit 2 with it —
        // a resource conflict, not a crosstalk pair — while candidate
        // link 0-1 is exactly one hop away and is inflated.
        let dev = device();
        let b = efs(
            &dev,
            &[0, 1, 2],
            &stats(),
            &[Link::new(2, 3)],
            &CrosstalkTreatment::Sigma(4.0),
        );
        assert_eq!(b.crosstalk_pairs.len(), 1);
        let pair = b.crosstalk_pairs[0];
        assert_eq!(pair, LinkPair::new(Link::new(0, 1), Link::new(2, 3)));
        // Only 0-1 inflated: avg = (0.08 + 0.02) / 2.
        assert!((b.avg_two_qubit_error - 0.05).abs() < 1e-12);
    }

    #[test]
    fn single_qubit_partition_has_no_two_qubit_term() {
        let dev = device();
        let s = CircuitStats {
            two_qubit: 0,
            single_qubit: 5,
        };
        let b = efs(&dev, &[4], &s, &[], &CrosstalkTreatment::None);
        assert!((b.score - (4e-4 * 5.0 + 0.03)).abs() < 1e-12);
        assert_eq!(b.avg_two_qubit_error, 0.0);
    }

    #[test]
    fn bad_readout_region_scores_worse() {
        let mut dev = device();
        dev.calibration_mut().set_readout_error(5, 0.2);
        let good = efs(&dev, &[0, 1, 2], &stats(), &[], &CrosstalkTreatment::None);
        let bad = efs(&dev, &[3, 4, 5], &stats(), &[], &CrosstalkTreatment::None);
        assert!(bad.score > good.score);
    }

    #[test]
    fn treatment_factor_defaults() {
        let pair = LinkPair::new(Link::new(0, 1), Link::new(2, 3));
        assert_eq!(CrosstalkTreatment::None.factor(pair), 1.0);
        assert_eq!(CrosstalkTreatment::Sigma(4.0).factor(pair), 4.0);
        assert_eq!(
            CrosstalkTreatment::Measured(BTreeMap::new()).factor(pair),
            1.0
        );
    }
}
