//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// A simple column-aligned ASCII table.
///
/// ```
/// use qucp_core::report::Table;
/// let mut t = Table::new(&["benchmark", "PST"]);
/// t.row(&["adder", "0.71"]);
/// let s = t.to_string();
/// assert!(s.contains("adder"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (no quoting — cells are expected to be plain).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, "{cell:<w$}")?;
                if i + 1 < widths.len() {
                    write!(f, "  ")?;
                }
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            render_row(f, r)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with `d` decimals.
pub fn fix(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_separator() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]).row(&["longer", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "value" column starts at the same offset.
        let off0 = lines[0].find("value").unwrap();
        let off2 = lines[2].find('1').unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only"]);
        let s = t.to_string();
        assert!(s.contains("only"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.267), "26.7%");
        assert_eq!(fix(1.23456, 2), "1.23");
    }

    #[test]
    fn row_owned_accepts_strings() {
        let mut t = Table::new(&["k"]);
        t.row_owned(vec![format!("{}", 42)]);
        assert!(t.to_string().contains("42"));
    }
}
