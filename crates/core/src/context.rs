//! Merged-workload scheduling context: which CNOTs of different programs
//! overlap in time, and what that costs.
//!
//! All programs are ALAP-aligned to a common end time (the paper's
//! scheduling policy), then every cross-program pair of two-qubit gates
//! on one-hop-separated links that overlap in time is charged:
//!
//! * **partition-level policies** (QuCP/QuMC/MultiQC/QuCloud) leave the
//!   overlap in place and the gates suffer the device's γ amplification;
//! * **gate-level serialization** (CNA) delays the later gate instead,
//!   avoiding the amplification but stretching that program's schedule —
//!   charged as trailing idle time on its qubits.

use qucp_circuit::schedule::{alap_schedule_with, ScheduledGate};
use qucp_device::{Device, Link};
use qucp_sim::{gate_durations, NoiseScaling};

use crate::mapping::MappedProgram;

/// The computed noise context of a merged workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadContext {
    /// Per-program, per-gate crosstalk scaling factors.
    pub scalings: Vec<NoiseScaling>,
    /// Per-program trailing idle (ns) per local qubit, charged by
    /// serialization.
    pub tail_idle: Vec<Vec<f64>>,
    /// Number of cross-program one-hop CNOT overlaps found.
    pub conflict_count: usize,
    /// Merged makespan (ns): the longest program's schedule.
    pub makespan: f64,
    /// Each program's individual schedule makespan (ns) — what the job
    /// would take running alone (used by the runtime's queue
    /// accounting).
    pub program_makespans: Vec<f64>,
    /// Sum of the programs' individual makespans (ns) — the serial
    /// runtime a non-parallel execution would need.
    pub serial_runtime: f64,
}

/// Builds the workload context for a set of mapped programs.
///
/// With `serialize = false` (QuCP and the partition-level baselines),
/// overlapping one-hop CNOT pairs have their error probabilities scaled
/// by the ground-truth γ. With `serialize = true` (CNA), the overlap is
/// resolved by delaying the later program's gate; the delay is charged
/// as trailing idle on every qubit of that program.
pub fn build_context(
    device: &Device,
    programs: &[MappedProgram],
    serialize: bool,
) -> WorkloadContext {
    // Per-program schedules, ALAP-aligned to the common end time.
    let mut schedules: Vec<Vec<ScheduledGate>> = Vec::with_capacity(programs.len());
    let mut makespans = Vec::with_capacity(programs.len());
    for p in programs {
        let durations = gate_durations(&p.circuit, &p.layout, device);
        let sched = alap_schedule_with(&p.circuit, |i, _| durations[i]);
        makespans.push(sched.makespan());
        schedules.push(sched.entries().to_vec());
    }
    let makespan = makespans.iter().copied().fold(0.0, f64::max);
    // Align all programs to finish together.
    for (entries, &m) in schedules.iter_mut().zip(&makespans) {
        let shift = makespan - m;
        for e in entries.iter_mut() {
            e.start += shift;
        }
    }

    let mut scalings: Vec<NoiseScaling> = programs
        .iter()
        .map(|p| NoiseScaling::uniform(p.circuit.gate_count()))
        .collect();
    let mut extra_delay = vec![0.0f64; programs.len()];
    let mut conflict_count = 0usize;

    let link_of = |p: &MappedProgram, gate_index: usize| -> Option<Link> {
        let g = &p.circuit.gates()[gate_index];
        if !g.is_two_qubit() {
            return None;
        }
        let qs = g.qubits();
        let qs = qs.as_slice();
        Some(Link::new(p.layout[qs[0]], p.layout[qs[1]]))
    };

    for i in 0..programs.len() {
        for j in i + 1..programs.len() {
            for ei in &schedules[i] {
                let Some(li) = link_of(&programs[i], ei.gate_index) else {
                    continue;
                };
                for ej in &schedules[j] {
                    let Some(lj) = link_of(&programs[j], ej.gate_index) else {
                        continue;
                    };
                    if !ei.overlaps(ej) {
                        continue;
                    }
                    if li.shares_qubit(&lj) {
                        continue; // disjoint partitions guarantee this
                    }
                    if device.topology().link_distance(li, lj) != 1 {
                        continue;
                    }
                    conflict_count += 1;
                    if serialize {
                        // Delay the later program's gate past the other:
                        // charge the overlap duration as extra wall time.
                        let overlap = (ei.end().min(ej.end())) - (ei.start.max(ej.start));
                        extra_delay[j] += overlap;
                    } else {
                        let gamma = device.crosstalk().gamma(li, lj);
                        scalings[i].amplify(ei.gate_index, gamma);
                        scalings[j].amplify(ej.gate_index, gamma);
                    }
                }
            }
        }
    }

    let tail_idle: Vec<Vec<f64>> = programs
        .iter()
        .zip(&extra_delay)
        .map(|(p, &d)| vec![d; p.circuit.width()])
        .collect();

    WorkloadContext {
        scalings,
        tail_idle,
        conflict_count,
        makespan,
        serial_runtime: makespans.iter().sum(),
        program_makespans: makespans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_circuit::Circuit;
    use qucp_device::{Calibration, CrosstalkModel, LinkPair, Topology};

    /// Line of 5: programs on {0,1} and {2,3}; links 0-1 and 2-3 are one
    /// hop apart (dist(1,2) = 1) and share no qubit.
    fn device_with_gamma(gamma: f64) -> Device {
        let t = Topology::line(5);
        let cal = Calibration::uniform(&t, 0.02, 3e-4, 0.02);
        let pair = LinkPair::new(Link::new(0, 1), Link::new(2, 3));
        let xt = CrosstalkModel::from_pairs([(pair, gamma)]);
        Device::new("ctx", t, cal, xt)
    }

    fn mapped_cx_program(layout: Vec<usize>) -> MappedProgram {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        MappedProgram {
            circuit: c,
            layout,
            initial_mapping: vec![0, 1],
            final_mapping: vec![0, 1],
            swap_count: 0,
        }
    }

    #[test]
    fn overlapping_one_hop_cnots_get_gamma() {
        let dev = device_with_gamma(5.0);
        let p1 = mapped_cx_program(vec![0, 1]);
        let p2 = mapped_cx_program(vec![2, 3]);
        let ctx = build_context(&dev, &[p1, p2], false);
        assert_eq!(ctx.conflict_count, 1);
        assert_eq!(ctx.scalings[0].factor(0), 5.0);
        assert_eq!(ctx.scalings[1].factor(0), 5.0);
        assert!(ctx.tail_idle.iter().all(|t| t.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn serialization_charges_delay_instead() {
        let dev = device_with_gamma(5.0);
        let p1 = mapped_cx_program(vec![0, 1]);
        let p2 = mapped_cx_program(vec![2, 3]);
        let ctx = build_context(&dev, &[p1, p2], true);
        assert_eq!(ctx.conflict_count, 1);
        assert_eq!(ctx.scalings[0].factor(0), 1.0);
        assert_eq!(ctx.scalings[1].factor(0), 1.0);
        assert!(ctx.tail_idle[1][0] > 0.0);
        assert_eq!(ctx.tail_idle[0][0], 0.0);
    }

    #[test]
    fn distant_programs_have_no_conflicts() {
        let t = Topology::line(8);
        let cal = Calibration::uniform(&t, 0.02, 3e-4, 0.02);
        let dev = Device::new("far", t, cal, CrosstalkModel::none());
        let p1 = mapped_cx_program(vec![0, 1]);
        let p2 = mapped_cx_program(vec![5, 6]);
        let ctx = build_context(&dev, &[p1, p2], false);
        assert_eq!(ctx.conflict_count, 0);
        assert_eq!(ctx.scalings[0].factor(0), 1.0);
    }

    #[test]
    fn alap_alignment_separates_staggered_gates() {
        // Program 1 has one cx; program 2 has a long single-qubit tail
        // after its cx, so under end-aligned ALAP its cx happens much
        // earlier and they do NOT overlap.
        let dev = device_with_gamma(5.0);
        let p1 = mapped_cx_program(vec![0, 1]);
        let mut c2 = Circuit::new(2);
        c2.cx(0, 1);
        for _ in 0..40 {
            c2.h(0);
            c2.h(1);
        }
        let p2 = MappedProgram {
            circuit: c2,
            layout: vec![2, 3],
            initial_mapping: vec![0, 1],
            final_mapping: vec![0, 1],
            swap_count: 0,
        };
        let ctx = build_context(&dev, &[p1, p2], false);
        assert_eq!(ctx.conflict_count, 0, "staggered gates should not overlap");
    }

    #[test]
    fn runtime_accounting() {
        let dev = device_with_gamma(1.0);
        let p1 = mapped_cx_program(vec![0, 1]);
        let p2 = mapped_cx_program(vec![2, 3]);
        let ctx = build_context(&dev, &[p1, p2], false);
        assert!(ctx.makespan > 0.0);
        assert!((ctx.serial_runtime - 2.0 * ctx.makespan).abs() < 1e-9);
    }

    #[test]
    fn single_program_context_is_trivial() {
        let dev = device_with_gamma(9.0);
        let p1 = mapped_cx_program(vec![0, 1]);
        let ctx = build_context(&dev, &[p1], false);
        assert_eq!(ctx.conflict_count, 0);
        assert_eq!(ctx.scalings.len(), 1);
        assert_eq!(ctx.scalings[0].factor(0), 1.0);
    }
}
