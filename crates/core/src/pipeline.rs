//! The staged, trait-based execution pipeline.
//!
//! [`execute_parallel`](crate::execute_parallel) used to be a hard-coded
//! monolith; this module decomposes it into four swappable stages, each
//! behind a trait:
//!
//! 1. [`Partitioner`] — allocate a disjoint reliable region per program
//!    ([`EfsPartitioner`] wraps the QuMC-style candidate growth of
//!    [`crate::partition`] under any [`PartitionPolicy`]);
//! 2. [`Router`] — place and route every program inside its region
//!    ([`ReliabilityRouter`], optionally with CNA's gate-level
//!    crosstalk-aware SWAP penalties);
//! 3. [`ScheduleMerger`] — align the per-program schedules and charge
//!    cross-program crosstalk or serialization delays
//!    ([`AlapMerger`] wraps [`crate::context::build_context`]);
//! 4. [`Backend`] — run one mapped program and score it
//!    ([`SimulatorBackend`] wraps the `qucp-sim` trajectory simulator).
//!
//! A [`Pipeline`] owns one implementation of each stage;
//! [`Pipeline::from_strategy`] assembles the combination matching a
//! paper [`Strategy`] (QuCP, QuMC, CNA, MultiQC, QuCloud), and the
//! original driver entry points are now thin wrappers over it. New
//! allocation policies or execution backends plug in by implementing a
//! stage trait — the driver and the `qucp-runtime` batch scheduler do
//! not change.
//!
//! All stage traits require `Send + Sync` so a planned workload can be
//! executed concurrently (one thread per program) by the runtime crate.

use qucp_circuit::Circuit;
use qucp_device::{Device, Link};
use qucp_sim::{
    ideal_outcome, metrics, noiseless_probabilities, run_noisy_with_idle, ExecutionConfig,
};

use crate::context::{build_context, WorkloadContext};
use crate::error::CoreError;
use crate::executor::{ParallelConfig, ParallelOutcome, ProgramResult, WorkloadPlan};
use crate::mapping::{initial_mapping, route, MappedProgram};
use crate::partition::{allocate_partitions, Allocation, PartitionPolicy};
use crate::strategy::Strategy;

/// Allocates disjoint device regions to programs.
pub trait Partitioner: Send + Sync {
    /// Chooses one [`Allocation`] per program, indexed by caller order.
    ///
    /// # Errors
    ///
    /// [`CoreError::ProgramTooWide`] or
    /// [`CoreError::PartitionUnavailable`] when the workload does not
    /// fit.
    fn partition(
        &self,
        device: &Device,
        programs: &[&Circuit],
    ) -> Result<Vec<Allocation>, CoreError>;
}

/// Places and routes each program inside its allocated region.
pub trait Router: Send + Sync {
    /// Maps `programs[allocations[i].program_index]` onto
    /// `allocations[i].qubits`, returning mapped programs index-aligned
    /// with `allocations`.
    fn route_all(
        &self,
        device: &Device,
        programs: &[Circuit],
        allocations: &[Allocation],
    ) -> Vec<MappedProgram>;
}

/// Merges per-program schedules into a workload noise context.
pub trait ScheduleMerger: Send + Sync {
    /// Aligns schedules and computes crosstalk scalings / serialization
    /// delays for the whole workload.
    fn merge(&self, device: &Device, mapped: &[MappedProgram]) -> WorkloadContext;
}

/// Executes one planned program and scores its output.
pub trait Backend: Send + Sync {
    /// Runs program `index` of `plan` and returns its scored result.
    ///
    /// Implementations must be deterministic given `exec.seed` and must
    /// derive any per-program seed from `(exec.seed, index)` only, so
    /// that concurrent and serial batch execution agree bit-for-bit.
    /// The same holds one level down: when `exec.parallelism` shards
    /// the shot loop ([`qucp_sim::ShotParallelism`]), the result must
    /// depend on the shard count only, never on how many worker
    /// threads execute the shards. `exec.kernel`
    /// ([`qucp_sim::TrajectoryKernel`]) selects the per-shot sampler;
    /// each kernel pins its own stream, and both obey the same
    /// `(seed, shards)` purity contract.
    ///
    /// # Errors
    ///
    /// [`CoreError::Sim`] if the simulator rejects the mapped job
    /// (which would indicate a mapping bug).
    fn run_program(
        &self,
        device: &Device,
        plan: &PlannedWorkload,
        index: usize,
        exec: &ExecutionConfig,
    ) -> Result<ProgramResult, CoreError>;
}

/// A fully planned (not yet executed) workload.
///
/// ## Replay
///
/// Planning is a pure function of *(device calibration state, ordered
/// program structures, strategy, optimize flag)* — program **names**
/// never influence any stage. A caller holding a plan for one batch may
/// therefore replay it for a later batch whose members have the same
/// ordered shapes (width + exact gate sequence) on the same calibration
/// epoch of the same device: every field of the plan, including the
/// merged [`WorkloadContext`], is bit-identical to what a fresh
/// [`Pipeline::plan`] call would produce. Only the `name` carried by
/// each program (and thus by [`ProgramResult::name`]) is stale under
/// replay; replaying callers must re-bind result names to the current
/// batch members. The runtime's plan cache builds on this contract and
/// checks it with [`PlannedWorkload::replayable_for`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedWorkload {
    /// The (optionally optimized) circuits, in caller order.
    pub programs: Vec<Circuit>,
    /// One allocation per program, index-aligned with `programs`.
    pub allocations: Vec<Allocation>,
    /// Routed programs, index-aligned with `programs`.
    pub mapped: Vec<MappedProgram>,
    /// Merged-schedule noise context of the whole workload.
    pub context: WorkloadContext,
}

impl PlannedWorkload {
    /// Total physical qubits claimed by the workload.
    pub fn used_qubits(&self) -> usize {
        self.allocations.iter().map(|a| a.qubits.len()).sum()
    }

    /// Whether this plan is structurally consistent with replaying for
    /// `programs`: one plan program per member, widths aligned. A cheap
    /// sanity gate for replay callers (the full shape equality is the
    /// cache key's responsibility — optimization may have shrunk the
    /// planned gate sequences, so gate counts are deliberately not
    /// compared).
    pub fn replayable_for(&self, programs: &[&Circuit]) -> bool {
        self.programs.len() == programs.len()
            && self
                .programs
                .iter()
                .zip(programs)
                .all(|(planned, current)| planned.width() == current.width())
    }
}

/// The QuMC-style EFS partitioner behind QuCP and every baseline
/// (policies differ only in candidate scoring).
#[derive(Debug, Clone, PartialEq)]
pub struct EfsPartitioner {
    /// Candidate-scoring policy.
    pub policy: PartitionPolicy,
}

impl Partitioner for EfsPartitioner {
    fn partition(
        &self,
        device: &Device,
        programs: &[&Circuit],
    ) -> Result<Vec<Allocation>, CoreError> {
        allocate_partitions(device, programs, &self.policy)
    }
}

/// Reliability-weighted placement and SWAP routing, optionally with
/// CNA's crosstalk-aware link penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityRouter {
    /// Penalize SWAP links with strong crosstalk partners inside other
    /// partitions (CNA's gate-level awareness).
    pub crosstalk_aware: bool,
}

impl Router for ReliabilityRouter {
    fn route_all(
        &self,
        device: &Device,
        programs: &[Circuit],
        allocations: &[Allocation],
    ) -> Vec<MappedProgram> {
        // Gate-level crosstalk penalty (CNA): routing avoids links with
        // strong γ partners inside *other* partitions.
        let all_links: Vec<Vec<Link>> = allocations
            .iter()
            .map(|a| device.topology().links_within(&a.qubits))
            .collect();

        allocations
            .iter()
            .enumerate()
            .map(|(i, alloc)| {
                let circuit = &programs[alloc.program_index];
                let initial = initial_mapping(device, &alloc.qubits, circuit);
                if self.crosstalk_aware {
                    let other_links: Vec<Link> = all_links
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .flat_map(|(_, ls)| ls.iter().copied())
                        .collect();
                    let topo = device.topology();
                    let xtalk = device.crosstalk();
                    let cal = device.calibration();
                    route(device, &alloc.qubits, circuit, &initial, |l| {
                        let mut worst = 1.0f64;
                        for &ol in &other_links {
                            if !l.shares_qubit(&ol) && topo.link_distance(l, ol) == 1 {
                                worst = worst.max(xtalk.gamma(l, ol));
                            }
                        }
                        (worst - 1.0) * cal.cx_error(l)
                    })
                } else {
                    route(device, &alloc.qubits, circuit, &initial, |_| 0.0)
                }
            })
            .collect()
    }
}

/// End-aligned ALAP schedule merging (the paper's policy), charging
/// either γ crosstalk amplification or CNA-style serialization delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlapMerger {
    /// Serialize overlapping one-hop CNOTs instead of letting them
    /// suffer crosstalk (CNA's scheduling behaviour).
    pub serialize_conflicts: bool,
}

impl ScheduleMerger for AlapMerger {
    fn merge(&self, device: &Device, mapped: &[MappedProgram]) -> WorkloadContext {
        build_context(device, mapped, self.serialize_conflicts)
    }
}

/// Per-program seed derivation shared by every backend: a golden-ratio
/// stride keeps the trajectory streams of simultaneous programs
/// independent of each other and of execution order.
pub fn derive_program_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1))
}

/// The Monte-Carlo trajectory simulator backend (`qucp-sim`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimulatorBackend;

impl Backend for SimulatorBackend {
    fn run_program(
        &self,
        device: &Device,
        plan: &PlannedWorkload,
        index: usize,
        exec: &ExecutionConfig,
    ) -> Result<ProgramResult, CoreError> {
        let mp = &plan.mapped[index];
        let exec = ExecutionConfig {
            seed: derive_program_seed(exec.seed, index),
            ..*exec
        };
        let raw = run_noisy_with_idle(
            &mp.circuit,
            &mp.layout,
            device,
            &plan.context.scalings[index],
            &plan.context.tail_idle[index],
            &exec,
        )?;
        let counts = mp.to_logical_counts(&raw);
        let logical = &plan.programs[index];
        let ideal = noiseless_probabilities(logical);
        let jsd = metrics::jsd(&counts.distribution(), &ideal);
        let pst = ideal_outcome(logical).map(|target| counts.probability(target));
        Ok(ProgramResult {
            name: logical.name().to_string(),
            partition: plan.allocations[index].qubits.clone(),
            efs: plan.allocations[index].efs.score,
            swap_count: mp.swap_count,
            counts,
            pst,
            jsd,
        })
    }
}

/// A staged execution pipeline: one implementation per stage.
pub struct Pipeline {
    /// Stage 1: region allocation.
    pub partitioner: Box<dyn Partitioner>,
    /// Stage 2: placement and routing.
    pub router: Box<dyn Router>,
    /// Stage 3: schedule merging.
    pub merger: Box<dyn ScheduleMerger>,
    /// Stage 4: execution and scoring.
    pub backend: Box<dyn Backend>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline").finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Assembles the stage combination matching a paper [`Strategy`].
    pub fn from_strategy(strategy: &Strategy) -> Pipeline {
        Pipeline {
            partitioner: Box::new(EfsPartitioner {
                policy: strategy.partition.clone(),
            }),
            router: Box::new(ReliabilityRouter {
                crosstalk_aware: strategy.crosstalk_aware_routing,
            }),
            merger: Box::new(AlapMerger {
                serialize_conflicts: strategy.serialize_conflicts,
            }),
            backend: Box::new(SimulatorBackend),
        }
    }

    /// Runs stages 1–2 only: optimize, partition and route, skipping
    /// the schedule merge. Plan-only callers (threshold explorers,
    /// ablation benches) use this to avoid paying the cross-program
    /// overlap scan for a context they would discard.
    ///
    /// # Errors
    ///
    /// Propagates partitioning failures
    /// ([`CoreError::PartitionUnavailable`],
    /// [`CoreError::ProgramTooWide`]).
    pub fn plan_unmerged(
        &self,
        device: &Device,
        programs: &[Circuit],
        optimize: bool,
    ) -> Result<WorkloadPlan, CoreError> {
        let mut optimized: Vec<Circuit> = programs.to_vec();
        if optimize {
            for c in &mut optimized {
                c.cancel_adjacent_inverses();
            }
        }
        let refs: Vec<&Circuit> = optimized.iter().collect();
        let allocations = self.partitioner.partition(device, &refs)?;
        let mapped = self.router.route_all(device, &optimized, &allocations);
        Ok((optimized, allocations, mapped))
    }

    /// Runs stages 1–3: optimize, partition, route and merge, without
    /// executing anything.
    ///
    /// # Errors
    ///
    /// Propagates partitioning failures
    /// ([`CoreError::PartitionUnavailable`],
    /// [`CoreError::ProgramTooWide`]).
    pub fn plan(
        &self,
        device: &Device,
        programs: &[Circuit],
        optimize: bool,
    ) -> Result<PlannedWorkload, CoreError> {
        let (optimized, allocations, mapped) = self.plan_unmerged(device, programs, optimize)?;
        let context = self.merger.merge(device, &mapped);
        Ok(PlannedWorkload {
            programs: optimized,
            allocations,
            mapped,
            context,
        })
    }

    /// Executes an already planned workload serially (program order).
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn execute_plan(
        &self,
        device: &Device,
        plan: &PlannedWorkload,
        cfg: &ParallelConfig,
    ) -> Result<ParallelOutcome, CoreError> {
        let results = (0..plan.programs.len())
            .map(|i| self.backend.run_program(device, plan, i, &cfg.execution))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(assemble_outcome(device, plan, results))
    }

    /// Plans and executes `programs` end to end.
    ///
    /// # Errors
    ///
    /// Propagates planning and backend failures.
    pub fn execute(
        &self,
        device: &Device,
        programs: &[Circuit],
        cfg: &ParallelConfig,
    ) -> Result<ParallelOutcome, CoreError> {
        let plan = self.plan(device, programs, cfg.optimize)?;
        self.execute_plan(device, &plan, cfg)
    }
}

/// Builds the workload-level outcome from per-program results (shared
/// by the serial driver and the concurrent runtime).
pub fn assemble_outcome(
    device: &Device,
    plan: &PlannedWorkload,
    results: Vec<ProgramResult>,
) -> ParallelOutcome {
    ParallelOutcome {
        programs: results,
        throughput: device.throughput(plan.used_qubits()),
        conflict_count: plan.context.conflict_count,
        makespan: plan.context.makespan,
        serial_runtime: plan.context.serial_runtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy;
    use qucp_circuit::library;
    use qucp_device::ibm;

    fn quick_cfg() -> ParallelConfig {
        ParallelConfig {
            execution: ExecutionConfig::default().with_shots(256).with_seed(7),
            optimize: true,
        }
    }

    #[test]
    fn pipeline_stages_compose() {
        let dev = ibm::toronto();
        let progs = vec![
            library::by_name("fredkin").unwrap().circuit(),
            library::by_name("bell").unwrap().circuit(),
        ];
        let pipe = Pipeline::from_strategy(&strategy::qucp(4.0));
        let plan = pipe.plan(&dev, &progs, true).unwrap();
        assert_eq!(plan.programs.len(), 2);
        assert_eq!(plan.allocations.len(), 2);
        assert_eq!(plan.mapped.len(), 2);
        let widths: usize = plan.programs.iter().map(Circuit::width).sum();
        assert_eq!(plan.used_qubits(), widths);
        let out = pipe.execute_plan(&dev, &plan, &quick_cfg()).unwrap();
        assert_eq!(out.programs.len(), 2);
        assert_eq!(out.programs[0].counts.shots(), 256);
    }

    #[test]
    fn custom_stage_swaps_in() {
        /// A partitioner that delegates but reverses nothing — proves a
        /// foreign implementation satisfies the driver.
        struct Recording(EfsPartitioner);
        impl Partitioner for Recording {
            fn partition(
                &self,
                device: &Device,
                programs: &[&Circuit],
            ) -> Result<Vec<Allocation>, CoreError> {
                self.0.partition(device, programs)
            }
        }
        let dev = ibm::toronto();
        let progs = vec![library::by_name("fredkin").unwrap().circuit()];
        let mut pipe = Pipeline::from_strategy(&strategy::qucp(4.0));
        pipe.partitioner = Box::new(Recording(EfsPartitioner {
            policy: strategy::qucp(4.0).partition,
        }));
        let out = pipe.execute(&dev, &progs, &quick_cfg()).unwrap();
        assert_eq!(out.programs.len(), 1);
    }

    #[test]
    fn derived_seeds_are_order_independent() {
        assert_eq!(derive_program_seed(42, 0), derive_program_seed(42, 0));
        assert_ne!(derive_program_seed(42, 0), derive_program_seed(42, 1));
        assert_ne!(derive_program_seed(42, 1), derive_program_seed(43, 1));
    }

    #[test]
    fn sharded_streams_of_coscheduled_programs_stay_disjoint() {
        // Program seeds are golden-ratio strides of the batch seed; the
        // shard derivation mixes the base seed before applying its own
        // stride, so program i's shard s must never collide with
        // program i+1's shard s-1 (or any other (i', s') with
        // i + s == i' + s'). A linear shard stride over the raw seed
        // would make every such pair share a bit-identical RNG stream.
        use qucp_sim::derive_shard_seed;
        let base = 0x5EED;
        let mut seen = std::collections::HashSet::new();
        for program in 0..4 {
            for shard in 0..8 {
                assert!(
                    seen.insert(derive_shard_seed(derive_program_seed(base, program), shard)),
                    "shard stream collision at program {program}, shard {shard}"
                );
            }
        }
    }

    #[test]
    fn pipeline_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pipeline>();
        assert_send_sync::<PlannedWorkload>();
    }
}
