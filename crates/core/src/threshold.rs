//! The fidelity-threshold mechanism of Sec. IV-B: trading hardware
//! throughput against output fidelity.
//!
//! QuCP estimates, from EFS alone (no execution), how much fidelity a
//! parallel workload would lose compared to running each circuit
//! independently on the best partition. A user-supplied threshold on
//! that difference then determines how many copies run simultaneously —
//! the mechanism behind the paper's Fig. 4.

use qucp_circuit::Circuit;
use qucp_device::Device;

use crate::error::CoreError;
use crate::executor::{execute_parallel, ParallelConfig};
use crate::partition::allocate_partitions;
use crate::strategy::Strategy;

/// The EFS-estimated fidelity difference of running `k` copies in
/// parallel versus one copy independently.
///
/// Independent execution uses the single best partition (EFS `E₁`);
/// parallel execution allocates `k` disjoint partitions and suffers the
/// mean EFS `E̅ₖ`. The difference `E̅ₖ − E₁ ≥ 0` grows as the allocator is
/// pushed into worse regions of the chip.
///
/// # Errors
///
/// Propagates partition failures when even a single copy does not fit.
pub fn efs_difference(
    device: &Device,
    circuit: &Circuit,
    k: usize,
    strategy: &Strategy,
) -> Result<f64, CoreError> {
    let single = allocate_partitions(device, &[circuit], &strategy.partition)?;
    let best = single[0].efs.score;
    let copies: Vec<&Circuit> = std::iter::repeat_n(circuit, k).collect();
    let parallel = allocate_partitions(device, &copies, &strategy.partition)?;
    let mean = parallel.iter().map(|a| a.efs.score).sum::<f64>() / k as f64;
    Ok((mean - best).max(0.0))
}

/// The largest `k ≤ k_max` whose EFS difference stays within
/// `threshold`. A threshold of zero admits exactly one circuit (the
/// paper: "when the fidelity threshold is zero … only one circuit is
/// executed each time").
///
/// # Errors
///
/// Propagates partition failures when even a single copy does not fit.
pub fn parallel_count_for_threshold(
    device: &Device,
    circuit: &Circuit,
    threshold: f64,
    k_max: usize,
    strategy: &Strategy,
) -> Result<usize, CoreError> {
    let mut best_k = 1;
    for k in 2..=k_max {
        match efs_difference(device, circuit, k, strategy) {
            Ok(diff) if diff <= threshold => best_k = k,
            Ok(_) => break,
            Err(CoreError::PartitionUnavailable { .. }) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(best_k)
}

/// One point of the Fig. 4 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPoint {
    /// The fidelity threshold applied.
    pub threshold: f64,
    /// Number of simultaneous copies admitted.
    pub parallel_count: usize,
    /// Hardware throughput achieved.
    pub throughput: f64,
    /// Mean PST of the copies (deterministic benchmarks).
    pub mean_pst: Option<f64>,
    /// Mean JSD of the copies.
    pub mean_jsd: f64,
    /// EFS difference estimate that admitted this count.
    pub efs_difference: f64,
}

/// Sweeps fidelity thresholds, executing the admitted number of copies
/// at every point (the paper's Fig. 4 experiment).
///
/// # Errors
///
/// Propagates partition and simulation failures.
pub fn threshold_sweep(
    device: &Device,
    circuit: &Circuit,
    thresholds: &[f64],
    k_max: usize,
    strategy: &Strategy,
    cfg: &ParallelConfig,
) -> Result<Vec<ThresholdPoint>, CoreError> {
    let mut out = Vec::with_capacity(thresholds.len());
    for &threshold in thresholds {
        let k = parallel_count_for_threshold(device, circuit, threshold, k_max, strategy)?;
        let copies: Vec<Circuit> = (0..k)
            .map(|i| {
                let mut c = circuit.clone();
                c.set_name(format!("{}#{}", circuit.name(), i));
                c
            })
            .collect();
        let outcome = execute_parallel(device, &copies, strategy, cfg)?;
        let diff = if k == 1 {
            0.0
        } else {
            efs_difference(device, circuit, k, strategy)?
        };
        out.push(ThresholdPoint {
            threshold,
            parallel_count: k,
            throughput: outcome.throughput,
            mean_pst: outcome.mean_pst(),
            mean_jsd: outcome.mean_jsd(),
            efs_difference: diff,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy;
    use qucp_circuit::library;
    use qucp_device::ibm;
    use qucp_sim::ExecutionConfig;

    #[test]
    fn efs_difference_grows_with_copies() {
        let dev = ibm::manhattan();
        let c = library::by_name("4mod5-v1_22").unwrap().circuit();
        let s = strategy::qucp(4.0);
        let d2 = efs_difference(&dev, &c, 2, &s).unwrap();
        let d4 = efs_difference(&dev, &c, 4, &s).unwrap();
        let d6 = efs_difference(&dev, &c, 6, &s).unwrap();
        assert!(d2 >= 0.0);
        assert!(d4 >= d2 - 1e-12);
        assert!(d6 >= d4 - 1e-12, "d6 {d6} < d4 {d4}");
    }

    #[test]
    fn zero_threshold_admits_one() {
        let dev = ibm::manhattan();
        let c = library::by_name("4mod5-v1_22").unwrap().circuit();
        let k = parallel_count_for_threshold(&dev, &c, 0.0, 6, &strategy::qucp(4.0)).unwrap();
        assert_eq!(k, 1);
    }

    #[test]
    fn huge_threshold_admits_max() {
        let dev = ibm::manhattan();
        let c = library::by_name("4mod5-v1_22").unwrap().circuit();
        let k = parallel_count_for_threshold(&dev, &c, 1e9, 6, &strategy::qucp(4.0)).unwrap();
        assert_eq!(k, 6);
    }

    #[test]
    fn admitted_count_is_monotone_in_threshold() {
        let dev = ibm::manhattan();
        let c = library::by_name("alu-v0_27").unwrap().circuit();
        let s = strategy::qucp(4.0);
        let mut last = 0;
        for t in [0.0, 0.05, 0.1, 0.2, 0.5, 2.0] {
            let k = parallel_count_for_threshold(&dev, &c, t, 6, &s).unwrap();
            assert!(k >= last, "k not monotone at threshold {t}");
            last = k;
        }
    }

    #[test]
    fn sweep_reports_throughput_growth() {
        let dev = ibm::manhattan();
        let c = library::by_name("4mod5-v1_22").unwrap().circuit();
        let cfg = ParallelConfig {
            execution: ExecutionConfig::default().with_shots(256),
            optimize: true,
        };
        let points = threshold_sweep(&dev, &c, &[0.0, 1e9], 4, &strategy::qucp(4.0), &cfg).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].parallel_count, 1);
        assert_eq!(points[1].parallel_count, 4);
        assert!(points[1].throughput > points[0].throughput);
        assert!(points[0].mean_pst.is_some());
    }
}
