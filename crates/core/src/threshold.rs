//! The fidelity-threshold mechanism of Sec. IV-B: trading hardware
//! throughput against output fidelity.
//!
//! QuCP estimates, from EFS alone (no execution), how much fidelity a
//! parallel workload would lose compared to running each circuit
//! independently on the best partition. A user-supplied threshold on
//! that difference then determines how many copies run simultaneously —
//! the mechanism behind the paper's Fig. 4.

use qucp_circuit::Circuit;
use qucp_device::Device;

use crate::error::CoreError;
use crate::executor::{execute_parallel, ParallelConfig};
use crate::partition::allocate_partitions;
use crate::strategy::Strategy;

/// The EFS-estimated fidelity difference of running `k` copies in
/// parallel versus one copy independently.
///
/// Independent execution uses the single best partition (EFS `E₁`);
/// parallel execution allocates `k` disjoint partitions and suffers the
/// mean EFS `E̅ₖ`. The difference `E̅ₖ − E₁ ≥ 0` grows as the allocator is
/// pushed into worse regions of the chip.
///
/// # Errors
///
/// Propagates partition failures when even a single copy does not fit.
pub fn efs_difference(
    device: &Device,
    circuit: &Circuit,
    k: usize,
    strategy: &Strategy,
) -> Result<f64, CoreError> {
    let single = allocate_partitions(device, &[circuit], &strategy.partition)?;
    let best = single[0].efs.score;
    let copies: Vec<&Circuit> = std::iter::repeat_n(circuit, k).collect();
    let parallel = allocate_partitions(device, &copies, &strategy.partition)?;
    let mean = parallel.iter().map(|a| a.efs.score).sum::<f64>() / k as f64;
    Ok((mean - best).max(0.0))
}

/// The largest `k ≤ k_max` whose EFS difference stays within
/// `threshold`. A threshold of zero admits exactly one circuit (the
/// paper: "when the fidelity threshold is zero … only one circuit is
/// executed each time").
///
/// # Errors
///
/// Propagates partition failures when even a single copy does not fit.
pub fn parallel_count_for_threshold(
    device: &Device,
    circuit: &Circuit,
    threshold: f64,
    k_max: usize,
    strategy: &Strategy,
) -> Result<usize, CoreError> {
    let mut best_k = 1;
    for k in 2..=k_max {
        match efs_difference(device, circuit, k, strategy) {
            Ok(diff) if diff <= threshold => best_k = k,
            Ok(_) => break,
            Err(CoreError::PartitionUnavailable { .. }) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(best_k)
}

/// Per-member EFS excess of running a **heterogeneous** batch together
/// versus each member alone on its best partition.
///
/// Entry `i` is `Eᵢ(batch) − Eᵢ(solo)`, clamped at zero: how much worse
/// member `i`'s allocated partition scores when it has to share the
/// chip with the rest of the batch. Unlike [`efs_difference`], which
/// replicates a single circuit `k` times (the paper's homogeneous
/// Fig. 4 experiment), this evaluates the *actual* batch members, so a
/// runtime admission gate can enforce each job's own fidelity
/// tolerance.
///
/// # Errors
///
/// Propagates partition failures when the batch (or any member alone)
/// does not fit.
pub fn batch_efs_excesses(
    device: &Device,
    circuits: &[&Circuit],
    strategy: &Strategy,
) -> Result<Vec<f64>, CoreError> {
    let joint = allocate_partitions(device, circuits, &strategy.partition)?;
    let solo = solo_efs_scores(device, circuits, strategy)?;
    let mut excesses = vec![0.0; circuits.len()];
    for alloc in &joint {
        excesses[alloc.program_index] = (alloc.efs.score - solo[alloc.program_index]).max(0.0);
    }
    Ok(excesses)
}

/// The solo-best EFS score of every circuit: what each would pay on its
/// preferred partition with the chip to itself. Replicated copies (same
/// gates on the same width, whatever their names) share one allocation
/// probe, so a homogeneous batch costs a single probe. Callers that
/// already hold a joint allocation (e.g. the runtime's batch fidelity
/// gate) combine these with its per-member scores instead of paying
/// [`batch_efs_excesses`]'s second joint allocation.
///
/// # Errors
///
/// Propagates partition failures when a member does not fit alone.
pub fn solo_efs_scores(
    device: &Device,
    circuits: &[&Circuit],
    strategy: &Strategy,
) -> Result<Vec<f64>, CoreError> {
    let mut scores: Vec<Option<f64>> = vec![None; circuits.len()];
    for i in 0..circuits.len() {
        if scores[i].is_some() {
            continue;
        }
        let solo = allocate_partitions(device, &[circuits[i]], &strategy.partition)?;
        let score = solo[0].efs.score;
        for (j, c) in circuits.iter().enumerate().skip(i) {
            if scores[j].is_none()
                && c.width() == circuits[i].width()
                && c.gates() == circuits[i].gates()
            {
                scores[j] = Some(score);
            }
        }
    }
    Ok(scores
        .into_iter()
        .map(|s| s.expect("score filled"))
        .collect())
}

/// The mean EFS excess of a heterogeneous batch (the batch-level
/// analogue of [`efs_difference`]): the average of
/// [`batch_efs_excesses`]. Zero when every member still gets a
/// partition as good as its solo best — which, unlike the homogeneous
/// case, can happen even for multi-member batches whose members prefer
/// disjoint chip regions.
///
/// # Errors
///
/// Propagates partition failures.
pub fn batch_efs_difference(
    device: &Device,
    circuits: &[&Circuit],
    strategy: &Strategy,
) -> Result<f64, CoreError> {
    if circuits.is_empty() {
        return Ok(0.0);
    }
    let excesses = batch_efs_excesses(device, circuits, strategy)?;
    Ok(excesses.iter().sum::<f64>() / circuits.len() as f64)
}

/// One point of the Fig. 4 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPoint {
    /// The fidelity threshold applied.
    pub threshold: f64,
    /// Number of simultaneous copies admitted.
    pub parallel_count: usize,
    /// Hardware throughput achieved.
    pub throughput: f64,
    /// Mean PST of the copies (deterministic benchmarks).
    pub mean_pst: Option<f64>,
    /// Mean JSD of the copies.
    pub mean_jsd: f64,
    /// EFS difference estimate that admitted this count.
    pub efs_difference: f64,
}

/// Sweeps fidelity thresholds, executing the admitted number of copies
/// at every point (the paper's Fig. 4 experiment).
///
/// # Errors
///
/// Propagates partition and simulation failures.
pub fn threshold_sweep(
    device: &Device,
    circuit: &Circuit,
    thresholds: &[f64],
    k_max: usize,
    strategy: &Strategy,
    cfg: &ParallelConfig,
) -> Result<Vec<ThresholdPoint>, CoreError> {
    let mut out = Vec::with_capacity(thresholds.len());
    for &threshold in thresholds {
        let k = parallel_count_for_threshold(device, circuit, threshold, k_max, strategy)?;
        let copies: Vec<Circuit> = (0..k)
            .map(|i| {
                let mut c = circuit.clone();
                c.set_name(format!("{}#{}", circuit.name(), i));
                c
            })
            .collect();
        let outcome = execute_parallel(device, &copies, strategy, cfg)?;
        let diff = if k == 1 {
            0.0
        } else {
            efs_difference(device, circuit, k, strategy)?
        };
        out.push(ThresholdPoint {
            threshold,
            parallel_count: k,
            throughput: outcome.throughput,
            mean_pst: outcome.mean_pst(),
            mean_jsd: outcome.mean_jsd(),
            efs_difference: diff,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy;
    use qucp_circuit::library;
    use qucp_device::ibm;
    use qucp_sim::ExecutionConfig;

    #[test]
    fn efs_difference_grows_with_copies() {
        let dev = ibm::manhattan();
        let c = library::by_name("4mod5-v1_22").unwrap().circuit();
        let s = strategy::qucp(4.0);
        let d2 = efs_difference(&dev, &c, 2, &s).unwrap();
        let d4 = efs_difference(&dev, &c, 4, &s).unwrap();
        let d6 = efs_difference(&dev, &c, 6, &s).unwrap();
        assert!(d2 >= 0.0);
        assert!(d4 >= d2 - 1e-12);
        assert!(d6 >= d4 - 1e-12, "d6 {d6} < d4 {d4}");
    }

    #[test]
    fn zero_threshold_admits_one() {
        let dev = ibm::manhattan();
        let c = library::by_name("4mod5-v1_22").unwrap().circuit();
        let k = parallel_count_for_threshold(&dev, &c, 0.0, 6, &strategy::qucp(4.0)).unwrap();
        assert_eq!(k, 1);
    }

    #[test]
    fn huge_threshold_admits_max() {
        let dev = ibm::manhattan();
        let c = library::by_name("4mod5-v1_22").unwrap().circuit();
        let k = parallel_count_for_threshold(&dev, &c, 1e9, 6, &strategy::qucp(4.0)).unwrap();
        assert_eq!(k, 6);
    }

    #[test]
    fn admitted_count_is_monotone_in_threshold() {
        let dev = ibm::manhattan();
        let c = library::by_name("alu-v0_27").unwrap().circuit();
        let s = strategy::qucp(4.0);
        let mut last = 0;
        for t in [0.0, 0.05, 0.1, 0.2, 0.5, 2.0] {
            let k = parallel_count_for_threshold(&dev, &c, t, 6, &s).unwrap();
            assert!(k >= last, "k not monotone at threshold {t}");
            last = k;
        }
    }

    #[test]
    fn batch_excess_is_zero_for_singleton_and_grows_with_pressure() {
        let dev = ibm::toronto();
        let a = library::by_name("fredkin").unwrap().circuit();
        let b = library::by_name("alu-v0_27").unwrap().circuit();
        let s = strategy::qucp(4.0);
        let solo = batch_efs_excesses(&dev, &[&a], &s).unwrap();
        assert_eq!(solo, vec![0.0]);
        // Four copies of the same circuit compete for the same best
        // region, so at least one member must pay an excess.
        let crowded = batch_efs_excesses(&dev, &[&a, &a, &a, &a], &s).unwrap();
        assert_eq!(crowded.len(), 4);
        assert!(crowded.iter().all(|&e| e >= 0.0));
        assert!(crowded.iter().sum::<f64>() > 0.0);
        // Heterogeneous pair: mean tracks the per-member excesses.
        let pair = batch_efs_excesses(&dev, &[&a, &b], &s).unwrap();
        let mean = batch_efs_difference(&dev, &[&a, &b], &s).unwrap();
        assert!((mean - pair.iter().sum::<f64>() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn batch_difference_matches_homogeneous_difference() {
        // On a homogeneous batch the per-member mean equals the
        // replicated-copy estimate of `efs_difference`.
        let dev = ibm::manhattan();
        let c = library::by_name("4mod5-v1_22").unwrap().circuit();
        let s = strategy::qucp(4.0);
        let copies = [&c, &c, &c];
        let batch = batch_efs_difference(&dev, &copies, &s).unwrap();
        let homog = efs_difference(&dev, &c, 3, &s).unwrap();
        assert!((batch - homog).abs() < 1e-12, "batch {batch} vs {homog}");
    }

    #[test]
    fn sweep_reports_throughput_growth() {
        let dev = ibm::manhattan();
        let c = library::by_name("4mod5-v1_22").unwrap().circuit();
        let cfg = ParallelConfig {
            execution: ExecutionConfig::default().with_shots(256),
            optimize: true,
        };
        let points = threshold_sweep(&dev, &c, &[0.0, 1e9], 4, &strategy::qucp(4.0), &cfg).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].parallel_count, 1);
        assert_eq!(points[1].parallel_count, 4);
        assert!(points[1].throughput > points[0].throughput);
        assert!(points[0].mean_pst.is_some());
    }
}
