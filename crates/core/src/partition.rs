//! Qubit partitioning: allocating disjoint reliable regions to programs.
//!
//! Follows the QuMC heuristic the paper builds on: grow connected
//! candidate regions from every free seed qubit, score each candidate
//! with the EFS metric (crosstalk-aware for QuCP/QuMC), and allocate the
//! best region to each program in turn. Baseline policies differ in the
//! candidate scoring: CNA-style topology-greedy ignores calibration;
//! QuCloud-style scoring maximizes "fidelity degree" (link fidelity sums)
//! without readout or crosstalk terms.

use std::collections::BTreeSet;

use qucp_circuit::Circuit;
use qucp_device::{Device, Link};

use crate::efs::{efs, CircuitStats, CrosstalkTreatment, EfsBreakdown};
use crate::error::CoreError;

/// Candidate-scoring policy of the partitioner.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionPolicy {
    /// Grow and score candidates by EFS (Eq. 1) with the given crosstalk
    /// treatment. QuCP uses `Sigma`, QuMC `Measured`, MultiQC `None`.
    NoiseAware(CrosstalkTreatment),
    /// CNA-style: first connected region found scanning qubits in index
    /// order — topology only, calibration-blind.
    TopologyGreedy,
    /// QuCloud-style: maximize the summed link fidelity (1 − CNOT error)
    /// inside the region; no readout or crosstalk terms.
    FidelityDegree,
}

/// One allocated partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Index of the program in the caller's list.
    pub program_index: usize,
    /// Physical qubits of the partition (sorted).
    pub qubits: Vec<usize>,
    /// The EFS breakdown of the chosen candidate (always computed with
    /// the policy's treatment, `None` treatment for the baselines).
    pub efs: EfsBreakdown,
}

impl Allocation {
    /// The coupling links inside the partition.
    pub fn links(&self, device: &Device) -> Vec<Link> {
        device.topology().links_within(&self.qubits)
    }
}

/// Grows connected candidate regions of `size` qubits from every free
/// seed. Neighbour additions are ranked compactness-first (most links
/// back into the region — the QuMC growth heuristic, which keeps
/// routing cheap), then by connecting-link reliability, then readout.
///
/// Returns deduplicated candidates (each sorted ascending).
pub fn candidate_partitions(
    device: &Device,
    size: usize,
    allocated: &BTreeSet<usize>,
) -> Vec<Vec<usize>> {
    let topo = device.topology();
    let cal = device.calibration();
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for seed in 0..topo.num_qubits() {
        if allocated.contains(&seed) {
            continue;
        }
        let mut region = vec![seed];
        while region.len() < size {
            // Frontier: free neighbours of the region, scored by
            // (links into region desc, connecting link error asc,
            // readout asc, index asc).
            let mut best: Option<(usize, f64, f64, usize)> = None;
            for &q in &region {
                for &nb in topo.neighbors(q) {
                    if allocated.contains(&nb) || region.contains(&nb) {
                        continue;
                    }
                    let mut into_region = 0usize;
                    let mut link_err = f64::INFINITY;
                    for &r in &region {
                        if topo.has_link(r, nb) {
                            into_region += 1;
                            link_err = link_err.min(cal.cx_error(Link::new(r, nb)));
                        }
                    }
                    let better = match best {
                        None => true,
                        Some((bi, be, bro, bnb)) => {
                            (
                                std::cmp::Reverse(into_region),
                                link_err,
                                cal.readout_error(nb),
                                nb,
                            ) < (std::cmp::Reverse(bi), be, bro, bnb)
                        }
                    };
                    if better {
                        best = Some((into_region, link_err, cal.readout_error(nb), nb));
                    }
                }
            }
            match best {
                Some((_, _, _, nb)) => region.push(nb),
                None => break,
            }
        }
        if region.len() == size {
            let mut sorted = region.clone();
            sorted.sort_unstable();
            if seen.insert(sorted.clone()) {
                out.push(sorted);
            }
        }
    }
    out
}

/// Allocates disjoint partitions for `programs` under `policy`.
///
/// Programs are placed in descending (width, CNOT count) order — densest
/// first, as in QuMC — but the returned allocations are indexed by the
/// caller's original order.
///
/// # Errors
///
/// [`CoreError::ProgramTooWide`] if a program exceeds the device;
/// [`CoreError::PartitionUnavailable`] if no free connected region fits.
pub fn allocate_partitions(
    device: &Device,
    programs: &[&Circuit],
    policy: &PartitionPolicy,
) -> Result<Vec<Allocation>, CoreError> {
    for (i, p) in programs.iter().enumerate() {
        if p.width() > device.num_qubits() {
            return Err(CoreError::ProgramTooWide {
                program: i,
                width: p.width(),
                device: device.num_qubits(),
            });
        }
    }
    let mut order: Vec<usize> = (0..programs.len()).collect();
    order.sort_by_key(|&i| {
        std::cmp::Reverse((programs[i].width(), programs[i].cx_count(), usize::MAX - i))
    });

    let mut allocated_qubits: BTreeSet<usize> = BTreeSet::new();
    let mut allocated_links: Vec<Link> = Vec::new();
    let mut result: Vec<Option<Allocation>> = vec![None; programs.len()];

    for &pi in &order {
        let program = programs[pi];
        let stats = CircuitStats::of(program);
        let size = program.width();
        let candidates = candidate_partitions(device, size, &allocated_qubits);
        if candidates.is_empty() {
            return Err(CoreError::PartitionUnavailable { program: pi, size });
        }
        let chosen = match policy {
            PartitionPolicy::NoiseAware(treatment) => candidates
                .into_iter()
                .map(|c| {
                    let b = efs(device, &c, &stats, &allocated_links, treatment);
                    (c, b)
                })
                // `total_cmp` sorts NaN scores last, so a candidate
                // poisoned by a NaN calibration reading loses to every
                // finite-scored one instead of panicking the allocator.
                .min_by(|a, b| a.1.score.total_cmp(&b.1.score).then_with(|| a.0.cmp(&b.0)))
                .expect("candidates not empty"),
            PartitionPolicy::TopologyGreedy => {
                // First region in qubit-index order, calibration-blind.
                let c = candidates
                    .into_iter()
                    .min_by(|a, b| a.cmp(b))
                    .expect("candidates not empty");
                let b = efs(
                    device,
                    &c,
                    &stats,
                    &allocated_links,
                    &CrosstalkTreatment::None,
                );
                (c, b)
            }
            PartitionPolicy::FidelityDegree => candidates
                .into_iter()
                .map(|c| {
                    let links = device.topology().links_within(&c);
                    let fidelity: f64 = links
                        .iter()
                        .map(|&l| 1.0 - device.calibration().cx_error(l))
                        .sum();
                    // `total_cmp` orders NaN *above* +∞, which would
                    // make a NaN-poisoned region win this maximization;
                    // demote it to −∞ so it loses to every finite
                    // candidate, mirroring the NaN-loses behaviour of
                    // the NoiseAware minimization above.
                    let fidelity = if fidelity.is_nan() {
                        f64::NEG_INFINITY
                    } else {
                        fidelity
                    };
                    let b = efs(
                        device,
                        &c,
                        &stats,
                        &allocated_links,
                        &CrosstalkTreatment::None,
                    );
                    (c, b, fidelity)
                })
                .max_by(|a, b| a.2.total_cmp(&b.2).then_with(|| b.0.cmp(&a.0)))
                .map(|(c, b, _)| (c, b))
                .expect("candidates not empty"),
        };
        let (qubits, breakdown) = chosen;
        for &q in &qubits {
            allocated_qubits.insert(q);
        }
        allocated_links.extend(device.topology().links_within(&qubits));
        result[pi] = Some(Allocation {
            program_index: pi,
            qubits,
            efs: breakdown,
        });
    }
    Ok(result.into_iter().map(Option::unwrap).collect())
}

/// The solo-best partition of a single program on an idle chip: the
/// allocation (and its EFS score) the program would get with the device
/// to itself.
///
/// This exposes partition *scoring* without replanning: callers that
/// only need the calibration-quality estimate of a circuit on a device
/// — the multi-device router, threshold explorers — get the stage-1
/// candidate growth and EFS evaluation alone, skipping the routing and
/// schedule-merge stages a full
/// [`Pipeline::plan`](crate::pipeline::Pipeline::plan) would pay for a
/// plan they discard.
///
/// # Errors
///
/// [`CoreError::ProgramTooWide`] if the program exceeds the device;
/// [`CoreError::PartitionUnavailable`] if no connected region fits.
pub fn best_partition(
    device: &Device,
    circuit: &Circuit,
    policy: &PartitionPolicy,
) -> Result<Allocation, CoreError> {
    let allocs = allocate_partitions(device, &[circuit], policy)?;
    Ok(allocs.into_iter().next().expect("one program allocated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::{ibm, Calibration, CrosstalkModel, Topology};

    fn line_device() -> Device {
        let t = Topology::line(8);
        let mut cal = Calibration::uniform(&t, 0.02, 3e-4, 0.02);
        // Make the right end clearly better.
        cal.set_cx_error(Link::new(0, 1), 0.06);
        cal.set_cx_error(Link::new(1, 2), 0.05);
        cal.set_cx_error(Link::new(6, 7), 0.008);
        cal.set_cx_error(Link::new(5, 6), 0.009);
        Device::new("line8", t, cal, CrosstalkModel::none())
    }

    fn program(width: usize, cx: usize) -> Circuit {
        let mut c = Circuit::new(width);
        for i in 0..cx {
            c.cx(i % width, (i + 1) % width);
        }
        c.h(0);
        c
    }

    #[test]
    fn candidates_are_connected_and_right_sized() {
        let dev = line_device();
        let cands = candidate_partitions(&dev, 3, &BTreeSet::new());
        assert!(!cands.is_empty());
        for c in &cands {
            assert_eq!(c.len(), 3);
            assert!(dev.topology().is_connected_subset(c));
        }
    }

    #[test]
    fn candidates_avoid_allocated() {
        let dev = line_device();
        let allocated: BTreeSet<usize> = [3, 4].into_iter().collect();
        for c in candidate_partitions(&dev, 3, &allocated) {
            assert!(c.iter().all(|q| !allocated.contains(q)));
        }
    }

    #[test]
    fn noise_aware_picks_reliable_end() {
        let dev = line_device();
        let p = program(3, 8);
        let allocs = allocate_partitions(
            &dev,
            &[&p],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::None),
        )
        .unwrap();
        // The reliable end is 5,6,7.
        assert_eq!(allocs[0].qubits, vec![5, 6, 7]);
    }

    #[test]
    fn topology_greedy_picks_low_indices() {
        let dev = line_device();
        let p = program(3, 8);
        let allocs = allocate_partitions(&dev, &[&p], &PartitionPolicy::TopologyGreedy).unwrap();
        assert_eq!(allocs[0].qubits, vec![0, 1, 2]);
    }

    #[test]
    fn allocations_are_disjoint() {
        let dev = ibm::toronto();
        let p1 = program(4, 10);
        let p2 = program(4, 8);
        let p3 = program(3, 6);
        let allocs = allocate_partitions(
            &dev,
            &[&p1, &p2, &p3],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(4.0)),
        )
        .unwrap();
        let mut all: Vec<usize> = allocs.iter().flat_map(|a| a.qubits.clone()).collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "partitions overlap");
        for a in &allocs {
            assert!(dev.topology().is_connected_subset(&a.qubits));
        }
    }

    #[test]
    fn allocation_preserves_program_order() {
        let dev = ibm::toronto();
        let small = program(2, 2);
        let big = program(5, 12);
        let allocs = allocate_partitions(
            &dev,
            &[&small, &big],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::None),
        )
        .unwrap();
        assert_eq!(allocs[0].program_index, 0);
        assert_eq!(allocs[0].qubits.len(), 2);
        assert_eq!(allocs[1].qubits.len(), 5);
    }

    #[test]
    fn too_wide_program_rejected() {
        let dev = line_device();
        let p = program(9, 4);
        let err = allocate_partitions(&dev, &[&p], &PartitionPolicy::TopologyGreedy).unwrap_err();
        assert!(matches!(err, CoreError::ProgramTooWide { .. }));
    }

    #[test]
    fn exhausted_device_rejected() {
        let dev = line_device();
        let p1 = program(5, 4);
        let p2 = program(5, 4);
        let err = allocate_partitions(
            &dev,
            &[&p1, &p2],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::None),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::PartitionUnavailable { .. }));
    }

    #[test]
    fn sigma_steers_away_from_allocated_neighbours() {
        // Uniform line: without crosstalk treatment the second partition
        // may sit one hop from the first; with a large sigma it should
        // prefer distance.
        let t = Topology::line(10);
        let cal = Calibration::uniform(&t, 0.02, 3e-4, 0.02);
        let dev = Device::new("line10", t, cal, CrosstalkModel::none());
        let p1 = program(3, 10);
        let p2 = program(3, 10);
        let allocs = allocate_partitions(
            &dev,
            &[&p1, &p2],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(8.0)),
        )
        .unwrap();
        // Distance between the two regions should exceed one hop for the
        // links (no crosstalk pairs chosen).
        assert!(
            allocs[1].efs.crosstalk_pairs.is_empty() || allocs[0].efs.crosstalk_pairs.is_empty(),
            "sigma treatment should find a crosstalk-free placement on an idle line"
        );
    }

    #[test]
    fn best_partition_matches_singleton_allocation() {
        let dev = line_device();
        let p = program(3, 8);
        let policy = PartitionPolicy::NoiseAware(CrosstalkTreatment::None);
        let alloc = best_partition(&dev, &p, &policy).unwrap();
        let full = allocate_partitions(&dev, &[&p], &policy).unwrap();
        assert_eq!(alloc, full[0]);
        assert!(best_partition(&dev, &program(9, 4), &policy).is_err());
    }

    #[test]
    fn nan_calibration_entry_does_not_panic_partition_scoring() {
        // A NaN reading in the daily snapshot (a real failure mode of
        // IBM's properties feed) must degrade gracefully: candidates
        // whose EFS turns NaN sort last under `total_cmp`, so the
        // noise-aware allocator deterministically avoids the poisoned
        // region instead of panicking in its comparator.
        let mut dev = line_device();
        dev.calibration_mut()
            .set_cx_error(Link::new(0, 1), f64::NAN);
        dev.calibration_mut().set_readout_error(1, f64::NAN);
        let p = program(3, 8);
        for policy in [
            PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(4.0)),
            PartitionPolicy::NoiseAware(CrosstalkTreatment::None),
            PartitionPolicy::TopologyGreedy,
            PartitionPolicy::FidelityDegree,
        ] {
            let allocs = allocate_partitions(&dev, &[&p], &policy).unwrap();
            assert_eq!(allocs[0].qubits.len(), 3, "{policy:?}");
            // Determinism: the same poisoned snapshot always yields the
            // same placement and bit-identical score (a NaN score would
            // fail `==`, so compare the bits).
            let again = allocate_partitions(&dev, &[&p], &policy).unwrap();
            assert_eq!(allocs[0].qubits, again[0].qubits, "{policy:?}");
            assert_eq!(
                allocs[0].efs.score.to_bits(),
                again[0].efs.score.to_bits(),
                "{policy:?}"
            );
        }
        // The calibration-consulting policies must place on
        // finite-scored regions (the reliable right end of the line is
        // untouched); only the calibration-blind TopologyGreedy may
        // still sit on the poisoned link.
        for policy in [
            PartitionPolicy::NoiseAware(CrosstalkTreatment::None),
            PartitionPolicy::FidelityDegree,
        ] {
            let allocs = allocate_partitions(&dev, &[&p], &policy).unwrap();
            assert!(allocs[0].efs.score.is_finite(), "{policy:?}");
            assert!(!allocs[0].qubits.contains(&0), "{policy:?}");
        }
    }

    #[test]
    fn fidelity_degree_prefers_good_links() {
        let dev = line_device();
        let p = program(3, 8);
        let allocs = allocate_partitions(&dev, &[&p], &PartitionPolicy::FidelityDegree).unwrap();
        assert_eq!(allocs[0].qubits, vec![5, 6, 7]);
    }
}
