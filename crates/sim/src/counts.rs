//! Measurement count accumulation and observable estimation.

use std::collections::BTreeMap;
use std::fmt;

/// Accumulated measurement outcomes of a circuit execution.
///
/// Outcomes are basis-state indices in the little-endian convention of
/// [`crate::Statevector`] (bit `q` of the index is qubit `q`).
///
/// ```
/// use qucp_sim::Counts;
/// let mut counts = Counts::new(2);
/// counts.record(0b00);
/// counts.record(0b11);
/// counts.record(0b11);
/// assert_eq!(counts.shots(), 3);
/// assert!((counts.probability(0b11) - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(counts.bitstring(0b01), "10"); // qubit 0 first
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    width: usize,
    map: BTreeMap<usize, usize>,
    shots: usize,
}

impl Counts {
    /// Empty counts for a `width`-qubit register.
    pub fn new(width: usize) -> Self {
        Counts {
            width,
            map: BTreeMap::new(),
            shots: 0,
        }
    }

    /// Rebuilds counts from `(outcome, count)` entries, e.g. decoded
    /// from a wire encoding of [`Counts::iter`]. Returns `None` — never
    /// panicking, unlike repeated [`Counts::record`] — when `width`
    /// exceeds the register sizes a `usize` outcome can index, an
    /// outcome is out of range or repeated, or the total shot count
    /// overflows. Entries may arrive in any order; the result is
    /// identical to recording each outcome `count` times.
    pub fn from_entries(
        width: usize,
        entries: impl IntoIterator<Item = (usize, usize)>,
    ) -> Option<Self> {
        if width >= usize::BITS as usize {
            return None;
        }
        let mut counts = Counts::new(width);
        for (index, count) in entries {
            // Zero counts are rejected too: recording never produces
            // them, so admitting one would break the canonical-form
            // equality `from_entries(width, c.iter()) == c`.
            if count == 0 || index >= (1usize << width) {
                return None;
            }
            if counts.map.insert(index, count).is_some() {
                return None;
            }
            counts.shots = counts.shots.checked_add(count)?;
        }
        Some(counts)
    }

    /// Records one shot with outcome `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in the register width.
    pub fn record(&mut self, index: usize) {
        assert!(
            index < (1usize << self.width),
            "outcome {index} out of range for {} qubits",
            self.width
        );
        *self.map.entry(index).or_insert(0) += 1;
        self.shots += 1;
    }

    /// Register width in qubits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of shots recorded.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Count of a particular outcome.
    pub fn count(&self, index: usize) -> usize {
        self.map.get(&index).copied().unwrap_or(0)
    }

    /// Empirical probability of an outcome.
    pub fn probability(&self, index: usize) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.count(index) as f64 / self.shots as f64
        }
    }

    /// The empirical distribution as a dense vector of length `2^width`.
    pub fn distribution(&self) -> Vec<f64> {
        let mut v = vec![0.0; 1 << self.width];
        if self.shots == 0 {
            return v;
        }
        for (&idx, &c) in &self.map {
            v[idx] = c as f64 / self.shots as f64;
        }
        v
    }

    /// Iterates `(outcome, count)` pairs in ascending outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// The most frequent outcome, if any shot was recorded.
    pub fn most_frequent(&self) -> Option<usize> {
        self.map
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&k, _)| k)
    }

    /// Renders an outcome as a bitstring with **qubit 0 first**.
    pub fn bitstring(&self, index: usize) -> String {
        (0..self.width)
            .map(|q| if index >> q & 1 == 1 { '1' } else { '0' })
            .collect()
    }

    /// Expectation value of a tensor of Pauli-Z operators on the qubits
    /// set in `mask` (e.g. `mask = 0b11` for ⟨Z₁Z₀⟩). Returns a value in
    /// `[-1, 1]`; the empty mask gives 1.
    pub fn expectation_z(&self, mask: usize) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (&idx, &c) in &self.map {
            let parity = (idx & mask).count_ones() % 2;
            let sign = if parity == 0 { 1.0 } else { -1.0 };
            acc += sign * c as f64;
        }
        acc / self.shots as f64
    }

    /// Merges another `Counts` of the same width into this one.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(self.width, other.width, "width mismatch in Counts::merge");
        for (&idx, &c) in &other.map {
            *self.map.entry(idx).or_insert(0) += c;
        }
        self.shots += other.shots;
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (&idx, &c)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", self.bitstring(idx), c)?;
        }
        write!(f, "}} ({} shots)", self.shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(3);
        c.record(0);
        c.record(5);
        c.record(5);
        assert_eq!(c.shots(), 3);
        assert_eq!(c.count(5), 2);
        assert_eq!(c.count(1), 0);
        assert!((c.probability(5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.most_frequent(), Some(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_out_of_range_panics() {
        let mut c = Counts::new(2);
        c.record(4);
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut c = Counts::new(2);
        for idx in [0, 1, 1, 2, 3, 3, 3, 3] {
            c.record(idx);
        }
        let d = c.distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counts() {
        let c = Counts::new(2);
        assert_eq!(c.shots(), 0);
        assert_eq!(c.probability(0), 0.0);
        assert_eq!(c.most_frequent(), None);
        assert_eq!(c.expectation_z(0b11), 0.0);
        assert!(c.distribution().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn bitstring_is_little_endian() {
        let c = Counts::new(4);
        assert_eq!(c.bitstring(0b0001), "1000");
        assert_eq!(c.bitstring(0b1000), "0001");
        assert_eq!(c.bitstring(0b1010), "0101");
    }

    #[test]
    fn expectation_z_parity() {
        let mut c = Counts::new(2);
        // |00> and |11> have even parity on mask 0b11.
        c.record(0b00);
        c.record(0b11);
        assert!((c.expectation_z(0b11) - 1.0).abs() < 1e-12);
        // |01> flips sign for single-qubit mask on qubit 0.
        let mut c = Counts::new(2);
        c.record(0b01);
        assert!((c.expectation_z(0b01) + 1.0).abs() < 1e-12);
        assert!((c.expectation_z(0b10) - 1.0).abs() < 1e-12);
        // Empty mask: always +1.
        assert!((c.expectation_z(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counts::new(2);
        a.record(1);
        let mut b = Counts::new(2);
        b.record(1);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.shots(), 3);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(2), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_width_mismatch_panics() {
        let mut a = Counts::new(2);
        let b = Counts::new(3);
        a.merge(&b);
    }

    #[test]
    fn display_contains_bitstrings() {
        let mut c = Counts::new(2);
        c.record(0b01);
        let s = c.to_string();
        assert!(s.contains("10: 1"), "{s}");
        assert!(s.contains("1 shots"));
    }

    #[test]
    fn iter_in_order() {
        let mut c = Counts::new(2);
        c.record(3);
        c.record(0);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (3, 1)]);
    }
}
