//! Noisy Monte-Carlo trajectory execution of mapped circuits.
//!
//! A *job* is a circuit whose qubits are laid out on physical qubits of a
//! device. Each shot walks the ALAP-scheduled event stream: every gate is
//! applied ideally and followed, with the calibrated probability, by a
//! random Pauli error on its operands (stochastic Pauli-twirled
//! depolarizing noise); idle gaps in the schedule inject thermal
//! relaxation/dephasing errors derived from T1/T2; readout flips each
//! measured bit with the qubit's readout error.
//!
//! Crosstalk enters through a per-gate [`NoiseScaling`]: the parallel
//! executor in `qucp-core` inspects the *merged* schedule of all
//! simultaneous programs and scales a CNOT's error probability by the
//! device's γ factor whenever a one-hop neighbour CNOT from another
//! program overlaps it in time. This is exactly the error structure the
//! paper's QuCP/QuMC/CNA policies are designed to avoid.

use std::error::Error;
use std::fmt;

use qucp_circuit::{schedule, Circuit, Gate};
use qucp_device::{Calibration, Device, Link};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::counts::Counts;
use crate::state::Statevector;

/// How the trajectory loop spreads a job's shots over worker threads.
///
/// ## Determinism contract
///
/// Sharded counts depend only on `(seed, shards)` and the job itself —
/// **never** on `threads`: shard `s` draws every trajectory from its
/// own `StdRng` seeded with [`derive_shard_seed`]`(seed, s)`, and the
/// per-shard counts are merged in shard order after all workers join.
/// Running the same job with 1, 2 or 8 workers is bit-for-bit
/// identical; only wall-clock time changes.
///
/// [`ShotParallelism::Serial`] (the default) is the historical
/// single-stream path and stays bit-for-bit identical to every release
/// before sharding existed. A sharded run — even with one shard — uses
/// the derived shard seeds and therefore samples a *different* (equally
/// valid) set of trajectories than the serial path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShotParallelism {
    /// One sequential RNG stream on the calling thread (the default,
    /// bit-for-bit the pre-sharding behaviour).
    #[default]
    Serial,
    /// Split the shot budget into `shards` deterministic RNG streams
    /// executed by up to `threads` scoped workers.
    Sharded {
        /// Number of independent shard streams (0 is treated as 1).
        /// Fixing `shards` fixes the counts; choose it once per
        /// workload, not per machine.
        shards: usize,
        /// Worker-thread cap (0 = all available cores). Affects only
        /// wall-clock time, never the counts.
        threads: usize,
    },
    /// Adaptive sharding: pick the shard count from the job's shot
    /// budget via [`auto_shard_count`] (one shard per
    /// [`AUTO_SHOTS_PER_SHARD`] shots, at least 1, at most
    /// [`AUTO_MAX_SHARDS`]) and run on all available cores. The counts
    /// stay a pure function of `(seed, shots)` — the shot budget
    /// *determines* the shard split, so two runs of the same job agree
    /// bit-for-bit on any machine, and `Auto` on an `n`-shot job equals
    /// `Sharded { shards: auto_shard_count(n), threads: 0 }` exactly.
    Auto,
}

impl ShotParallelism {
    /// Sharded execution over `shards` streams on all available cores.
    pub fn sharded(shards: usize) -> Self {
        ShotParallelism::Sharded { shards, threads: 0 }
    }

    /// The same shard split with an explicit worker cap. `Serial` and
    /// `Auto` are unaffected: the former has no workers, the latter
    /// always uses all available cores (cap the workers by resolving
    /// the split yourself with [`auto_shard_count`] and `Sharded`).
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        match self {
            ShotParallelism::Serial => ShotParallelism::Serial,
            ShotParallelism::Sharded { shards, .. } => ShotParallelism::Sharded { shards, threads },
            ShotParallelism::Auto => ShotParallelism::Auto,
        }
    }

    /// The concrete mode a job of `shots` runs under: `Auto` resolves
    /// to its budget-derived shard split, everything else is returned
    /// unchanged.
    #[must_use]
    pub fn resolve(self, shots: usize) -> Self {
        match self {
            ShotParallelism::Auto => ShotParallelism::Sharded {
                shards: auto_shard_count(shots),
                threads: 0,
            },
            other => other,
        }
    }
}

/// Shot budget one auto-picked shard covers (see [`auto_shard_count`]).
pub const AUTO_SHOTS_PER_SHARD: usize = 512;

/// Upper bound on auto-picked shard counts (see [`auto_shard_count`]).
pub const AUTO_MAX_SHARDS: usize = 32;

/// The shard count [`ShotParallelism::Auto`] picks for a job of
/// `shots`: `clamp(shots / AUTO_SHOTS_PER_SHARD, 1, AUTO_MAX_SHARDS)`.
///
/// The heuristic keeps every shard busy enough to amortize its scratch
/// setup (at least [`AUTO_SHOTS_PER_SHARD`] = 512 shots per shard, so
/// small jobs run 1 shard ≈ serially) while bounding the split (at most
/// [`AUTO_MAX_SHARDS`] = 32 shards, past which merge overhead and
/// diminishing stream lengths dominate). It deliberately ignores the
/// machine's core count: shards determine the counts, so they must be
/// a pure function of the job, never of the host.
pub fn auto_shard_count(shots: usize) -> usize {
    (shots / AUTO_SHOTS_PER_SHARD).clamp(1, AUTO_MAX_SHARDS)
}

// The workspace's canonical SplitMix64 mixer lives in `qucp-device`
// (`qucp_device::splitmix64`, shared with the drift models' step
// seeds); the shard-seed derivation below builds on it.
use qucp_device::splitmix64;

/// The seed of shard `shard` for a job seeded with `seed`: the
/// `shard + 1`-th output of a SplitMix64 generator whose state starts
/// at `splitmix64(seed)`. Each shard feeds it to
/// `StdRng::seed_from_u64`, giving every shard a statistically
/// independent trajectory stream while keeping the whole job a pure
/// function of `(seed, shards)`.
///
/// The base seed passes through the mix *before* the shard stride is
/// added: callers hand this function seeds that are themselves
/// golden-ratio strides of a common base (the per-program seeds of a
/// batch, `qucp_core::pipeline::derive_program_seed`), and a linear
/// stride over the raw seed would make program `i`'s shard `s` collide
/// with program `i + 1`'s shard `s - 1`. The extra mix breaks that
/// linearity, so co-scheduled sharded programs never share a stream.
pub fn derive_shard_seed(seed: u64, shard: usize) -> u64 {
    splitmix64(splitmix64(seed).wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64)))
}

/// Execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Number of measurement shots.
    pub shots: usize,
    /// RNG seed (trajectories are reproducible given the seed).
    pub seed: u64,
    /// Enable stochastic Pauli noise after gates.
    pub gate_noise: bool,
    /// Enable readout bit flips.
    pub readout_noise: bool,
    /// Enable idle decoherence from schedule gaps.
    pub idle_noise: bool,
    /// Shot-level parallelism (see [`ShotParallelism`] for the
    /// determinism contract). Defaults to the serial path.
    pub parallelism: ShotParallelism,
}

impl Default for ExecutionConfig {
    /// 8192 shots (the paper's job size), all noise channels enabled,
    /// serial trajectory execution.
    fn default() -> Self {
        ExecutionConfig {
            shots: 8192,
            seed: 0x5EED,
            gate_noise: true,
            readout_noise: true,
            idle_noise: true,
            parallelism: ShotParallelism::Serial,
        }
    }
}

impl ExecutionConfig {
    /// A config with a different seed (convenience for sweeps).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A config with a different shot count.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// A config with a different shot-parallelism mode.
    pub fn with_parallelism(mut self, parallelism: ShotParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Per-gate multiplicative scaling of error probabilities.
///
/// Index `i` scales the error probability of gate `i` of the circuit.
/// Factors default to 1 beyond the stored length.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseScaling {
    factors: Vec<f64>,
}

impl NoiseScaling {
    /// Unit scaling for a circuit of `len` gates.
    pub fn uniform(len: usize) -> Self {
        NoiseScaling {
            factors: vec![1.0; len],
        }
    }

    /// Builds from explicit factors.
    pub fn from_factors(factors: Vec<f64>) -> Self {
        NoiseScaling { factors }
    }

    /// The factor for gate `i` (1.0 when out of range).
    pub fn factor(&self, i: usize) -> f64 {
        self.factors.get(i).copied().unwrap_or(1.0)
    }

    /// Sets the factor for gate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, factor: f64) {
        self.factors[i] = factor;
    }

    /// Multiplies the factor for gate `i` in place.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn amplify(&mut self, i: usize, factor: f64) {
        self.factors[i] *= factor;
    }

    /// The largest factor present (1.0 for empty scalings).
    pub fn max_factor(&self) -> f64 {
        self.factors.iter().copied().fold(1.0, f64::max)
    }
}

/// Errors produced when a job is inconsistent with the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Layout length does not match the circuit width.
    LayoutMismatch {
        /// Circuit width.
        circuit: usize,
        /// Layout length.
        layout: usize,
    },
    /// The layout maps two qubits to the same physical qubit.
    LayoutNotInjective {
        /// The physical qubit claimed twice.
        physical: usize,
    },
    /// A layout entry exceeds the device size.
    PhysicalOutOfRange {
        /// The offending physical index.
        physical: usize,
        /// Device size.
        device: usize,
    },
    /// A two-qubit gate acts on physical qubits that are not coupled.
    NotCoupled {
        /// Index of the offending gate.
        gate_index: usize,
        /// First physical operand.
        a: usize,
        /// Second physical operand.
        b: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::LayoutMismatch { circuit, layout } => write!(
                f,
                "layout length {layout} does not match circuit width {circuit}"
            ),
            SimError::LayoutNotInjective { physical } => {
                write!(f, "layout maps two qubits onto physical qubit {physical}")
            }
            SimError::PhysicalOutOfRange { physical, device } => {
                write!(
                    f,
                    "physical qubit {physical} out of range for device of {device}"
                )
            }
            SimError::NotCoupled { gate_index, a, b } => write!(
                f,
                "gate {gate_index} acts on uncoupled physical qubits {a} and {b}"
            ),
        }
    }
}

impl Error for SimError {}

/// The identity layout `[0, 1, …, width-1]`.
pub fn trivial_layout(width: usize) -> Vec<usize> {
    (0..width).collect()
}

/// Per-gate durations (ns) of a mapped circuit under the device
/// calibration: one-qubit gates take the calibrated single-qubit time,
/// CNOT/CZ/CP the link's CNOT time, SWAP three CNOTs.
///
/// This is the same duration model [`run_noisy`] uses internally, exposed
/// so that the parallel scheduler in `qucp-core` computes time overlaps
/// consistent with the simulator's ALAP timing.
///
/// # Panics
///
/// Panics if a two-qubit gate does not land on a coupling link.
pub fn gate_durations(circuit: &Circuit, layout: &[usize], device: &Device) -> Vec<f64> {
    let cal = device.calibration();
    circuit
        .gates()
        .iter()
        .map(|g| {
            let qs = g.qubits();
            let qs = qs.as_slice();
            match g {
                Gate::Swap(..) => 3.0 * cal.cx_duration(Link::new(layout[qs[0]], layout[qs[1]])),
                g if g.is_two_qubit() => cal.cx_duration(Link::new(layout[qs[0]], layout[qs[1]])),
                _ => cal.sq_duration(),
            }
        })
        .collect()
}

/// Noiseless output probabilities of a circuit (dense, little-endian).
pub fn noiseless_probabilities(circuit: &Circuit) -> Vec<f64> {
    Statevector::from_circuit(circuit).probabilities()
}

/// The deterministic noiseless outcome of a circuit, if it has one
/// (probability above 0.999).
pub fn ideal_outcome(circuit: &Circuit) -> Option<usize> {
    let (idx, p) = Statevector::from_circuit(circuit).argmax();
    (p > 0.999).then_some(idx)
}

/// Samples `shots` outcomes from the noiseless circuit.
pub fn run_ideal(circuit: &Circuit, shots: usize, seed: u64) -> Counts {
    let sv = Statevector::from_circuit(circuit);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = Counts::new(circuit.width());
    for _ in 0..shots {
        counts.record(sv.sample(&mut rng));
    }
    counts
}

/// One scheduled noise opportunity in the trajectory event stream.
///
/// Shared (crate-internal) with the exact density-matrix evaluator in
/// [`crate::density`], which walks the identical stream so that the two
/// simulation paths implement the *same* noise model.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// Apply gate `index`, then (maybe) its error.
    Gate {
        /// Gate position in the circuit.
        index: usize,
    },
    /// Idle decoherence window on local qubit `q`.
    Idle {
        /// Local qubit that idles.
        q: usize,
        /// Pauli-twirled relaxation probability of the window.
        relax_p: f64,
        /// Pauli-twirled dephasing probability of the window.
        dephase_p: f64,
    },
}

/// The deterministic part of a noisy execution: the time-ordered event
/// stream and the effective (crosstalk-scaled) per-gate error
/// probabilities.
#[derive(Debug, Clone)]
pub(crate) struct TrajectoryPlan {
    /// `(time, kind, event)` sorted by time with idles before gates.
    pub events: Vec<(f64, u8, Event)>,
    /// Per-gate error probabilities after scaling, capped at 0.75.
    pub error_p: Vec<f64>,
}

/// Builds the shared trajectory plan (see [`TrajectoryPlan`]).
pub(crate) fn build_plan(
    circuit: &Circuit,
    layout: &[usize],
    device: &Device,
    scaling: &NoiseScaling,
    tail_idle: &[f64],
    cfg: &ExecutionConfig,
) -> Result<TrajectoryPlan, SimError> {
    validate_layout(circuit, layout, device)?;
    let cal = device.calibration();

    // Per-gate durations and base error probabilities.
    let mut durations = Vec::with_capacity(circuit.gate_count());
    let mut base_error = Vec::with_capacity(circuit.gate_count());
    for g in circuit.gates() {
        let qs = g.qubits();
        let qs = qs.as_slice();
        match g {
            Gate::Swap(..) => {
                let link = Link::new(layout[qs[0]], layout[qs[1]]);
                let e = cal.cx_error(link);
                durations.push(3.0 * cal.cx_duration(link));
                base_error.push(1.0 - (1.0 - e).powi(3));
            }
            g if g.is_two_qubit() => {
                let link = Link::new(layout[qs[0]], layout[qs[1]]);
                durations.push(cal.cx_duration(link));
                base_error.push(cal.cx_error(link));
            }
            _ => {
                durations.push(cal.sq_duration());
                base_error.push(cal.sq_error(layout[qs[0]]));
            }
        }
    }

    // ALAP schedule (the paper's policy) and its idle windows.
    let sched = schedule::alap_schedule_with(circuit, |i, _| durations[i]);

    let mut events: Vec<(f64, u8, Event)> = Vec::new();
    for e in sched.entries() {
        events.push((
            e.start,
            1,
            Event::Gate {
                index: e.gate_index,
            },
        ));
    }
    if cfg.idle_noise {
        for (q, windows) in sched.idle_windows(circuit).into_iter().enumerate() {
            let phys = layout[q];
            let t1 = cal.t1(phys);
            let t2 = cal.t2(phys);
            for (a, b) in windows {
                let tau = b - a;
                let relax_p = 1.0 - (-tau / t1).exp();
                let dephase_p = 1.0 - (-tau / t2).exp();
                events.push((
                    b,
                    0,
                    Event::Idle {
                        q,
                        relax_p,
                        dephase_p,
                    },
                ));
            }
        }
        for (q, &tau) in tail_idle.iter().enumerate() {
            if tau > 0.0 && q < circuit.width() {
                let phys = layout[q];
                let relax_p = 1.0 - (-tau / cal.t1(phys)).exp();
                let dephase_p = 1.0 - (-tau / cal.t2(phys)).exp();
                events.push((
                    sched.makespan() + tau,
                    0,
                    Event::Idle {
                        q,
                        relax_p,
                        dephase_p,
                    },
                ));
            }
        }
    }
    events.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));

    // Effective per-gate error probabilities with crosstalk scaling.
    let error_p: Vec<f64> = base_error
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            if cfg.gate_noise {
                (e * scaling.factor(i)).min(0.75)
            } else {
                0.0
            }
        })
        .collect();
    Ok(TrajectoryPlan { events, error_p })
}

/// Executes a mapped circuit on the device's noise model.
///
/// `layout[q]` gives the physical qubit carrying local qubit `q`; every
/// two-qubit gate must land on a coupling link. `scaling` holds the
/// crosstalk amplification of each gate (see module docs).
///
/// # Errors
///
/// Returns a [`SimError`] if the layout is malformed or a two-qubit gate
/// is not executable on the topology.
pub fn run_noisy(
    circuit: &Circuit,
    layout: &[usize],
    device: &Device,
    scaling: &NoiseScaling,
    cfg: &ExecutionConfig,
) -> Result<Counts, SimError> {
    run_noisy_with_idle(circuit, layout, device, scaling, &[], cfg)
}

/// [`run_noisy`] with additional trailing idle time per local qubit.
///
/// `tail_idle[q]` nanoseconds of extra waiting are appended to qubit `q`
/// before readout (missing entries mean zero). The parallel executor uses
/// this to charge the decoherence cost of gate-level crosstalk
/// *serialization* (the CNA baseline delays conflicting CNOTs, which
/// stretches the schedule).
///
/// # Errors
///
/// Returns a [`SimError`] if the layout is malformed or a two-qubit gate
/// is not executable on the topology.
pub fn run_noisy_with_idle(
    circuit: &Circuit,
    layout: &[usize],
    device: &Device,
    scaling: &NoiseScaling,
    tail_idle: &[f64],
    cfg: &ExecutionConfig,
) -> Result<Counts, SimError> {
    let plan = build_plan(circuit, layout, device, scaling, tail_idle, cfg)?;
    let ideal = Statevector::from_circuit(circuit);
    let job = TrajectoryJob {
        circuit,
        layout,
        cal: device.calibration(),
        plan: &plan,
        ideal: &ideal,
        cfg,
    };
    Ok(match cfg.parallelism.resolve(cfg.shots) {
        ShotParallelism::Serial => job.run_stream(cfg.shots, cfg.seed),
        ShotParallelism::Sharded { shards, threads } => job.run_sharded(shards, threads),
        ShotParallelism::Auto => unreachable!("Auto resolves to Sharded"),
    })
}

/// Everything a trajectory stream shares with every other stream of the
/// same job: the mapped circuit, the pre-built [`TrajectoryPlan`], the
/// cached ideal state and the calibration. Plain shared references —
/// the plan is built **once** per job and read concurrently by every
/// shard worker.
#[derive(Clone, Copy)]
struct TrajectoryJob<'a> {
    circuit: &'a Circuit,
    layout: &'a [usize],
    cal: &'a Calibration,
    plan: &'a TrajectoryPlan,
    ideal: &'a Statevector,
    cfg: &'a ExecutionConfig,
}

impl TrajectoryJob<'_> {
    /// Runs one sequential stream of `shots` trajectories from `seed`.
    ///
    /// This is the hot loop. All per-shot scratch (the error-pattern
    /// buffers and the replay statevector) lives in a [`ShotScratch`]
    /// allocated once per stream and reused across shots, so steady
    /// state allocates nothing.
    fn run_stream(&self, shots: usize, seed: u64) -> Counts {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = Counts::new(self.circuit.width());
        let mut scratch = ShotScratch::new(self.circuit.width());
        for _ in 0..shots {
            counts.record(self.run_shot(&mut rng, &mut scratch));
        }
        counts
    }

    /// One trajectory: pre-draw the error pattern, sample the cached
    /// ideal state when it is empty (the dominant fast path), otherwise
    /// replay the event stream on the scratch state, then flip readout
    /// bits.
    fn run_shot(&self, rng: &mut StdRng, scratch: &mut ShotScratch) -> usize {
        let TrajectoryPlan { events, error_p } = self.plan;
        let cfg = self.cfg;
        scratch.gate_errors.clear();
        scratch.idle_errors.clear();
        for (pos, &(_, _, ev)) in events.iter().enumerate() {
            match ev {
                Event::Gate { index } => {
                    if cfg.gate_noise && error_p[index] > 0.0 && rng.gen_bool(error_p[index]) {
                        scratch.gate_errors.push(pos);
                    }
                }
                Event::Idle {
                    relax_p, dephase_p, ..
                } => {
                    // Pauli-twirled thermal noise: X/Y each with
                    // p_relax/4, Z with p_dephase/2.
                    let px = relax_p / 4.0;
                    let py = relax_p / 4.0;
                    let pz = dephase_p / 2.0;
                    let u: f64 = rng.gen();
                    if u < px {
                        scratch.idle_errors.push((pos, Pauli::X));
                    } else if u < px + py {
                        scratch.idle_errors.push((pos, Pauli::Y));
                    } else if u < px + py + pz {
                        scratch.idle_errors.push((pos, Pauli::Z));
                    }
                }
            }
        }

        let outcome = if scratch.gate_errors.is_empty() && scratch.idle_errors.is_empty() {
            self.ideal.sample(rng)
        } else {
            let sv = &mut scratch.state;
            sv.reset_zero();
            let mut gate_err = scratch.gate_errors.iter().peekable();
            let mut idle_err = scratch.idle_errors.iter().peekable();
            for (pos, &(_, _, ev)) in events.iter().enumerate() {
                match ev {
                    Event::Gate { index } => {
                        sv.apply(&self.circuit.gates()[index]);
                        if gate_err.peek() == Some(&&pos) {
                            gate_err.next();
                            apply_gate_error(sv, &self.circuit.gates()[index], rng);
                        }
                    }
                    Event::Idle { q, .. } => {
                        if let Some(&&(epos, pauli)) = idle_err.peek() {
                            if epos == pos {
                                idle_err.next();
                                apply_pauli(sv, q, pauli);
                            }
                        }
                    }
                }
            }
            sv.sample(rng)
        };

        let mut measured = outcome;
        if cfg.readout_noise {
            for (q, &phys) in self.layout.iter().enumerate() {
                if rng.gen_bool(self.cal.readout_error(phys)) {
                    measured ^= 1 << q;
                }
            }
        }
        measured
    }

    /// Sharded execution: the shot budget splits into `shards` streams
    /// (as even as possible, earlier shards take the remainder), shard
    /// `s` is seeded with [`derive_shard_seed`]`(seed, s)`, workers
    /// claim shards off a shared counter, and the per-shard counts
    /// merge **in shard order** — so the result is a pure function of
    /// `(seed, shards)`, independent of `threads` and of scheduling.
    ///
    /// When `shards > shots` the tail shards carry zero shots; they are
    /// skipped outright (no seed stream is built, no worker spins up
    /// for them) — merging an empty shard is a no-op, so the counts
    /// stay bit-for-bit those of the full shard sweep.
    fn run_sharded(&self, shards: usize, threads: usize) -> Counts {
        let shards = shards.max(1);
        let shots = self.cfg.shots;
        let (base, rem) = (shots / shards, shots % shards);
        let shard_shots = |s: usize| base + usize::from(s < rem);
        // Every shard past `active` is empty (base == 0 means only the
        // first `rem` shards got the remainder shot).
        let active = if base == 0 { rem } else { shards };

        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        let threads = threads.min(active).max(1);

        let mut partials: Vec<(usize, Counts)> = if threads == 1 {
            (0..active)
                .map(|s| {
                    (
                        s,
                        self.run_stream(shard_shots(s), derive_shard_seed(self.cfg.seed, s)),
                    )
                })
                .collect()
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut done: Vec<(usize, Counts)> = Vec::new();
                            loop {
                                let s = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if s >= active {
                                    break done;
                                }
                                done.push((
                                    s,
                                    self.run_stream(
                                        shard_shots(s),
                                        derive_shard_seed(self.cfg.seed, s),
                                    ),
                                ));
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            })
        };
        partials.sort_unstable_by_key(|&(s, _)| s);
        let mut counts = Counts::new(self.circuit.width());
        for (_, partial) in &partials {
            counts.merge(partial);
        }
        counts
    }
}

/// Reusable per-stream scratch of the trajectory hot loop.
struct ShotScratch {
    /// Event positions whose gate draws an error this shot.
    gate_errors: Vec<usize>,
    /// Event positions whose idle window draws a Pauli this shot.
    idle_errors: Vec<(usize, Pauli)>,
    /// Replay statevector for shots that drew at least one error.
    state: Statevector,
}

impl ShotScratch {
    fn new(width: usize) -> Self {
        ShotScratch {
            gate_errors: Vec::new(),
            idle_errors: Vec::new(),
            state: Statevector::zero_state(width),
        }
    }
}

fn validate_layout(circuit: &Circuit, layout: &[usize], device: &Device) -> Result<(), SimError> {
    if layout.len() != circuit.width() {
        return Err(SimError::LayoutMismatch {
            circuit: circuit.width(),
            layout: layout.len(),
        });
    }
    let n = device.num_qubits();
    let mut seen = vec![false; n];
    for &p in layout {
        if p >= n {
            return Err(SimError::PhysicalOutOfRange {
                physical: p,
                device: n,
            });
        }
        if seen[p] {
            return Err(SimError::LayoutNotInjective { physical: p });
        }
        seen[p] = true;
    }
    for (i, g) in circuit.gates().iter().enumerate() {
        if g.is_two_qubit() {
            let qs = g.qubits();
            let qs = qs.as_slice();
            let (a, b) = (layout[qs[0]], layout[qs[1]]);
            if !device.topology().has_link(a, b) {
                return Err(SimError::NotCoupled {
                    gate_index: i,
                    a,
                    b,
                });
            }
        }
    }
    Ok(())
}

/// A single-qubit Pauli error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pauli {
    X,
    Y,
    Z,
}

fn random_pauli(rng: &mut impl Rng) -> Pauli {
    match rng.gen_range(0..3) {
        0 => Pauli::X,
        1 => Pauli::Y,
        _ => Pauli::Z,
    }
}

fn apply_pauli(sv: &mut Statevector, q: usize, pauli: Pauli) {
    let gate = match pauli {
        Pauli::X => Gate::X(q),
        Pauli::Y => Gate::Y(q),
        Pauli::Z => Gate::Z(q),
    };
    sv.apply(&gate);
}

/// Applies a depolarizing-style error after `gate`: a uniformly random
/// non-identity Pauli on a one-qubit gate's operand, or a uniformly
/// random non-identity two-qubit Pauli on both operands.
fn apply_gate_error(sv: &mut Statevector, gate: &Gate, rng: &mut impl Rng) {
    let qs = gate.qubits();
    let qs = qs.as_slice();
    if qs.len() == 1 {
        apply_pauli(sv, qs[0], random_pauli(rng));
    } else {
        // Uniform over the 15 non-identity two-qubit Paulis.
        let k = rng.gen_range(1..16);
        let (a, b) = (k / 4, k % 4);
        if a > 0 {
            apply_pauli(sv, qs[0], int_pauli(a));
        }
        if b > 0 {
            apply_pauli(sv, qs[1], int_pauli(b));
        }
    }
}

fn int_pauli(i: usize) -> Pauli {
    match i {
        1 => Pauli::X,
        2 => Pauli::Y,
        _ => Pauli::Z,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::{Calibration, CrosstalkModel, Topology};

    fn line_device(n: usize, cx_err: f64, ro_err: f64) -> Device {
        let t = Topology::line(n);
        let cal = Calibration::uniform(&t, cx_err, 1e-4, ro_err);
        Device::new("line", t, cal, CrosstalkModel::none())
    }

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn ideal_run_of_deterministic_circuit() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let counts = run_ideal(&c, 100, 7);
        assert_eq!(counts.count(0b11), 100);
        assert_eq!(ideal_outcome(&c), Some(0b11));
    }

    #[test]
    fn bell_has_no_deterministic_outcome() {
        assert_eq!(ideal_outcome(&bell()), None);
    }

    #[test]
    fn noiseless_probabilities_of_bell() {
        let p = noiseless_probabilities(&bell());
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_noise_device_reproduces_ideal() {
        let dev = line_device(2, 0.0, 0.0);
        let mut cfg = ExecutionConfig::default().with_shots(2000).with_seed(5);
        cfg.idle_noise = false;
        let c = {
            let mut c = Circuit::new(2);
            c.x(0).cx(0, 1);
            c
        };
        let counts = run_noisy(&c, &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        assert_eq!(counts.count(0b11), 2000);
    }

    #[test]
    fn gate_noise_reduces_pst() {
        let noisy = line_device(2, 0.10, 0.0);
        let cfg = ExecutionConfig {
            shots: 4000,
            seed: 11,
            gate_noise: true,
            readout_noise: false,
            idle_noise: false,
            ..ExecutionConfig::default()
        };
        let c = {
            let mut c = Circuit::new(2);
            c.x(0).cx(0, 1);
            c
        };
        let counts = run_noisy(&c, &[0, 1], &noisy, &NoiseScaling::uniform(2), &cfg).unwrap();
        let pst = counts.probability(0b11);
        assert!(pst < 0.99, "pst = {pst}");
        assert!(pst > 0.80, "pst = {pst}");
    }

    #[test]
    fn readout_noise_flips_bits() {
        let dev = line_device(1, 0.0, 0.25);
        let cfg = ExecutionConfig {
            shots: 8000,
            seed: 3,
            gate_noise: false,
            readout_noise: true,
            idle_noise: false,
            ..ExecutionConfig::default()
        };
        let c = Circuit::new(1); // |0>
        let counts = run_noisy(&c, &[0], &dev, &NoiseScaling::uniform(0), &cfg).unwrap();
        let frac_one = counts.probability(1);
        assert!((frac_one - 0.25).abs() < 0.03, "frac = {frac_one}");
    }

    #[test]
    fn scaling_amplifies_errors() {
        let dev = line_device(2, 0.05, 0.0);
        let cfg = ExecutionConfig {
            shots: 6000,
            seed: 17,
            gate_noise: true,
            readout_noise: false,
            idle_noise: false,
            ..ExecutionConfig::default()
        };
        let c = {
            let mut c = Circuit::new(2);
            c.x(0);
            for _ in 0..5 {
                c.cx(0, 1).cx(0, 1);
            }
            c.cx(0, 1);
            c
        };
        let plain = run_noisy(
            &c,
            &[0, 1],
            &dev,
            &NoiseScaling::uniform(c.gate_count()),
            &cfg,
        )
        .unwrap()
        .probability(0b11);
        let mut scaled = NoiseScaling::uniform(c.gate_count());
        for i in 0..c.gate_count() {
            scaled.amplify(i, 4.0);
        }
        let worse = run_noisy(&c, &[0, 1], &dev, &scaled, &cfg)
            .unwrap()
            .probability(0b11);
        assert!(
            worse < plain,
            "scaled {worse} should be below plain {plain}"
        );
    }

    #[test]
    fn idle_noise_hurts_staggered_circuits() {
        // A circuit where qubit 1 idles a long time between two CNOTs.
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        for _ in 0..40 {
            c.h(0).h(0);
        }
        c.cx(0, 1);
        let dev = {
            let t = Topology::line(2);
            // Short T1/T2 to make idling visible.
            let cal = Calibration::uniform(&t, 0.0, 0.0, 0.0);
            Device::new("line", t, cal, CrosstalkModel::none())
        };
        let with_idle = ExecutionConfig {
            shots: 2000,
            seed: 23,
            gate_noise: false,
            readout_noise: false,
            idle_noise: true,
            ..ExecutionConfig::default()
        };
        let without_idle = ExecutionConfig {
            idle_noise: false,
            ..with_idle
        };
        let a = run_noisy(
            &c,
            &[0, 1],
            &dev,
            &NoiseScaling::uniform(c.gate_count()),
            &with_idle,
        )
        .unwrap()
        .probability(0b01);
        let b = run_noisy(
            &c,
            &[0, 1],
            &dev,
            &NoiseScaling::uniform(c.gate_count()),
            &without_idle,
        )
        .unwrap()
        .probability(0b01);
        // The target state is |01⟩ (x then two cx cancel); idle noise can
        // only reduce its probability.
        assert!(a <= b + 1e-9, "idle {a} vs no idle {b}");
    }

    #[test]
    fn layout_validation_errors() {
        let dev = line_device(3, 0.01, 0.01);
        let c = bell();
        let cfg = ExecutionConfig::default().with_shots(1);
        // Wrong length.
        let e = run_noisy(&c, &[0], &dev, &NoiseScaling::uniform(2), &cfg).unwrap_err();
        assert!(matches!(e, SimError::LayoutMismatch { .. }));
        // Duplicate physical.
        let e = run_noisy(&c, &[1, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap_err();
        assert!(matches!(e, SimError::LayoutNotInjective { physical: 1 }));
        // Out of range.
        let e = run_noisy(&c, &[0, 9], &dev, &NoiseScaling::uniform(2), &cfg).unwrap_err();
        assert!(matches!(e, SimError::PhysicalOutOfRange { .. }));
        // Uncoupled 2q gate.
        let e = run_noisy(&c, &[0, 2], &dev, &NoiseScaling::uniform(2), &cfg).unwrap_err();
        assert!(matches!(e, SimError::NotCoupled { gate_index: 1, .. }));
    }

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        assert_eq!(derive_shard_seed(42, 3), derive_shard_seed(42, 3));
        let seeds: Vec<u64> = (0..64).map(|s| derive_shard_seed(0x5EED, s)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "shard seeds must not collide");
        // Adjacent base seeds decorrelate through the SplitMix64 mix.
        assert_ne!(derive_shard_seed(1, 0), derive_shard_seed(2, 0));
    }

    #[test]
    fn sharded_counts_independent_of_thread_count() {
        let dev = line_device(3, 0.04, 0.02);
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 1).cx(1, 2);
        let base = ExecutionConfig::default().with_shots(1500).with_seed(31);
        let run_with = |threads: usize| {
            let cfg = base.with_parallelism(ShotParallelism::Sharded { shards: 8, threads });
            run_noisy(&c, &[0, 1, 2], &dev, &NoiseScaling::uniform(3), &cfg).unwrap()
        };
        let reference = run_with(1);
        assert_eq!(reference.shots(), 1500);
        for threads in [2, 4, 8] {
            assert_eq!(run_with(threads), reference, "threads = {threads}");
        }
        // threads = 0 (auto) must obey the same contract.
        assert_eq!(run_with(0), reference);
    }

    #[test]
    fn sharded_counts_depend_on_shard_count_only() {
        let dev = line_device(2, 0.05, 0.02);
        let base = ExecutionConfig::default().with_shots(800).with_seed(5);
        let run_with = |shards: usize, threads: usize| {
            let cfg = base.with_parallelism(ShotParallelism::Sharded { shards, threads });
            run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap()
        };
        assert_eq!(run_with(4, 2), run_with(4, 3));
        // A different shard split is a different (equally valid) sample.
        assert_ne!(run_with(4, 2), run_with(5, 2));
    }

    #[test]
    fn sharded_edge_cases_conserve_shots() {
        let dev = line_device(2, 0.05, 0.02);
        // More shards than shots, zero shards (normalized to one), and
        // an uneven split must all conserve the budget exactly.
        for (shots, shards) in [(10, 64), (5, 0), (1000, 7), (0, 3)] {
            let cfg = ExecutionConfig::default()
                .with_shots(shots)
                .with_seed(2)
                .with_parallelism(ShotParallelism::sharded(shards));
            let counts =
                run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
            assert_eq!(counts.shots(), shots, "shards = {shards}");
            assert_eq!(counts.width(), 2);
        }
    }

    #[test]
    fn oversharded_run_skips_empty_shards_bit_for_bit() {
        // With `shards > shots` only the first `shots` shards carry a
        // shot, seeded `derive_shard_seed(seed, 0..shots)` — exactly
        // the seed streams of a `shards == shots` run. Skipping the
        // empty tail must therefore leave the counts bit-for-bit equal
        // to the exact-shard-count run, however absurd the shard count.
        let dev = line_device(2, 0.05, 0.02);
        let run_with = |shards: usize, threads: usize| {
            let cfg = ExecutionConfig::default()
                .with_shots(3)
                .with_seed(11)
                .with_parallelism(ShotParallelism::Sharded { shards, threads });
            run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap()
        };
        let exact = run_with(3, 1);
        assert_eq!(exact.shots(), 3);
        for shards in [4, 64, 1000] {
            for threads in [1, 4] {
                assert_eq!(run_with(shards, threads), exact, "shards = {shards}");
            }
        }
    }

    #[test]
    fn sharded_noiseless_run_is_exact() {
        // With every noise channel off the sharded engine must still
        // reproduce the deterministic outcome on every shard. (The
        // line-device helper keeps a 1e-4 single-qubit error, so gate
        // noise is switched off wholesale here.)
        let dev = line_device(2, 0.0, 0.0);
        let mut cfg = ExecutionConfig::default()
            .with_shots(999)
            .with_seed(13)
            .with_parallelism(ShotParallelism::Sharded {
                shards: 6,
                threads: 3,
            });
        cfg.idle_noise = false;
        cfg.gate_noise = false;
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let counts = run_noisy(&c, &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        assert_eq!(counts.count(0b11), 999);
    }

    #[test]
    fn shot_parallelism_builders() {
        assert_eq!(
            ShotParallelism::sharded(8),
            ShotParallelism::Sharded {
                shards: 8,
                threads: 0
            }
        );
        assert_eq!(
            ShotParallelism::sharded(8).with_threads(4),
            ShotParallelism::Sharded {
                shards: 8,
                threads: 4
            }
        );
        assert_eq!(
            ShotParallelism::Serial.with_threads(4),
            ShotParallelism::Serial
        );
        assert_eq!(ShotParallelism::default(), ShotParallelism::Serial);
        assert_eq!(
            ExecutionConfig::default().parallelism,
            ShotParallelism::Serial
        );
        assert_eq!(ShotParallelism::Auto.with_threads(4), ShotParallelism::Auto);
    }

    #[test]
    fn auto_shard_count_heuristic_bounds() {
        // One shard per 512 shots, clamped to [1, 32].
        assert_eq!(auto_shard_count(0), 1);
        assert_eq!(auto_shard_count(1), 1);
        assert_eq!(auto_shard_count(511), 1);
        assert_eq!(auto_shard_count(512), 1);
        assert_eq!(auto_shard_count(1024), 2);
        assert_eq!(auto_shard_count(8192), 16);
        assert_eq!(auto_shard_count(1 << 20), AUTO_MAX_SHARDS);
        // Resolution is pure in the shot budget.
        assert_eq!(
            ShotParallelism::Auto.resolve(8192),
            ShotParallelism::Sharded {
                shards: 16,
                threads: 0
            }
        );
        assert_eq!(
            ShotParallelism::Serial.resolve(8192),
            ShotParallelism::Serial
        );
        assert_eq!(
            ShotParallelism::sharded(3).resolve(8192),
            ShotParallelism::sharded(3)
        );
    }

    #[test]
    fn auto_matches_its_resolved_sharded_split_bit_for_bit() {
        let dev = line_device(2, 0.05, 0.02);
        let run_with = |parallelism: ShotParallelism| {
            let cfg = ExecutionConfig::default()
                .with_shots(2048)
                .with_seed(77)
                .with_parallelism(parallelism);
            run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap()
        };
        let auto = run_with(ShotParallelism::Auto);
        assert_eq!(auto.shots(), 2048);
        assert_eq!(
            auto,
            run_with(ShotParallelism::sharded(auto_shard_count(2048))),
            "Auto must equal its resolved explicit split"
        );
        // Thread caps on the resolved split cannot change the counts,
        // so Auto (threads = all cores) is thread-count invariant too.
        assert_eq!(
            auto,
            run_with(ShotParallelism::sharded(auto_shard_count(2048)).with_threads(1))
        );
    }

    #[test]
    fn serial_counts_pinned_bit_for_bit() {
        // Regression pin of the default serial trajectory stream: these
        // exact counts were produced by the pre-sharding loop, and the
        // allocation-free refactor must preserve every RNG draw. If
        // this fails, the serial path's bit-for-bit contract broke.
        let dev = line_device(2, 0.05, 0.02);
        let cfg = ExecutionConfig::default()
            .with_shots(300)
            .with_seed(0xC0FFEE);
        let counts = run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        let pairs: Vec<(usize, usize)> = counts.iter().collect();
        assert_eq!(pairs, vec![(0, 128), (1, 8), (2, 11), (3, 153)]);
    }
    #[test]
    fn runs_are_reproducible() {
        let dev = line_device(2, 0.05, 0.02);
        let cfg = ExecutionConfig::default().with_shots(500);
        let a = run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        let b = run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noise_scaling_accessors() {
        let mut s = NoiseScaling::uniform(3);
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(99), 1.0);
        s.set(1, 2.0);
        s.amplify(1, 3.0);
        assert_eq!(s.factor(1), 6.0);
        assert_eq!(s.max_factor(), 6.0);
    }

    #[test]
    fn execution_inputs_and_outputs_are_send_sync() {
        // The qucp-runtime batch scheduler executes batch programs on
        // scoped threads; everything crossing those threads must stay
        // Send + Sync. A compile-time pin, so a refactor introducing
        // Rc/RefCell into these types fails here rather than in the
        // runtime crate.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionConfig>();
        assert_send_sync::<NoiseScaling>();
        assert_send_sync::<Counts>();
        assert_send_sync::<SimError>();
        assert_send_sync::<Circuit>();
        assert_send_sync::<Device>();
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::NotCoupled {
            gate_index: 4,
            a: 1,
            b: 5,
        };
        assert!(e.to_string().contains("uncoupled"));
        let e = SimError::LayoutMismatch {
            circuit: 2,
            layout: 3,
        };
        assert!(e.to_string().contains("does not match"));
    }
}
