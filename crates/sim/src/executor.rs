//! Noisy Monte-Carlo trajectory execution of mapped circuits.
//!
//! A *job* is a circuit whose qubits are laid out on physical qubits of a
//! device. Each shot walks the ALAP-scheduled event stream: every gate is
//! applied ideally and followed, with the calibrated probability, by a
//! random Pauli error on its operands (stochastic Pauli-twirled
//! depolarizing noise); idle gaps in the schedule inject thermal
//! relaxation/dephasing errors derived from T1/T2; readout flips each
//! measured bit with the qubit's readout error.
//!
//! Two per-shot algorithms sample that model (see [`TrajectoryKernel`]):
//! the historical [`Replay`](TrajectoryKernel::Replay) stream draws one
//! Bernoulli per event, while
//! [`SurvivalSkip`](TrajectoryKernel::SurvivalSkip) jumps straight to
//! the next error event through the plan's prefix survival products and
//! answers clean shots from a per-job [`AliasTable`] in O(1). Both
//! sample the identical distribution; they differ only in which RNG
//! stream realizes it.
//!
//! Crosstalk enters through a per-gate [`NoiseScaling`]: the parallel
//! executor in `qucp-core` inspects the *merged* schedule of all
//! simultaneous programs and scales a CNOT's error probability by the
//! device's γ factor whenever a one-hop neighbour CNOT from another
//! program overlaps it in time. This is exactly the error structure the
//! paper's QuCP/QuMC/CNA policies are designed to avoid.

use std::error::Error;
use std::fmt;

use qucp_circuit::{schedule, Circuit, Gate};
use qucp_device::{Calibration, Device, Link};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alias::AliasTable;
use crate::counts::Counts;
use crate::state::Statevector;

/// How the trajectory loop spreads a job's shots over worker threads.
///
/// ## Determinism contract
///
/// Sharded counts depend only on `(seed, shards)` and the job itself —
/// **never** on `threads`: shard `s` draws every trajectory from its
/// own `StdRng` seeded with [`derive_shard_seed`]`(seed, s)`, and the
/// per-shard counts are merged in shard order after all workers join.
/// Running the same job with 1, 2 or 8 workers is bit-for-bit
/// identical; only wall-clock time changes.
///
/// [`ShotParallelism::Serial`] (the default) is the historical
/// single-stream path and stays bit-for-bit identical to every release
/// before sharding existed. A sharded run — even with one shard — uses
/// the derived shard seeds and therefore samples a *different* (equally
/// valid) set of trajectories than the serial path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShotParallelism {
    /// One sequential RNG stream on the calling thread (the default,
    /// bit-for-bit the pre-sharding behaviour).
    #[default]
    Serial,
    /// Split the shot budget into `shards` deterministic RNG streams
    /// executed by up to `threads` scoped workers.
    Sharded {
        /// Number of independent shard streams (0 is treated as 1).
        /// Fixing `shards` fixes the counts; choose it once per
        /// workload, not per machine.
        shards: usize,
        /// Worker-thread cap (0 = all available cores). Affects only
        /// wall-clock time, never the counts.
        threads: usize,
    },
    /// Adaptive sharding: pick the shard count from the job's shot
    /// budget via [`auto_shard_count`] (one shard per
    /// [`AUTO_SHOTS_PER_SHARD`] shots, at least 1, at most
    /// [`AUTO_MAX_SHARDS`]) and run on all available cores. The counts
    /// stay a pure function of `(seed, shots)` — the shot budget
    /// *determines* the shard split, so two runs of the same job agree
    /// bit-for-bit on any machine, and `Auto` on an `n`-shot job equals
    /// `Sharded { shards: auto_shard_count(n), threads: 0 }` exactly.
    Auto,
}

impl ShotParallelism {
    /// Sharded execution over `shards` streams on all available cores.
    pub fn sharded(shards: usize) -> Self {
        ShotParallelism::Sharded { shards, threads: 0 }
    }

    /// The same shard split with an explicit worker cap. `Serial` and
    /// `Auto` are unaffected: the former has no workers, the latter
    /// always uses all available cores (cap the workers by resolving
    /// the split yourself with [`auto_shard_count`] and `Sharded`).
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        match self {
            ShotParallelism::Serial => ShotParallelism::Serial,
            ShotParallelism::Sharded { shards, .. } => ShotParallelism::Sharded { shards, threads },
            ShotParallelism::Auto => ShotParallelism::Auto,
        }
    }

    /// The concrete mode a job of `shots` runs under: `Auto` resolves
    /// to its budget-derived shard split, everything else is returned
    /// unchanged.
    #[must_use]
    pub fn resolve(self, shots: usize) -> Self {
        match self {
            ShotParallelism::Auto => ShotParallelism::Sharded {
                shards: auto_shard_count(shots),
                threads: 0,
            },
            other => other,
        }
    }
}

/// Shot budget one auto-picked shard covers (see [`auto_shard_count`]).
pub const AUTO_SHOTS_PER_SHARD: usize = 512;

/// Upper bound on auto-picked shard counts (see [`auto_shard_count`]).
pub const AUTO_MAX_SHARDS: usize = 32;

/// The shard count [`ShotParallelism::Auto`] picks for a job of
/// `shots`: `clamp(shots / AUTO_SHOTS_PER_SHARD, 1, AUTO_MAX_SHARDS)`.
///
/// The heuristic keeps every shard busy enough to amortize its scratch
/// setup (at least [`AUTO_SHOTS_PER_SHARD`] = 512 shots per shard, so
/// small jobs run 1 shard ≈ serially) while bounding the split (at most
/// [`AUTO_MAX_SHARDS`] = 32 shards, past which merge overhead and
/// diminishing stream lengths dominate). It deliberately ignores the
/// machine's core count: shards determine the counts, so they must be
/// a pure function of the job, never of the host.
pub fn auto_shard_count(shots: usize) -> usize {
    (shots / AUTO_SHOTS_PER_SHARD).clamp(1, AUTO_MAX_SHARDS)
}

// The workspace's canonical SplitMix64 mixer lives in `qucp-device`
// (`qucp_device::splitmix64`, shared with the drift models' step
// seeds); the shard-seed derivation below builds on it.
use qucp_device::splitmix64;

/// The seed of shard `shard` for a job seeded with `seed`: the
/// `shard + 1`-th output of a SplitMix64 generator whose state starts
/// at `splitmix64(seed)`. Each shard feeds it to
/// `StdRng::seed_from_u64`, giving every shard a statistically
/// independent trajectory stream while keeping the whole job a pure
/// function of `(seed, shards)`.
///
/// The base seed passes through the mix *before* the shard stride is
/// added: callers hand this function seeds that are themselves
/// golden-ratio strides of a common base (the per-program seeds of a
/// batch, `qucp_core::pipeline::derive_program_seed`), and a linear
/// stride over the raw seed would make program `i`'s shard `s` collide
/// with program `i + 1`'s shard `s - 1`. The extra mix breaks that
/// linearity, so co-scheduled sharded programs never share a stream.
pub fn derive_shard_seed(seed: u64, shard: usize) -> u64 {
    splitmix64(splitmix64(seed).wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64)))
}

/// Which per-shot algorithm the trajectory loop runs.
///
/// Both kernels sample the *same* noise model — the distribution of
/// counts is identical — but they advance the RNG differently, so each
/// kernel realizes its own (equally valid) trajectory stream.
///
/// ## Determinism contract
///
/// Each kernel's counts are a pure function of `(seed, shards)` under
/// the [`ShotParallelism`] contract: thread counts never change the
/// result, and a kernel's serial stream is pinned bit-for-bit across
/// releases. Switching kernels — like switching shard counts — selects
/// a different sample of the same distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrajectoryKernel {
    /// The historical stream (the default): one Bernoulli draw per
    /// scheduled event decides whether that event errors, clean shots
    /// sample the cached ideal state through the linear CDF walk.
    /// Bit-for-bit identical to every release before kernels existed.
    #[default]
    Replay,
    /// Survival-skip sampling: one uniform draw plus a binary search
    /// over the plan's prefix survival products jumps directly to the
    /// next error event — O(#errors · log E) RNG work per shot instead
    /// of O(E) — and a shot whose first draw lands past the last event
    /// is clean without touching the stream. Clean shots sample the
    /// per-job [`AliasTable`] in O(1) from a single uniform.
    SurvivalSkip,
}

/// Execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Number of measurement shots.
    pub shots: usize,
    /// RNG seed (trajectories are reproducible given the seed).
    pub seed: u64,
    /// Enable stochastic Pauli noise after gates.
    pub gate_noise: bool,
    /// Enable readout bit flips.
    pub readout_noise: bool,
    /// Enable idle decoherence from schedule gaps.
    pub idle_noise: bool,
    /// Shot-level parallelism (see [`ShotParallelism`] for the
    /// determinism contract). Defaults to the serial path.
    pub parallelism: ShotParallelism,
    /// Per-shot trajectory algorithm (see [`TrajectoryKernel`]).
    /// Defaults to the bit-for-bit historical [`Replay`] stream.
    ///
    /// [`Replay`]: TrajectoryKernel::Replay
    pub kernel: TrajectoryKernel,
}

impl Default for ExecutionConfig {
    /// 8192 shots (the paper's job size), all noise channels enabled,
    /// serial trajectory execution on the [`Replay`] kernel.
    ///
    /// [`Replay`]: TrajectoryKernel::Replay
    fn default() -> Self {
        ExecutionConfig {
            shots: 8192,
            seed: 0x5EED,
            gate_noise: true,
            readout_noise: true,
            idle_noise: true,
            parallelism: ShotParallelism::Serial,
            kernel: TrajectoryKernel::Replay,
        }
    }
}

impl ExecutionConfig {
    /// A config with a different seed (convenience for sweeps).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A config with a different shot count.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// A config with a different shot-parallelism mode.
    pub fn with_parallelism(mut self, parallelism: ShotParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// A config with a different trajectory kernel.
    pub fn with_kernel(mut self, kernel: TrajectoryKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

/// Per-gate multiplicative scaling of error probabilities.
///
/// Index `i` scales the error probability of gate `i` of the circuit.
/// Factors default to 1 beyond the stored length.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseScaling {
    factors: Vec<f64>,
}

impl NoiseScaling {
    /// Unit scaling for a circuit of `len` gates.
    pub fn uniform(len: usize) -> Self {
        NoiseScaling {
            factors: vec![1.0; len],
        }
    }

    /// Builds from explicit factors.
    pub fn from_factors(factors: Vec<f64>) -> Self {
        NoiseScaling { factors }
    }

    /// The factor for gate `i` (1.0 when out of range).
    pub fn factor(&self, i: usize) -> f64 {
        self.factors.get(i).copied().unwrap_or(1.0)
    }

    /// Sets the factor for gate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, factor: f64) {
        self.factors[i] = factor;
    }

    /// Multiplies the factor for gate `i` in place.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn amplify(&mut self, i: usize, factor: f64) {
        self.factors[i] *= factor;
    }

    /// The largest factor present (1.0 for empty scalings).
    pub fn max_factor(&self) -> f64 {
        self.factors.iter().copied().fold(1.0, f64::max)
    }
}

/// Errors produced when a job is inconsistent with the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Layout length does not match the circuit width.
    LayoutMismatch {
        /// Circuit width.
        circuit: usize,
        /// Layout length.
        layout: usize,
    },
    /// The layout maps two qubits to the same physical qubit.
    LayoutNotInjective {
        /// The physical qubit claimed twice.
        physical: usize,
    },
    /// A layout entry exceeds the device size.
    PhysicalOutOfRange {
        /// The offending physical index.
        physical: usize,
        /// Device size.
        device: usize,
    },
    /// A two-qubit gate acts on physical qubits that are not coupled.
    NotCoupled {
        /// Index of the offending gate.
        gate_index: usize,
        /// First physical operand.
        a: usize,
        /// Second physical operand.
        b: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::LayoutMismatch { circuit, layout } => write!(
                f,
                "layout length {layout} does not match circuit width {circuit}"
            ),
            SimError::LayoutNotInjective { physical } => {
                write!(f, "layout maps two qubits onto physical qubit {physical}")
            }
            SimError::PhysicalOutOfRange { physical, device } => {
                write!(
                    f,
                    "physical qubit {physical} out of range for device of {device}"
                )
            }
            SimError::NotCoupled { gate_index, a, b } => write!(
                f,
                "gate {gate_index} acts on uncoupled physical qubits {a} and {b}"
            ),
        }
    }
}

impl Error for SimError {}

/// The identity layout `[0, 1, …, width-1]`.
pub fn trivial_layout(width: usize) -> Vec<usize> {
    (0..width).collect()
}

/// Per-gate durations (ns) of a mapped circuit under the device
/// calibration: one-qubit gates take the calibrated single-qubit time,
/// CNOT/CZ/CP the link's CNOT time, SWAP three CNOTs.
///
/// This is the same duration model [`run_noisy`] uses internally, exposed
/// so that the parallel scheduler in `qucp-core` computes time overlaps
/// consistent with the simulator's ALAP timing.
///
/// # Panics
///
/// Panics if a two-qubit gate does not land on a coupling link.
pub fn gate_durations(circuit: &Circuit, layout: &[usize], device: &Device) -> Vec<f64> {
    let cal = device.calibration();
    circuit
        .gates()
        .iter()
        .map(|g| {
            let qs = g.qubits();
            let qs = qs.as_slice();
            match g {
                Gate::Swap(..) => 3.0 * cal.cx_duration(Link::new(layout[qs[0]], layout[qs[1]])),
                g if g.is_two_qubit() => cal.cx_duration(Link::new(layout[qs[0]], layout[qs[1]])),
                _ => cal.sq_duration(),
            }
        })
        .collect()
}

/// Noiseless output probabilities of a circuit (dense, little-endian).
pub fn noiseless_probabilities(circuit: &Circuit) -> Vec<f64> {
    Statevector::from_circuit(circuit).probabilities()
}

/// The deterministic noiseless outcome of a circuit, if it has one
/// (probability above 0.999).
pub fn ideal_outcome(circuit: &Circuit) -> Option<usize> {
    let (idx, p) = Statevector::from_circuit(circuit).argmax();
    (p > 0.999).then_some(idx)
}

/// Samples `shots` outcomes from the noiseless circuit.
///
/// Sampling goes through a Walker/Vose [`AliasTable`] built once from
/// the final state — O(1) per shot instead of the O(2^n) linear CDF
/// walk — and advances the RNG by exactly one `f64` draw per shot.
pub fn run_ideal(circuit: &Circuit, shots: usize, seed: u64) -> Counts {
    let table = AliasTable::from_statevector(&Statevector::from_circuit(circuit));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = Counts::new(circuit.width());
    for _ in 0..shots {
        counts.record(table.sample_with(&mut rng));
    }
    counts
}

/// One scheduled noise opportunity in the trajectory event stream.
///
/// Shared (crate-internal) with the exact density-matrix evaluator in
/// [`crate::density`], which walks the identical stream so that the two
/// simulation paths implement the *same* noise model.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// Apply gate `index`, then (maybe) its error.
    Gate {
        /// Gate position in the circuit.
        index: usize,
    },
    /// Idle decoherence window on local qubit `q`.
    Idle {
        /// Local qubit that idles.
        q: usize,
        /// Pauli-twirled relaxation probability of the window.
        relax_p: f64,
        /// Pauli-twirled dephasing probability of the window.
        dephase_p: f64,
    },
}

/// The deterministic part of a noisy execution: the time-ordered event
/// stream, the effective (crosstalk-scaled) per-gate error
/// probabilities, and the prefix survival products the
/// [`TrajectoryKernel::SurvivalSkip`] kernel binary-searches.
#[derive(Debug, Clone)]
pub(crate) struct TrajectoryPlan {
    /// `(time, kind, event)` sorted by time with idles before gates.
    pub events: Vec<(f64, u8, Event)>,
    /// Per-gate error probabilities after scaling, capped at 0.75.
    pub error_p: Vec<f64>,
    /// Prefix survival products over the event stream, length
    /// `events.len() + 1`: `survival[k] = Π_{j<k} (1 − p_j)` where
    /// `p_j` is event `j`'s total error probability (the capped gate
    /// error, or an idle window's summed Pauli probability
    /// `relax_p/2 + dephase_p/2`). Non-increasing, starts at 1;
    /// `survival.last()` is the probability a whole shot stays clean.
    pub survival: Vec<f64>,
}

/// The total error probability of one scheduled event: the effective
/// (scaled, capped) gate error, or the summed Pauli-twirl probability
/// `p_x + p_y + p_z = relax_p/2 + dephase_p/2` of an idle window.
fn event_error_p(ev: Event, error_p: &[f64]) -> f64 {
    match ev {
        Event::Gate { index } => error_p[index],
        Event::Idle {
            relax_p, dephase_p, ..
        } => relax_p / 2.0 + dephase_p / 2.0,
    }
}

/// Builds the shared trajectory plan (see [`TrajectoryPlan`]).
pub(crate) fn build_plan(
    circuit: &Circuit,
    layout: &[usize],
    device: &Device,
    scaling: &NoiseScaling,
    tail_idle: &[f64],
    cfg: &ExecutionConfig,
) -> Result<TrajectoryPlan, SimError> {
    validate_layout(circuit, layout, device)?;
    let cal = device.calibration();

    // Durations come from the one shared model (`gate_durations`, also
    // used by the qucp-core overlap scheduler); only the base error
    // probabilities are computed here.
    let durations = gate_durations(circuit, layout, device);
    let mut base_error = Vec::with_capacity(circuit.gate_count());
    for g in circuit.gates() {
        let qs = g.qubits();
        let qs = qs.as_slice();
        match g {
            Gate::Swap(..) => {
                let e = cal.cx_error(Link::new(layout[qs[0]], layout[qs[1]]));
                base_error.push(1.0 - (1.0 - e).powi(3));
            }
            g if g.is_two_qubit() => {
                base_error.push(cal.cx_error(Link::new(layout[qs[0]], layout[qs[1]])));
            }
            _ => {
                base_error.push(cal.sq_error(layout[qs[0]]));
            }
        }
    }

    // ALAP schedule (the paper's policy) and its idle windows.
    let sched = schedule::alap_schedule_with(circuit, |i, _| durations[i]);

    let mut events: Vec<(f64, u8, Event)> = Vec::new();
    for e in sched.entries() {
        events.push((
            e.start,
            1,
            Event::Gate {
                index: e.gate_index,
            },
        ));
    }
    if cfg.idle_noise {
        for (q, windows) in sched.idle_windows(circuit).into_iter().enumerate() {
            let phys = layout[q];
            let t1 = cal.t1(phys);
            let t2 = cal.t2(phys);
            for (a, b) in windows {
                let tau = b - a;
                let relax_p = 1.0 - (-tau / t1).exp();
                let dephase_p = 1.0 - (-tau / t2).exp();
                events.push((
                    b,
                    0,
                    Event::Idle {
                        q,
                        relax_p,
                        dephase_p,
                    },
                ));
            }
        }
        for (q, &tau) in tail_idle.iter().enumerate() {
            if tau > 0.0 && q < circuit.width() {
                let phys = layout[q];
                let relax_p = 1.0 - (-tau / cal.t1(phys)).exp();
                let dephase_p = 1.0 - (-tau / cal.t2(phys)).exp();
                events.push((
                    sched.makespan() + tau,
                    0,
                    Event::Idle {
                        q,
                        relax_p,
                        dephase_p,
                    },
                ));
            }
        }
    }
    events.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));

    // Effective per-gate error probabilities with crosstalk scaling.
    let error_p: Vec<f64> = base_error
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            if cfg.gate_noise {
                (e * scaling.factor(i)).min(0.75)
            } else {
                0.0
            }
        })
        .collect();

    // Prefix survival products for the SurvivalSkip kernel's CDF.
    let mut survival = Vec::with_capacity(events.len() + 1);
    let mut s = 1.0f64;
    survival.push(s);
    for &(_, _, ev) in &events {
        s *= 1.0 - event_error_p(ev, &error_p);
        survival.push(s);
    }
    Ok(TrajectoryPlan {
        events,
        error_p,
        survival,
    })
}

/// Memory gate for [`PrefixSnapshots`]: build them only while the
/// total snapshot storage `(gate_events + 1) · 2^n` stays at or below
/// this many amplitudes (2^21 amps ≈ 32 MiB of `Complex`).
const SNAPSHOT_AMP_LIMIT: usize = 1 << 21;

/// Memory gate for the per-stream single-error outcome cache: enabled
/// only while its worst-case size `events · 16 · 2^n` stays at or
/// below this many table entries.
const SINGLE_ERROR_CACHE_LIMIT: usize = 1 << 22;

/// Ideal prefix states of a job's event stream, built once per job for
/// the [`TrajectoryKernel::SurvivalSkip`] kernel: `states[k]` is the
/// state after the first `k` *gate* events applied ideally, which is
/// exactly the replay state right before any event position whose
/// clean prefix contains `k` gates. Error shots restore the snapshot
/// at their first error event instead of re-simulating the prefix —
/// bit-for-bit the state a from-zero replay would reach, since the
/// same gates are applied in the same order.
#[derive(Debug, Clone)]
pub(crate) struct PrefixSnapshots {
    /// `states[k]`: ideal state after the first `k` gate events.
    states: Vec<Statevector>,
    /// Per event position, the number of gate events strictly before
    /// it — the index into `states` of the state preceding that event.
    gates_before: Vec<u32>,
}

impl PrefixSnapshots {
    /// Builds the snapshots, or `None` when the stream's snapshot
    /// storage would exceed [`SNAPSHOT_AMP_LIMIT`] (replay then starts
    /// from `|0…0⟩` as before — a speed gate, never a behaviour gate).
    fn build(circuit: &Circuit, plan: &TrajectoryPlan) -> Option<Self> {
        let n = circuit.width();
        let gate_events = plan
            .events
            .iter()
            .filter(|(_, _, ev)| matches!(ev, Event::Gate { .. }))
            .count();
        if (gate_events + 1).checked_shl(n as u32)? > SNAPSHOT_AMP_LIMIT {
            return None;
        }
        let mut states = Vec::with_capacity(gate_events + 1);
        let mut gates_before = Vec::with_capacity(plan.events.len());
        let mut sv = Statevector::zero_state(n);
        states.push(sv.clone());
        let mut k = 0u32;
        for &(_, _, ev) in &plan.events {
            gates_before.push(k);
            if let Event::Gate { index } = ev {
                sv.apply(&circuit.gates()[index]);
                states.push(sv.clone());
                k += 1;
            }
        }
        Some(PrefixSnapshots {
            states,
            gates_before,
        })
    }
}

/// The probability that one shot of the mapped job draws *no* gate or
/// idle error — the full survival product `Π (1 − p_e)` over the
/// job's scheduled event stream, i.e. the fraction of trajectories the
/// [`TrajectoryKernel::SurvivalSkip`] kernel answers straight from the
/// cached ideal state without replaying any events. (Readout flips are
/// applied to the sampled outcome either way and do not enter here.)
///
/// # Errors
///
/// Returns a [`SimError`] if the layout is malformed or a two-qubit
/// gate is not executable on the topology.
pub fn clean_shot_probability(
    circuit: &Circuit,
    layout: &[usize],
    device: &Device,
    scaling: &NoiseScaling,
    tail_idle: &[f64],
    cfg: &ExecutionConfig,
) -> Result<f64, SimError> {
    let plan = build_plan(circuit, layout, device, scaling, tail_idle, cfg)?;
    Ok(*plan.survival.last().expect("survival is never empty"))
}

/// Executes a mapped circuit on the device's noise model.
///
/// `layout[q]` gives the physical qubit carrying local qubit `q`; every
/// two-qubit gate must land on a coupling link. `scaling` holds the
/// crosstalk amplification of each gate (see module docs).
///
/// # Errors
///
/// Returns a [`SimError`] if the layout is malformed or a two-qubit gate
/// is not executable on the topology.
pub fn run_noisy(
    circuit: &Circuit,
    layout: &[usize],
    device: &Device,
    scaling: &NoiseScaling,
    cfg: &ExecutionConfig,
) -> Result<Counts, SimError> {
    run_noisy_with_idle(circuit, layout, device, scaling, &[], cfg)
}

/// [`run_noisy`] with additional trailing idle time per local qubit.
///
/// `tail_idle[q]` nanoseconds of extra waiting are appended to qubit `q`
/// before readout (missing entries mean zero). The parallel executor uses
/// this to charge the decoherence cost of gate-level crosstalk
/// *serialization* (the CNA baseline delays conflicting CNOTs, which
/// stretches the schedule).
///
/// # Errors
///
/// Returns a [`SimError`] if the layout is malformed or a two-qubit gate
/// is not executable on the topology.
pub fn run_noisy_with_idle(
    circuit: &Circuit,
    layout: &[usize],
    device: &Device,
    scaling: &NoiseScaling,
    tail_idle: &[f64],
    cfg: &ExecutionConfig,
) -> Result<Counts, SimError> {
    let plan = build_plan(circuit, layout, device, scaling, tail_idle, cfg)?;
    let ideal = Statevector::from_circuit(circuit);
    // The alias table answers SurvivalSkip's clean shots in O(1) and
    // the prefix snapshots let its error shots resume at their first
    // error; the Replay kernel keeps its bit-pinned paths instead.
    let (alias, snapshots) = match cfg.kernel {
        TrajectoryKernel::SurvivalSkip => (
            Some(AliasTable::from_statevector(&ideal)),
            PrefixSnapshots::build(circuit, &plan),
        ),
        TrajectoryKernel::Replay => (None, None),
    };
    // Prefix survival products over the per-qubit readout errors, so
    // SurvivalSkip jumps straight to the next flipped bit instead of
    // drawing one Bernoulli per measured qubit.
    let readout_survival = match cfg.kernel {
        TrajectoryKernel::SurvivalSkip if cfg.readout_noise => {
            let cal = device.calibration();
            let mut surv = Vec::with_capacity(layout.len() + 1);
            let mut s = 1.0f64;
            surv.push(s);
            for &phys in layout {
                s *= 1.0 - cal.readout_error(phys);
                surv.push(s);
            }
            Some(surv)
        }
        _ => None,
    };
    let job = TrajectoryJob {
        circuit,
        layout,
        cal: device.calibration(),
        plan: &plan,
        ideal: &ideal,
        alias: alias.as_ref(),
        snapshots: snapshots.as_ref(),
        readout_survival: readout_survival.as_deref(),
        cfg,
    };
    Ok(match cfg.parallelism.resolve(cfg.shots) {
        ShotParallelism::Serial => job.run_stream(cfg.shots, cfg.seed),
        ShotParallelism::Sharded { shards, threads } => job.run_sharded(shards, threads),
        ShotParallelism::Auto => unreachable!("Auto resolves to Sharded"),
    })
}

/// Everything a trajectory stream shares with every other stream of the
/// same job: the mapped circuit, the pre-built [`TrajectoryPlan`], the
/// cached ideal state and the calibration. Plain shared references —
/// the plan is built **once** per job and read concurrently by every
/// shard worker.
#[derive(Clone, Copy)]
struct TrajectoryJob<'a> {
    circuit: &'a Circuit,
    layout: &'a [usize],
    cal: &'a Calibration,
    plan: &'a TrajectoryPlan,
    ideal: &'a Statevector,
    /// O(1) clean-shot sampler, built once per job for the
    /// SurvivalSkip kernel (`None` under Replay).
    alias: Option<&'a AliasTable>,
    /// Ideal prefix states for first-error replay resumption, built
    /// once per job for the SurvivalSkip kernel (`None` under Replay
    /// or past the snapshot memory gate).
    snapshots: Option<&'a PrefixSnapshots>,
    /// Prefix survival products over the layout's readout errors
    /// (length `width + 1`), `Some` only for the SurvivalSkip kernel
    /// with readout noise on.
    readout_survival: Option<&'a [f64]>,
    cfg: &'a ExecutionConfig,
}

impl TrajectoryJob<'_> {
    /// Runs one sequential stream of `shots` trajectories from `seed`.
    ///
    /// This is the hot loop. All per-shot scratch (the error-pattern
    /// buffers and the replay statevector) lives in a [`ShotScratch`]
    /// allocated once per stream and reused across shots, so steady
    /// state allocates nothing.
    fn run_stream(&self, shots: usize, seed: u64) -> Counts {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = Counts::new(self.circuit.width());
        match self.cfg.kernel {
            TrajectoryKernel::Replay => {
                let mut scratch = ShotScratch::new(self.circuit.width());
                for _ in 0..shots {
                    counts.record(self.run_shot(&mut rng, &mut scratch));
                }
            }
            TrajectoryKernel::SurvivalSkip => {
                let mut scratch = ShotScratch::for_survival(self.circuit.width(), self.plan);
                for _ in 0..shots {
                    counts.record(self.run_shot_survival(&mut rng, &mut scratch));
                }
            }
        }
        counts
    }

    /// One trajectory: pre-draw the error pattern, sample the cached
    /// ideal state when it is empty (the dominant fast path), otherwise
    /// replay the event stream on the scratch state, then flip readout
    /// bits.
    fn run_shot(&self, rng: &mut StdRng, scratch: &mut ShotScratch) -> usize {
        let TrajectoryPlan {
            events, error_p, ..
        } = self.plan;
        let cfg = self.cfg;
        scratch.gate_errors.clear();
        scratch.idle_errors.clear();
        for (pos, &(_, _, ev)) in events.iter().enumerate() {
            match ev {
                Event::Gate { index } => {
                    if cfg.gate_noise && error_p[index] > 0.0 && rng.gen_bool(error_p[index]) {
                        scratch.gate_errors.push(pos);
                    }
                }
                Event::Idle {
                    relax_p, dephase_p, ..
                } => {
                    // Pauli-twirled thermal noise: X/Y each with
                    // p_relax/4, Z with p_dephase/2.
                    let px = relax_p / 4.0;
                    let py = relax_p / 4.0;
                    let pz = dephase_p / 2.0;
                    let u: f64 = rng.gen();
                    if u < px {
                        scratch.idle_errors.push((pos, Pauli::X));
                    } else if u < px + py {
                        scratch.idle_errors.push((pos, Pauli::Y));
                    } else if u < px + py + pz {
                        scratch.idle_errors.push((pos, Pauli::Z));
                    }
                }
            }
        }

        let outcome = if scratch.gate_errors.is_empty() && scratch.idle_errors.is_empty() {
            self.ideal.sample(rng)
        } else {
            self.replay_errors(rng, scratch)
        };
        self.apply_readout(outcome, rng)
    }

    /// One survival-skip trajectory: jump from error to error through
    /// the plan's prefix survival CDF (one uniform + binary search per
    /// error, one final uniform to certify the clean tail), drawing
    /// each error's Pauli type on the spot. Clean shots sample the
    /// per-job alias table in O(1); single-error shots sample a cached
    /// per-`(position, type)` outcome distribution in O(1); only
    /// multi-error shots replay the stream, and they resume from the
    /// prefix snapshot at their first error. Readout bits flip last.
    ///
    /// Same distribution as [`TrajectoryJob::run_shot`], different RNG
    /// stream: the per-event Bernoulli draws collapse into per-error
    /// draws, so the two kernels pin different (equally valid) counts.
    fn run_shot_survival(&self, rng: &mut StdRng, scratch: &mut ShotScratch) -> usize {
        let TrajectoryPlan {
            events, survival, ..
        } = self.plan;
        scratch.typed_errors.clear();
        let tail = *survival.last().expect("survival is never empty");
        let mut from = 0usize;
        while from < events.len() {
            let s_from = survival[from];
            if s_from <= f64::MIN_POSITIVE {
                // The prefix product underflowed: conditional jump
                // probabilities are no longer representable, so finish
                // the stream with per-event Bernoulli draws.
                self.sample_errors_linear(from, rng, scratch);
                break;
            }
            // target is uniform on (0, s_from]; the first error sits at
            // the event whose survival prefix first drops below it:
            // P(error at i) = (survival[i] − survival[i+1]) / s_from,
            // P(no further error) = tail / s_from — exactly the Replay
            // model's conditional distribution given a clean prefix.
            let u: f64 = rng.gen();
            let target = (1.0 - u) * s_from;
            if tail >= target {
                break;
            }
            let pos = from + survival[from + 1..].partition_point(|&s| s >= target);
            let code = match events[pos].2 {
                Event::Gate { index } => self.draw_gate_error_code(index, rng),
                Event::Idle {
                    relax_p, dephase_p, ..
                } => {
                    // Pauli type conditioned on the window erroring:
                    // X/Y each with p_relax/4, Z with p_dephase/2.
                    let px = relax_p / 4.0;
                    let py = relax_p / 4.0;
                    let pz = dephase_p / 2.0;
                    let v: f64 = rng.gen::<f64>() * (px + py + pz);
                    if v < px {
                        1
                    } else if v < px + py {
                        2
                    } else {
                        3
                    }
                }
            };
            scratch.typed_errors.push((pos, code));
            from = pos + 1;
        }

        let outcome = match scratch.typed_errors.len() {
            0 => match self.alias {
                Some(table) => table.sample_with(rng),
                None => self.ideal.sample(rng),
            },
            1 => {
                let (pos, code) = scratch.typed_errors[0];
                self.single_error_outcome(pos, code, rng, scratch)
            }
            _ => self.replay_typed(rng, scratch),
        };
        self.apply_readout_skip(outcome, rng)
    }

    /// Survival-skip readout: jump from flipped bit to flipped bit
    /// through the prefix survival products over the layout's readout
    /// errors — typically one uniform draw per shot instead of one
    /// Bernoulli per measured qubit. Falls back to the per-qubit walk
    /// when the products are unavailable or underflow.
    fn apply_readout_skip(&self, mut measured: usize, rng: &mut StdRng) -> usize {
        if !self.cfg.readout_noise {
            return measured;
        }
        let Some(surv) = self.readout_survival else {
            return self.apply_readout(measured, rng);
        };
        let width = self.layout.len();
        let tail = surv[width];
        let mut from = 0usize;
        while from < width {
            let s_from = surv[from];
            if s_from <= f64::MIN_POSITIVE {
                for (q, &phys) in self.layout.iter().enumerate().skip(from) {
                    if rng.gen_bool(self.cal.readout_error(phys)) {
                        measured ^= 1 << q;
                    }
                }
                break;
            }
            let u: f64 = rng.gen();
            let target = (1.0 - u) * s_from;
            if tail >= target {
                break;
            }
            let q = from + surv[from + 1..].partition_point(|&s| s >= target);
            measured ^= 1 << q;
            from = q + 1;
        }
        measured
    }

    /// Draws the Pauli code of a gate error at gate `index`: uniform
    /// over X/Y/Z for a one-qubit gate, uniform over the 15 non-identity
    /// two-qubit Paulis otherwise — the same conditional distribution
    /// [`apply_gate_error`] realizes, drawn up front so the error is
    /// fully typed before the outcome stage picks its path.
    fn draw_gate_error_code(&self, index: usize, rng: &mut StdRng) -> u8 {
        if self.circuit.gates()[index].is_two_qubit() {
            rng.gen_range(1..16) as u8
        } else {
            pauli_code(random_pauli(rng))
        }
    }

    /// Per-event Bernoulli error sampling over `events[from..]`,
    /// appending typed draws to the scratch error pattern — the Replay
    /// model, used as the SurvivalSkip fallback once the survival
    /// prefix underflows (pathologically long / noisy streams only).
    fn sample_errors_linear(&self, from: usize, rng: &mut StdRng, scratch: &mut ShotScratch) {
        let TrajectoryPlan {
            events, error_p, ..
        } = self.plan;
        for (pos, &(_, _, ev)) in events.iter().enumerate().skip(from) {
            match ev {
                Event::Gate { index } => {
                    if error_p[index] > 0.0 && rng.gen_bool(error_p[index]) {
                        let code = self.draw_gate_error_code(index, rng);
                        scratch.typed_errors.push((pos, code));
                    }
                }
                Event::Idle {
                    relax_p, dephase_p, ..
                } => {
                    let px = relax_p / 4.0;
                    let py = relax_p / 4.0;
                    let pz = dephase_p / 2.0;
                    let u: f64 = rng.gen();
                    if u < px {
                        scratch.typed_errors.push((pos, 1));
                    } else if u < px + py {
                        scratch.typed_errors.push((pos, 2));
                    } else if u < px + py + pz {
                        scratch.typed_errors.push((pos, 3));
                    }
                }
            }
        }
    }

    /// The outcome of a shot whose only error is `code` at event
    /// `pos`, via the per-stream single-error cache: the output
    /// distribution of such a shot is a pure function of `(pos, code)`,
    /// so it is evolved once (deterministically, no RNG) into an alias
    /// table and every later hit samples it with one uniform — O(1),
    /// exactly the RNG advance a replay's final sample would cost.
    fn single_error_outcome(
        &self,
        pos: usize,
        code: u8,
        rng: &mut StdRng,
        scratch: &mut ShotScratch,
    ) -> usize {
        if scratch.single_error_tables.is_empty() {
            // Cache disabled by the memory gate: replay instead.
            return self.replay_typed(rng, scratch);
        }
        let slot = pos * 16 + code as usize;
        if scratch.single_error_tables[slot].is_none() {
            let sv = &mut scratch.state;
            let start = self.load_prefix(sv, pos);
            self.evolve_typed(sv, &[(pos, code)], start);
            scratch.single_error_tables[slot] =
                Some(AliasTable::from_probabilities(&sv.probabilities()));
        }
        scratch.single_error_tables[slot]
            .as_ref()
            .expect("just built")
            .sample_with(rng)
    }

    /// Replays the stream with the shot's pre-typed error pattern,
    /// resuming from the prefix snapshot at the first error, and
    /// samples the resulting state (the one RNG draw of this path).
    fn replay_typed(&self, rng: &mut StdRng, scratch: &mut ShotScratch) -> usize {
        let ShotScratch {
            state,
            typed_errors,
            ..
        } = scratch;
        let first = typed_errors.first().map_or(0, |&(pos, _)| pos);
        let start = self.load_prefix(state, first);
        self.evolve_typed(state, typed_errors, start);
        state.sample(rng)
    }

    /// Loads the replay state preceding event `pos` into `sv` and
    /// returns the event position to resume from: the prefix snapshot
    /// (resume at `pos`) when snapshots exist, `|0…0⟩` (resume at 0)
    /// otherwise.
    fn load_prefix(&self, sv: &mut Statevector, pos: usize) -> usize {
        match self.snapshots {
            Some(snap) => {
                sv.copy_from(&snap.states[snap.gates_before[pos] as usize]);
                pos
            }
            None => {
                sv.reset_zero();
                0
            }
        }
    }

    /// Walks `events[start..]` on `sv`, applying every gate and the
    /// pre-typed errors of `errors` (ascending event positions) at
    /// their events. Consumes no RNG — shared by the multi-error
    /// replay and the deterministic single-error cache build.
    fn evolve_typed(&self, sv: &mut Statevector, errors: &[(usize, u8)], start: usize) {
        let mut pending = errors.iter().peekable();
        for (pos, &(_, _, ev)) in self.plan.events.iter().enumerate().skip(start) {
            match ev {
                Event::Gate { index } => {
                    sv.apply(&self.circuit.gates()[index]);
                    if let Some(&&(epos, code)) = pending.peek() {
                        if epos == pos {
                            pending.next();
                            apply_typed_gate_error(sv, &self.circuit.gates()[index], code);
                        }
                    }
                }
                Event::Idle { q, .. } => {
                    if let Some(&&(epos, code)) = pending.peek() {
                        if epos == pos {
                            pending.next();
                            apply_pauli(sv, q, int_pauli(code as usize));
                        }
                    }
                }
            }
        }
    }

    /// Replays the event stream on the scratch state, injecting the
    /// shot's pre-drawn error pattern, and samples the resulting state.
    /// Shared by both kernels (gate-error Pauli types are drawn here,
    /// in stream order, under both).
    fn replay_errors(&self, rng: &mut StdRng, scratch: &mut ShotScratch) -> usize {
        let TrajectoryPlan { events, .. } = self.plan;
        let sv = &mut scratch.state;
        sv.reset_zero();
        let mut gate_err = scratch.gate_errors.iter().peekable();
        let mut idle_err = scratch.idle_errors.iter().peekable();
        for (pos, &(_, _, ev)) in events.iter().enumerate() {
            match ev {
                Event::Gate { index } => {
                    sv.apply(&self.circuit.gates()[index]);
                    if gate_err.peek() == Some(&&pos) {
                        gate_err.next();
                        apply_gate_error(sv, &self.circuit.gates()[index], rng);
                    }
                }
                Event::Idle { q, .. } => {
                    if let Some(&&(epos, pauli)) = idle_err.peek() {
                        if epos == pos {
                            idle_err.next();
                            apply_pauli(sv, q, pauli);
                        }
                    }
                }
            }
        }
        sv.sample(rng)
    }

    /// Flips each measured bit with its physical qubit's readout error.
    fn apply_readout(&self, mut measured: usize, rng: &mut StdRng) -> usize {
        if self.cfg.readout_noise {
            for (q, &phys) in self.layout.iter().enumerate() {
                if rng.gen_bool(self.cal.readout_error(phys)) {
                    measured ^= 1 << q;
                }
            }
        }
        measured
    }

    /// Sharded execution: the shot budget splits into `shards` streams
    /// (as even as possible, earlier shards take the remainder), shard
    /// `s` is seeded with [`derive_shard_seed`]`(seed, s)`, workers
    /// claim shards off a shared counter, and the per-shard counts
    /// merge **in shard order** — so the result is a pure function of
    /// `(seed, shards)`, independent of `threads` and of scheduling.
    ///
    /// When `shards > shots` the tail shards carry zero shots; they are
    /// skipped outright (no seed stream is built, no worker spins up
    /// for them) — merging an empty shard is a no-op, so the counts
    /// stay bit-for-bit those of the full shard sweep.
    fn run_sharded(&self, shards: usize, threads: usize) -> Counts {
        let shards = shards.max(1);
        let shots = self.cfg.shots;
        let (base, rem) = (shots / shards, shots % shards);
        let shard_shots = |s: usize| base + usize::from(s < rem);
        // Every shard past `active` is empty (base == 0 means only the
        // first `rem` shards got the remainder shot).
        let active = if base == 0 { rem } else { shards };

        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        let threads = threads.min(active).max(1);

        let mut partials: Vec<(usize, Counts)> = if threads == 1 {
            (0..active)
                .map(|s| {
                    (
                        s,
                        self.run_stream(shard_shots(s), derive_shard_seed(self.cfg.seed, s)),
                    )
                })
                .collect()
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut done: Vec<(usize, Counts)> = Vec::new();
                            loop {
                                let s = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if s >= active {
                                    break done;
                                }
                                done.push((
                                    s,
                                    self.run_stream(
                                        shard_shots(s),
                                        derive_shard_seed(self.cfg.seed, s),
                                    ),
                                ));
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            })
        };
        partials.sort_unstable_by_key(|&(s, _)| s);
        let mut counts = Counts::new(self.circuit.width());
        for (_, partial) in &partials {
            counts.merge(partial);
        }
        counts
    }
}

/// Reusable per-stream scratch of the trajectory hot loop.
struct ShotScratch {
    /// Event positions whose gate draws an error this shot (Replay).
    gate_errors: Vec<usize>,
    /// Event positions whose idle window draws a Pauli this shot
    /// (Replay).
    idle_errors: Vec<(usize, Pauli)>,
    /// `(event position, Pauli code)` error pattern of the shot, in
    /// ascending position order (SurvivalSkip; codes are 1–15
    /// two-qubit indices for two-qubit gates, 1–3 X/Y/Z otherwise).
    typed_errors: Vec<(usize, u8)>,
    /// Replay statevector for shots that drew at least one error.
    state: Statevector,
    /// Lazily built single-error outcome distributions, indexed by
    /// `position · 16 + code` (SurvivalSkip; empty when the memory
    /// gate disabled the cache). Each table is a pure function of the
    /// job, so per-stream rebuilding can never change a count.
    single_error_tables: Vec<Option<AliasTable>>,
}

impl ShotScratch {
    fn new(width: usize) -> Self {
        ShotScratch {
            gate_errors: Vec::new(),
            idle_errors: Vec::new(),
            typed_errors: Vec::new(),
            state: Statevector::zero_state(width),
            single_error_tables: Vec::new(),
        }
    }

    /// Scratch for a SurvivalSkip stream: same buffers plus the
    /// single-error cache, sized `events · 16` slots unless the
    /// worst-case table storage would exceed
    /// [`SINGLE_ERROR_CACHE_LIMIT`] entries (then disabled).
    fn for_survival(width: usize, plan: &TrajectoryPlan) -> Self {
        let mut scratch = ShotScratch::new(width);
        let slots = plan.events.len() * 16;
        if slots
            .checked_shl(width as u32)
            .is_some_and(|n| n <= SINGLE_ERROR_CACHE_LIMIT)
        {
            scratch.single_error_tables = vec![None; slots];
        }
        scratch
    }
}

fn validate_layout(circuit: &Circuit, layout: &[usize], device: &Device) -> Result<(), SimError> {
    if layout.len() != circuit.width() {
        return Err(SimError::LayoutMismatch {
            circuit: circuit.width(),
            layout: layout.len(),
        });
    }
    let n = device.num_qubits();
    let mut seen = vec![false; n];
    for &p in layout {
        if p >= n {
            return Err(SimError::PhysicalOutOfRange {
                physical: p,
                device: n,
            });
        }
        if seen[p] {
            return Err(SimError::LayoutNotInjective { physical: p });
        }
        seen[p] = true;
    }
    for (i, g) in circuit.gates().iter().enumerate() {
        if g.is_two_qubit() {
            let qs = g.qubits();
            let qs = qs.as_slice();
            let (a, b) = (layout[qs[0]], layout[qs[1]]);
            if !device.topology().has_link(a, b) {
                return Err(SimError::NotCoupled {
                    gate_index: i,
                    a,
                    b,
                });
            }
        }
    }
    Ok(())
}

/// A single-qubit Pauli error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pauli {
    X,
    Y,
    Z,
}

fn random_pauli(rng: &mut impl Rng) -> Pauli {
    match rng.gen_range(0..3) {
        0 => Pauli::X,
        1 => Pauli::Y,
        _ => Pauli::Z,
    }
}

fn apply_pauli(sv: &mut Statevector, q: usize, pauli: Pauli) {
    let gate = match pauli {
        Pauli::X => Gate::X(q),
        Pauli::Y => Gate::Y(q),
        Pauli::Z => Gate::Z(q),
    };
    sv.apply(&gate);
}

/// Applies a depolarizing-style error after `gate`: a uniformly random
/// non-identity Pauli on a one-qubit gate's operand, or a uniformly
/// random non-identity two-qubit Pauli on both operands.
fn apply_gate_error(sv: &mut Statevector, gate: &Gate, rng: &mut impl Rng) {
    let qs = gate.qubits();
    let qs = qs.as_slice();
    if qs.len() == 1 {
        apply_pauli(sv, qs[0], random_pauli(rng));
    } else {
        // Uniform over the 15 non-identity two-qubit Paulis.
        let k = rng.gen_range(1..16);
        let (a, b) = (k / 4, k % 4);
        if a > 0 {
            apply_pauli(sv, qs[0], int_pauli(a));
        }
        if b > 0 {
            apply_pauli(sv, qs[1], int_pauli(b));
        }
    }
}

fn int_pauli(i: usize) -> Pauli {
    match i {
        1 => Pauli::X,
        2 => Pauli::Y,
        _ => Pauli::Z,
    }
}

/// The 1–3 code of a single-qubit Pauli (inverse of [`int_pauli`]).
fn pauli_code(p: Pauli) -> u8 {
    match p {
        Pauli::X => 1,
        Pauli::Y => 2,
        Pauli::Z => 3,
    }
}

/// Applies a pre-typed gate error: `code` is a 1–3 X/Y/Z index for a
/// one-qubit gate, or a 1–15 two-qubit Pauli index (base-4 digit pair,
/// identity-identity excluded) for a two-qubit gate — the same error
/// algebra as [`apply_gate_error`], with the type drawn by the caller.
fn apply_typed_gate_error(sv: &mut Statevector, gate: &Gate, code: u8) {
    let qs = gate.qubits();
    let qs = qs.as_slice();
    if qs.len() == 1 {
        apply_pauli(sv, qs[0], int_pauli(code as usize));
    } else {
        let (a, b) = ((code / 4) as usize, (code % 4) as usize);
        if a > 0 {
            apply_pauli(sv, qs[0], int_pauli(a));
        }
        if b > 0 {
            apply_pauli(sv, qs[1], int_pauli(b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::{Calibration, CrosstalkModel, Topology};

    fn line_device(n: usize, cx_err: f64, ro_err: f64) -> Device {
        let t = Topology::line(n);
        let cal = Calibration::uniform(&t, cx_err, 1e-4, ro_err);
        Device::new("line", t, cal, CrosstalkModel::none())
    }

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn ideal_run_of_deterministic_circuit() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let counts = run_ideal(&c, 100, 7);
        assert_eq!(counts.count(0b11), 100);
        assert_eq!(ideal_outcome(&c), Some(0b11));
    }

    #[test]
    fn bell_has_no_deterministic_outcome() {
        assert_eq!(ideal_outcome(&bell()), None);
    }

    #[test]
    fn noiseless_probabilities_of_bell() {
        let p = noiseless_probabilities(&bell());
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_noise_device_reproduces_ideal() {
        let dev = line_device(2, 0.0, 0.0);
        let mut cfg = ExecutionConfig::default().with_shots(2000).with_seed(5);
        cfg.idle_noise = false;
        let c = {
            let mut c = Circuit::new(2);
            c.x(0).cx(0, 1);
            c
        };
        let counts = run_noisy(&c, &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        assert_eq!(counts.count(0b11), 2000);
    }

    #[test]
    fn gate_noise_reduces_pst() {
        let noisy = line_device(2, 0.10, 0.0);
        let cfg = ExecutionConfig {
            shots: 4000,
            seed: 11,
            gate_noise: true,
            readout_noise: false,
            idle_noise: false,
            ..ExecutionConfig::default()
        };
        let c = {
            let mut c = Circuit::new(2);
            c.x(0).cx(0, 1);
            c
        };
        let counts = run_noisy(&c, &[0, 1], &noisy, &NoiseScaling::uniform(2), &cfg).unwrap();
        let pst = counts.probability(0b11);
        assert!(pst < 0.99, "pst = {pst}");
        assert!(pst > 0.80, "pst = {pst}");
    }

    #[test]
    fn readout_noise_flips_bits() {
        let dev = line_device(1, 0.0, 0.25);
        let cfg = ExecutionConfig {
            shots: 8000,
            seed: 3,
            gate_noise: false,
            readout_noise: true,
            idle_noise: false,
            ..ExecutionConfig::default()
        };
        let c = Circuit::new(1); // |0>
        let counts = run_noisy(&c, &[0], &dev, &NoiseScaling::uniform(0), &cfg).unwrap();
        let frac_one = counts.probability(1);
        assert!((frac_one - 0.25).abs() < 0.03, "frac = {frac_one}");
    }

    #[test]
    fn scaling_amplifies_errors() {
        let dev = line_device(2, 0.05, 0.0);
        let cfg = ExecutionConfig {
            shots: 6000,
            seed: 17,
            gate_noise: true,
            readout_noise: false,
            idle_noise: false,
            ..ExecutionConfig::default()
        };
        let c = {
            let mut c = Circuit::new(2);
            c.x(0);
            for _ in 0..5 {
                c.cx(0, 1).cx(0, 1);
            }
            c.cx(0, 1);
            c
        };
        let plain = run_noisy(
            &c,
            &[0, 1],
            &dev,
            &NoiseScaling::uniform(c.gate_count()),
            &cfg,
        )
        .unwrap()
        .probability(0b11);
        let mut scaled = NoiseScaling::uniform(c.gate_count());
        for i in 0..c.gate_count() {
            scaled.amplify(i, 4.0);
        }
        let worse = run_noisy(&c, &[0, 1], &dev, &scaled, &cfg)
            .unwrap()
            .probability(0b11);
        assert!(
            worse < plain,
            "scaled {worse} should be below plain {plain}"
        );
    }

    #[test]
    fn idle_noise_hurts_staggered_circuits() {
        // A circuit where qubit 1 idles a long time between two CNOTs.
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        for _ in 0..40 {
            c.h(0).h(0);
        }
        c.cx(0, 1);
        let dev = {
            let t = Topology::line(2);
            // Short T1/T2 to make idling visible.
            let cal = Calibration::uniform(&t, 0.0, 0.0, 0.0);
            Device::new("line", t, cal, CrosstalkModel::none())
        };
        let with_idle = ExecutionConfig {
            shots: 2000,
            seed: 23,
            gate_noise: false,
            readout_noise: false,
            idle_noise: true,
            ..ExecutionConfig::default()
        };
        let without_idle = ExecutionConfig {
            idle_noise: false,
            ..with_idle
        };
        let a = run_noisy(
            &c,
            &[0, 1],
            &dev,
            &NoiseScaling::uniform(c.gate_count()),
            &with_idle,
        )
        .unwrap()
        .probability(0b01);
        let b = run_noisy(
            &c,
            &[0, 1],
            &dev,
            &NoiseScaling::uniform(c.gate_count()),
            &without_idle,
        )
        .unwrap()
        .probability(0b01);
        // The target state is |01⟩ (x then two cx cancel); idle noise can
        // only reduce its probability.
        assert!(a <= b + 1e-9, "idle {a} vs no idle {b}");
    }

    #[test]
    fn layout_validation_errors() {
        let dev = line_device(3, 0.01, 0.01);
        let c = bell();
        let cfg = ExecutionConfig::default().with_shots(1);
        // Wrong length.
        let e = run_noisy(&c, &[0], &dev, &NoiseScaling::uniform(2), &cfg).unwrap_err();
        assert!(matches!(e, SimError::LayoutMismatch { .. }));
        // Duplicate physical.
        let e = run_noisy(&c, &[1, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap_err();
        assert!(matches!(e, SimError::LayoutNotInjective { physical: 1 }));
        // Out of range.
        let e = run_noisy(&c, &[0, 9], &dev, &NoiseScaling::uniform(2), &cfg).unwrap_err();
        assert!(matches!(e, SimError::PhysicalOutOfRange { .. }));
        // Uncoupled 2q gate.
        let e = run_noisy(&c, &[0, 2], &dev, &NoiseScaling::uniform(2), &cfg).unwrap_err();
        assert!(matches!(e, SimError::NotCoupled { gate_index: 1, .. }));
    }

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        assert_eq!(derive_shard_seed(42, 3), derive_shard_seed(42, 3));
        let seeds: Vec<u64> = (0..64).map(|s| derive_shard_seed(0x5EED, s)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "shard seeds must not collide");
        // Adjacent base seeds decorrelate through the SplitMix64 mix.
        assert_ne!(derive_shard_seed(1, 0), derive_shard_seed(2, 0));
    }

    #[test]
    fn sharded_counts_independent_of_thread_count() {
        let dev = line_device(3, 0.04, 0.02);
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 1).cx(1, 2);
        let base = ExecutionConfig::default().with_shots(1500).with_seed(31);
        let run_with = |threads: usize| {
            let cfg = base.with_parallelism(ShotParallelism::Sharded { shards: 8, threads });
            run_noisy(&c, &[0, 1, 2], &dev, &NoiseScaling::uniform(3), &cfg).unwrap()
        };
        let reference = run_with(1);
        assert_eq!(reference.shots(), 1500);
        for threads in [2, 4, 8] {
            assert_eq!(run_with(threads), reference, "threads = {threads}");
        }
        // threads = 0 (auto) must obey the same contract.
        assert_eq!(run_with(0), reference);
    }

    #[test]
    fn sharded_counts_depend_on_shard_count_only() {
        let dev = line_device(2, 0.05, 0.02);
        let base = ExecutionConfig::default().with_shots(800).with_seed(5);
        let run_with = |shards: usize, threads: usize| {
            let cfg = base.with_parallelism(ShotParallelism::Sharded { shards, threads });
            run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap()
        };
        assert_eq!(run_with(4, 2), run_with(4, 3));
        // A different shard split is a different (equally valid) sample.
        assert_ne!(run_with(4, 2), run_with(5, 2));
    }

    #[test]
    fn sharded_edge_cases_conserve_shots() {
        let dev = line_device(2, 0.05, 0.02);
        // More shards than shots, zero shards (normalized to one), and
        // an uneven split must all conserve the budget exactly.
        for (shots, shards) in [(10, 64), (5, 0), (1000, 7), (0, 3)] {
            let cfg = ExecutionConfig::default()
                .with_shots(shots)
                .with_seed(2)
                .with_parallelism(ShotParallelism::sharded(shards));
            let counts =
                run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
            assert_eq!(counts.shots(), shots, "shards = {shards}");
            assert_eq!(counts.width(), 2);
        }
    }

    #[test]
    fn oversharded_run_skips_empty_shards_bit_for_bit() {
        // With `shards > shots` only the first `shots` shards carry a
        // shot, seeded `derive_shard_seed(seed, 0..shots)` — exactly
        // the seed streams of a `shards == shots` run. Skipping the
        // empty tail must therefore leave the counts bit-for-bit equal
        // to the exact-shard-count run, however absurd the shard count.
        let dev = line_device(2, 0.05, 0.02);
        let run_with = |shards: usize, threads: usize| {
            let cfg = ExecutionConfig::default()
                .with_shots(3)
                .with_seed(11)
                .with_parallelism(ShotParallelism::Sharded { shards, threads });
            run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap()
        };
        let exact = run_with(3, 1);
        assert_eq!(exact.shots(), 3);
        for shards in [4, 64, 1000] {
            for threads in [1, 4] {
                assert_eq!(run_with(shards, threads), exact, "shards = {shards}");
            }
        }
    }

    #[test]
    fn sharded_noiseless_run_is_exact() {
        // With every noise channel off the sharded engine must still
        // reproduce the deterministic outcome on every shard. (The
        // line-device helper keeps a 1e-4 single-qubit error, so gate
        // noise is switched off wholesale here.)
        let dev = line_device(2, 0.0, 0.0);
        let mut cfg = ExecutionConfig::default()
            .with_shots(999)
            .with_seed(13)
            .with_parallelism(ShotParallelism::Sharded {
                shards: 6,
                threads: 3,
            });
        cfg.idle_noise = false;
        cfg.gate_noise = false;
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let counts = run_noisy(&c, &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        assert_eq!(counts.count(0b11), 999);
    }

    #[test]
    fn shot_parallelism_builders() {
        assert_eq!(
            ShotParallelism::sharded(8),
            ShotParallelism::Sharded {
                shards: 8,
                threads: 0
            }
        );
        assert_eq!(
            ShotParallelism::sharded(8).with_threads(4),
            ShotParallelism::Sharded {
                shards: 8,
                threads: 4
            }
        );
        assert_eq!(
            ShotParallelism::Serial.with_threads(4),
            ShotParallelism::Serial
        );
        assert_eq!(ShotParallelism::default(), ShotParallelism::Serial);
        assert_eq!(
            ExecutionConfig::default().parallelism,
            ShotParallelism::Serial
        );
        assert_eq!(ShotParallelism::Auto.with_threads(4), ShotParallelism::Auto);
    }

    #[test]
    fn auto_shard_count_heuristic_bounds() {
        // One shard per 512 shots, clamped to [1, 32].
        assert_eq!(auto_shard_count(0), 1);
        assert_eq!(auto_shard_count(1), 1);
        assert_eq!(auto_shard_count(511), 1);
        assert_eq!(auto_shard_count(512), 1);
        assert_eq!(auto_shard_count(1024), 2);
        assert_eq!(auto_shard_count(8192), 16);
        assert_eq!(auto_shard_count(1 << 20), AUTO_MAX_SHARDS);
        // Resolution is pure in the shot budget.
        assert_eq!(
            ShotParallelism::Auto.resolve(8192),
            ShotParallelism::Sharded {
                shards: 16,
                threads: 0
            }
        );
        assert_eq!(
            ShotParallelism::Serial.resolve(8192),
            ShotParallelism::Serial
        );
        assert_eq!(
            ShotParallelism::sharded(3).resolve(8192),
            ShotParallelism::sharded(3)
        );
    }

    #[test]
    fn auto_matches_its_resolved_sharded_split_bit_for_bit() {
        let dev = line_device(2, 0.05, 0.02);
        let run_with = |parallelism: ShotParallelism| {
            let cfg = ExecutionConfig::default()
                .with_shots(2048)
                .with_seed(77)
                .with_parallelism(parallelism);
            run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap()
        };
        let auto = run_with(ShotParallelism::Auto);
        assert_eq!(auto.shots(), 2048);
        assert_eq!(
            auto,
            run_with(ShotParallelism::sharded(auto_shard_count(2048))),
            "Auto must equal its resolved explicit split"
        );
        // Thread caps on the resolved split cannot change the counts,
        // so Auto (threads = all cores) is thread-count invariant too.
        assert_eq!(
            auto,
            run_with(ShotParallelism::sharded(auto_shard_count(2048)).with_threads(1))
        );
    }

    #[test]
    fn serial_counts_pinned_bit_for_bit() {
        // Regression pin of the default serial trajectory stream: these
        // exact counts were produced by the pre-sharding loop, and the
        // allocation-free refactor must preserve every RNG draw. If
        // this fails, the serial path's bit-for-bit contract broke.
        let dev = line_device(2, 0.05, 0.02);
        let cfg = ExecutionConfig::default()
            .with_shots(300)
            .with_seed(0xC0FFEE);
        let counts = run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        let pairs: Vec<(usize, usize)> = counts.iter().collect();
        assert_eq!(pairs, vec![(0, 128), (1, 8), (2, 11), (3, 153)]);
    }
    #[test]
    fn survival_skip_counts_pinned_bit_for_bit() {
        // Regression pin of the SurvivalSkip serial stream on the same
        // fixture as `serial_counts_pinned_bit_for_bit`: the kernel's
        // RNG choreography (skip draw, type draw, outcome draw,
        // readout-skip draw) is part of its determinism contract, so
        // any change to the draw order shows up here.
        let dev = line_device(2, 0.05, 0.02);
        let cfg = ExecutionConfig::default()
            .with_shots(300)
            .with_seed(0xC0FFEE)
            .with_kernel(TrajectoryKernel::SurvivalSkip);
        let counts = run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        let pairs: Vec<(usize, usize)> = counts.iter().collect();
        assert_eq!(pairs, vec![(0, 124), (1, 11), (2, 11), (3, 154)]);
    }

    #[test]
    fn survival_skip_counts_independent_of_thread_count() {
        // The (seed, shards) purity contract holds per kernel: the
        // SurvivalSkip sharded counts may not depend on the worker
        // count at 1/2/4/8 workers (or auto).
        let dev = line_device(3, 0.04, 0.02);
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 1).cx(1, 2);
        let base = ExecutionConfig::default()
            .with_shots(1500)
            .with_seed(31)
            .with_kernel(TrajectoryKernel::SurvivalSkip);
        let run_with = |threads: usize| {
            let cfg = base.with_parallelism(ShotParallelism::Sharded { shards: 8, threads });
            run_noisy(&c, &[0, 1, 2], &dev, &NoiseScaling::uniform(3), &cfg).unwrap()
        };
        let reference = run_with(1);
        assert_eq!(reference.shots(), 1500);
        for threads in [2, 4, 8, 0] {
            assert_eq!(run_with(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn survival_skip_oversharded_run_skips_empty_shards_bit_for_bit() {
        // The empty-tail-shard skip must stay bit-for-bit under the
        // SurvivalSkip kernel too (shards > shots edge case).
        let dev = line_device(2, 0.05, 0.02);
        let run_with = |shards: usize, threads: usize| {
            let cfg = ExecutionConfig::default()
                .with_shots(3)
                .with_seed(11)
                .with_kernel(TrajectoryKernel::SurvivalSkip)
                .with_parallelism(ShotParallelism::Sharded { shards, threads });
            run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap()
        };
        let exact = run_with(3, 1);
        assert_eq!(exact.shots(), 3);
        for shards in [4, 64, 1000] {
            for threads in [1, 4] {
                assert_eq!(run_with(shards, threads), exact, "shards = {shards}");
            }
        }
    }

    #[test]
    fn survival_skip_zero_noise_plan_is_all_clean() {
        // With every trajectory noise channel off the survival product
        // is exactly 1: every shot takes the clean fast path and the
        // deterministic outcome must be reproduced exactly.
        let dev = line_device(2, 0.0, 0.0);
        let mut cfg = ExecutionConfig::default()
            .with_shots(999)
            .with_seed(13)
            .with_kernel(TrajectoryKernel::SurvivalSkip);
        cfg.gate_noise = false;
        cfg.idle_noise = false;
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let clean = clean_shot_probability(&c, &[0, 1], &dev, &NoiseScaling::uniform(2), &[], &cfg)
            .unwrap();
        assert_eq!(clean, 1.0);
        let counts = run_noisy(&c, &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        assert_eq!(counts.count(0b11), 999);
    }

    #[test]
    fn survival_skip_honours_error_probability_cap() {
        // An absurd crosstalk scaling saturates at the 0.75 cap; the
        // survival product then is exactly 0.25 per capped gate, and
        // the kernel still conserves the shot budget.
        let dev = line_device(2, 0.3, 0.0);
        let mut cfg = ExecutionConfig::default()
            .with_shots(400)
            .with_seed(7)
            .with_kernel(TrajectoryKernel::SurvivalSkip);
        cfg.idle_noise = false;
        cfg.readout_noise = false;
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let mut scaling = NoiseScaling::uniform(2);
        scaling.amplify(0, 1e9);
        scaling.amplify(1, 1e9);
        let clean = clean_shot_probability(&c, &[0, 1], &dev, &scaling, &[], &cfg).unwrap();
        assert_eq!(clean, 0.25 * 0.25, "both gates capped at 0.75");
        let counts = run_noisy(&c, &[0, 1], &dev, &scaling, &cfg).unwrap();
        assert_eq!(counts.shots(), 400);
        // At ~94% error shots the identity circuit cannot stay pure.
        assert!(counts.probability(0b00) < 0.9);
    }

    #[test]
    fn survival_skip_empty_circuit() {
        // No gates, no events: every shot is clean, only readout noise
        // can act. With readout off the outcome is always |00⟩.
        let dev = line_device(2, 0.05, 0.0);
        let mut cfg = ExecutionConfig::default()
            .with_shots(256)
            .with_seed(3)
            .with_kernel(TrajectoryKernel::SurvivalSkip);
        cfg.readout_noise = false;
        let c = Circuit::new(2);
        let counts = run_noisy(&c, &[0, 1], &dev, &NoiseScaling::uniform(0), &cfg).unwrap();
        assert_eq!(counts.count(0b00), 256);
    }

    #[test]
    fn survival_skip_matches_replay_statistically_on_bell() {
        // The two kernels realize the same distribution through
        // different RNG streams; on a well-populated fixture the modal
        // probabilities must agree within sampling tolerance.
        let dev = line_device(2, 0.05, 0.02);
        let base = ExecutionConfig::default().with_shots(6000).with_seed(42);
        let replay = run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &base).unwrap();
        let survival = run_noisy(
            &bell(),
            &[0, 1],
            &dev,
            &NoiseScaling::uniform(2),
            &base.with_kernel(TrajectoryKernel::SurvivalSkip),
        )
        .unwrap();
        for outcome in 0..4 {
            let (a, b) = (replay.probability(outcome), survival.probability(outcome));
            assert!((a - b).abs() < 0.03, "outcome {outcome}: {a} vs {b}");
        }
    }

    #[test]
    fn clean_shot_probability_bounds_and_layout_errors() {
        let dev = line_device(2, 0.05, 0.02);
        let cfg = ExecutionConfig::default();
        let p =
            clean_shot_probability(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &[], &cfg)
                .unwrap();
        assert!((0.0..1.0).contains(&p), "noisy bell clean prob {p}");
        // Layout validation flows through unchanged.
        let e = clean_shot_probability(&bell(), &[0], &dev, &NoiseScaling::uniform(2), &[], &cfg)
            .unwrap_err();
        assert!(matches!(e, SimError::LayoutMismatch { .. }));
    }

    #[test]
    fn kernel_builders_and_default() {
        assert_eq!(TrajectoryKernel::default(), TrajectoryKernel::Replay);
        assert_eq!(ExecutionConfig::default().kernel, TrajectoryKernel::Replay);
        assert_eq!(
            ExecutionConfig::default()
                .with_kernel(TrajectoryKernel::SurvivalSkip)
                .kernel,
            TrajectoryKernel::SurvivalSkip
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let dev = line_device(2, 0.05, 0.02);
        let cfg = ExecutionConfig::default().with_shots(500);
        let a = run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        let b = run_noisy(&bell(), &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noise_scaling_accessors() {
        let mut s = NoiseScaling::uniform(3);
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(99), 1.0);
        s.set(1, 2.0);
        s.amplify(1, 3.0);
        assert_eq!(s.factor(1), 6.0);
        assert_eq!(s.max_factor(), 6.0);
    }

    #[test]
    fn execution_inputs_and_outputs_are_send_sync() {
        // The qucp-runtime batch scheduler executes batch programs on
        // scoped threads; everything crossing those threads must stay
        // Send + Sync. A compile-time pin, so a refactor introducing
        // Rc/RefCell into these types fails here rather than in the
        // runtime crate.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionConfig>();
        assert_send_sync::<NoiseScaling>();
        assert_send_sync::<Counts>();
        assert_send_sync::<SimError>();
        assert_send_sync::<Circuit>();
        assert_send_sync::<Device>();
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::NotCoupled {
            gate_index: 4,
            a: 1,
            b: 5,
        };
        assert!(e.to_string().contains("uncoupled"));
        let e = SimError::LayoutMismatch {
            circuit: 2,
            layout: 3,
        };
        assert!(e.to_string().contains("does not match"));
    }
}
