//! O(1) outcome sampling via Walker/Vose alias tables.
//!
//! [`Statevector::sample`](crate::Statevector::sample) walks the dense
//! probability CDF linearly — O(2^n) per shot. That walk is pinned
//! bit-for-bit by every tuned-seed test, so it cannot change; but the
//! paths that are *not* bit-pinned to it (the [`SurvivalSkip`] clean-shot
//! fast path and [`run_ideal`]) sample the same cached distribution
//! thousands of times per job, and for those an [`AliasTable`] built
//! once per job answers each draw in constant time.
//!
//! One `f64` uniform per sample: the draw is split into a bucket index
//! (the integer part of `u · n`) and an intra-bucket coin (the
//! fractional part), so RNG-draw counts stay auditable — exactly one
//! stream advance per outcome, same as the linear walk it replaces.
//!
//! [`SurvivalSkip`]: crate::TrajectoryKernel::SurvivalSkip
//! [`run_ideal`]: crate::run_ideal

use rand::Rng;

use crate::state::Statevector;

/// A Walker/Vose alias table over a finite outcome distribution.
///
/// Construction is O(n) and deterministic (index-ordered worklists, no
/// RNG, no float comparators beyond the `< 1.0` bucket classification),
/// sampling is O(1). Outcomes with exactly zero probability are never
/// returned.
///
/// ```
/// use qucp_sim::AliasTable;
///
/// let table = AliasTable::from_probabilities(&[0.0, 1.0]);
/// // A certain outcome is returned for every uniform draw.
/// assert_eq!(table.sample(0.0), 1);
/// assert_eq!(table.sample(0.9999), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Per-bucket acceptance threshold for the intra-bucket coin.
    prob: Vec<f64>,
    /// Per-bucket alternative outcome when the coin rejects.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from outcome weights (need not be normalized).
    ///
    /// Degenerate inputs — an all-zero, NaN-summing or infinite-summing
    /// weight vector — fall back to the uniform distribution rather
    /// than producing a table that can never accept.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty (there is no outcome to sample).
    pub fn from_probabilities(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        let total: f64 = weights.iter().sum();
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        if total > 0.0 && total.is_finite() {
            let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
            // Index-ordered worklists keep the construction a pure
            // function of the input.
            let mut small: Vec<u32> = Vec::new();
            let mut large: Vec<u32> = Vec::new();
            for (i, &s) in scaled.iter().enumerate() {
                if s < 1.0 {
                    small.push(i as u32);
                } else {
                    large.push(i as u32);
                }
            }
            while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
                prob[s as usize] = scaled[s as usize];
                alias[s as usize] = l;
                scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
                if scaled[l as usize] < 1.0 {
                    small.push(l);
                } else {
                    large.push(l);
                }
            }
            // Leftover buckets (floating-point residue) stay
            // self-aliased with threshold 1.
        }
        AliasTable { prob, alias }
    }

    /// Builds the table from a statevector's measurement distribution.
    pub fn from_statevector(sv: &Statevector) -> Self {
        AliasTable::from_probabilities(&sv.probabilities())
    }

    /// Number of outcomes the table samples over.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never: construction rejects empty
    /// weight vectors, so this is always `false`).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Maps one uniform draw `u ∈ [0, 1)` to an outcome index: bucket
    /// `⌊u·n⌋`, accepted against the fractional part.
    pub fn sample(&self, u: f64) -> usize {
        let n = self.prob.len();
        let scaled = u * n as f64;
        let i = (scaled as usize).min(n - 1);
        let coin = scaled - i as f64;
        if coin < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Samples one outcome, advancing `rng` by exactly one `f64` draw.
    pub fn sample_with(&self, rng: &mut impl Rng) -> usize {
        self.sample(rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_distribution_always_returns_the_outcome() {
        let table = AliasTable::from_probabilities(&[0.0, 0.0, 1.0, 0.0]);
        for k in 0..1000 {
            let u = k as f64 / 1000.0;
            assert_eq!(table.sample(u), 2, "u = {u}");
        }
    }

    #[test]
    fn zero_probability_outcomes_are_never_sampled() {
        let table = AliasTable::from_probabilities(&[0.5, 0.0, 0.25, 0.25]);
        for k in 0..10_000 {
            let u = k as f64 / 10_000.0;
            assert_ne!(table.sample(u), 1, "u = {u}");
        }
    }

    #[test]
    fn exhaustive_grid_recovers_the_distribution() {
        // A fine uniform grid over u reproduces each probability to the
        // grid resolution: the alias decomposition conserves mass.
        let p = [0.1, 0.4, 0.2, 0.3];
        let table = AliasTable::from_probabilities(&p);
        let grid = 400_000usize;
        let mut hits = [0usize; 4];
        for k in 0..grid {
            hits[table.sample((k as f64 + 0.5) / grid as f64)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            let freq = h as f64 / grid as f64;
            assert!(
                (freq - p[i]).abs() < 1e-4,
                "outcome {i}: {freq} vs {}",
                p[i]
            );
        }
    }

    #[test]
    fn unnormalized_weights_are_normalized() {
        let a = AliasTable::from_probabilities(&[1.0, 3.0]);
        let b = AliasTable::from_probabilities(&[0.25, 0.75]);
        for k in 0..1000 {
            let u = k as f64 / 1000.0;
            assert_eq!(a.sample(u), b.sample(u));
        }
    }

    #[test]
    fn degenerate_weights_fall_back_to_uniform() {
        for weights in [
            vec![0.0, 0.0],
            vec![f64::NAN, 1.0],
            vec![f64::INFINITY, 1.0],
        ] {
            let table = AliasTable::from_probabilities(&weights);
            assert_eq!(table.sample(0.0), 0, "{weights:?}");
            assert_eq!(table.sample(0.999), 1, "{weights:?}");
        }
    }

    #[test]
    fn single_outcome_table() {
        let table = AliasTable::from_probabilities(&[1.0]);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
        assert_eq!(table.sample(0.0), 0);
        assert_eq!(table.sample(0.999_999), 0);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        let _ = AliasTable::from_probabilities(&[]);
    }

    #[test]
    fn statevector_table_matches_probabilities() {
        let mut c = qucp_circuit::Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = Statevector::from_circuit(&c);
        let table = AliasTable::from_statevector(&sv);
        let mut rng = StdRng::seed_from_u64(7);
        let shots = 40_000;
        let mut hits = [0usize; 4];
        for _ in 0..shots {
            hits[table.sample_with(&mut rng)] += 1;
        }
        assert_eq!(hits[1] + hits[2], 0, "bell never yields 01/10");
        let frac = hits[0] as f64 / shots as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }
}
