//! Unitary matrices of the gate set.

use qucp_circuit::Gate;

use crate::math::{Complex, Mat2};

/// The 2×2 unitary of a one-qubit gate.
///
/// # Panics
///
/// Panics if `gate` is a two-qubit gate (those are applied with the
/// specialized statevector kernels).
pub fn single_qubit_matrix(gate: &Gate) -> Mat2 {
    use std::f64::consts::FRAC_1_SQRT_2 as INV_SQRT2;
    let z = Complex::zero();
    let o = Complex::one();
    let i = Complex::i();
    match *gate {
        Gate::I(_) => [[o, z], [z, o]],
        Gate::X(_) => [[z, o], [o, z]],
        Gate::Y(_) => [[z, -i], [i, z]],
        Gate::Z(_) => [[o, z], [z, -o]],
        Gate::H(_) => [
            [Complex::real(INV_SQRT2), Complex::real(INV_SQRT2)],
            [Complex::real(INV_SQRT2), Complex::real(-INV_SQRT2)],
        ],
        Gate::S(_) => [[o, z], [z, i]],
        Gate::Sdg(_) => [[o, z], [z, -i]],
        Gate::T(_) => [[o, z], [z, Complex::cis(std::f64::consts::FRAC_PI_4)]],
        Gate::Tdg(_) => [[o, z], [z, Complex::cis(-std::f64::consts::FRAC_PI_4)]],
        Gate::Sx(_) => {
            let a = Complex::new(0.5, 0.5);
            let b = Complex::new(0.5, -0.5);
            [[a, b], [b, a]]
        }
        Gate::Sxdg(_) => {
            let a = Complex::new(0.5, -0.5);
            let b = Complex::new(0.5, 0.5);
            [[a, b], [b, a]]
        }
        Gate::Rx(_, t) => {
            let c = Complex::real((t / 2.0).cos());
            let s = Complex::new(0.0, -(t / 2.0).sin());
            [[c, s], [s, c]]
        }
        Gate::Ry(_, t) => {
            let c = Complex::real((t / 2.0).cos());
            let s = (t / 2.0).sin();
            [[c, Complex::real(-s)], [Complex::real(s), c]]
        }
        Gate::Rz(_, t) => [[Complex::cis(-t / 2.0), z], [z, Complex::cis(t / 2.0)]],
        Gate::P(_, t) => [[o, z], [z, Complex::cis(t)]],
        Gate::U(_, t, p, l) => {
            let c = (t / 2.0).cos();
            let s = (t / 2.0).sin();
            [
                [Complex::real(c), -(Complex::cis(l).scale(s))],
                [Complex::cis(p).scale(s), Complex::cis(p + l).scale(c)],
            ]
        }
        _ => panic!("{gate:?} is not a one-qubit gate"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{mat2_dagger, mat2_is_unitary, mat2_mul};

    fn all_single_qubit_gates() -> Vec<Gate> {
        vec![
            Gate::I(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Sx(0),
            Gate::Sxdg(0),
            Gate::Rx(0, 0.37),
            Gate::Ry(0, -1.2),
            Gate::Rz(0, 2.1),
            Gate::P(0, 0.9),
            Gate::U(0, 0.4, 1.3, -0.6),
        ]
    }

    #[test]
    fn all_matrices_unitary() {
        for g in all_single_qubit_gates() {
            assert!(
                mat2_is_unitary(&single_qubit_matrix(&g), 1e-12),
                "{g:?} not unitary"
            );
        }
    }

    #[test]
    fn inverse_matrix_matches_symbolic_inverse() {
        for g in all_single_qubit_gates() {
            let m = single_qubit_matrix(&g);
            let mi = single_qubit_matrix(&g.inverse());
            let prod = mat2_mul(&m, &mi);
            // Product should be the identity (these gates have matched
            // global-phase conventions for inverses).
            assert!(prod[0][0].approx_eq(Complex::one(), 1e-12), "{g:?}");
            assert!(prod[0][1].approx_eq(Complex::zero(), 1e-12), "{g:?}");
            assert!(prod[1][0].approx_eq(Complex::zero(), 1e-12), "{g:?}");
            assert!(prod[1][1].approx_eq(Complex::one(), 1e-12), "{g:?}");
        }
    }

    #[test]
    fn sx_squares_to_x() {
        let sx = single_qubit_matrix(&Gate::Sx(0));
        let x = single_qubit_matrix(&Gate::X(0));
        let prod = mat2_mul(&sx, &sx);
        for r in 0..2 {
            for c in 0..2 {
                assert!(prod[r][c].approx_eq(x[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn h_is_self_adjoint() {
        let h = single_qubit_matrix(&Gate::H(0));
        let hd = mat2_dagger(&h);
        for r in 0..2 {
            for c in 0..2 {
                assert!(h[r][c].approx_eq(hd[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn u_with_euler_angles_matches_named_gates() {
        use std::f64::consts::PI;
        // U(π, 0, π) = X up to global phase; compare |entry| magnitudes.
        let u = single_qubit_matrix(&Gate::U(0, PI, 0.0, PI));
        let x = single_qubit_matrix(&Gate::X(0));
        for r in 0..2 {
            for c in 0..2 {
                assert!((u[r][c].abs() - x[r][c].abs()).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a one-qubit gate")]
    fn two_qubit_gate_panics() {
        single_qubit_matrix(&Gate::Cx(0, 1));
    }
}
