//! Exact density-matrix evaluation of the noise model.
//!
//! Walks the *same* trajectory plan as [`crate::run_noisy`] — identical
//! ALAP event stream, identical error probabilities — but evolves the
//! density matrix through the corresponding channels instead of sampling
//! Pauli trajectories:
//!
//! * a gate with error probability `p` becomes the channel
//!   `(1−p)·UρU† + p·(uniform non-identity Pauli conjugations of UρU†)`;
//! * an idle window becomes the Pauli-twirled thermal channel
//!   `(1−px−py−pz)ρ + px·XρX + py·YρY + pz·ZρZ`;
//! * readout becomes a classical confusion map on the diagonal.
//!
//! This gives the exact outcome distribution the Monte-Carlo sampler
//! converges to — used by validation tests (trajectories vs channels)
//! and available wherever sampling noise is unwanted. Exponential in
//! memory (`4^n`), so limited to 12 qubits; parallel programs are ≤ 6.

use qucp_circuit::{Circuit, Gate};
use qucp_device::Device;

use crate::executor::{build_plan, Event, ExecutionConfig, NoiseScaling, SimError};
use crate::math::{Complex, Mat2};
use crate::unitaries::single_qubit_matrix;

/// A dense density matrix on `n` qubits (row-major `dim × dim`,
/// little-endian basis indexing like [`crate::Statevector`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    rho: Vec<Complex>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 12` (memory grows as `4^n`).
    pub fn zero_state(n: usize) -> Self {
        assert!(n <= 12, "density matrix limited to 12 qubits, got {n}");
        let dim = 1usize << n;
        let mut rho = vec![Complex::zero(); dim * dim];
        rho[0] = Complex::one();
        DensityMatrix { n, dim, rho }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The matrix entry `ρ[r][c]`.
    pub fn entry(&self, r: usize, c: usize) -> Complex {
        self.rho[r * self.dim + c]
    }

    /// Trace (should be 1).
    pub fn trace(&self) -> Complex {
        (0..self.dim)
            .map(|i| self.entry(i, i))
            .fold(Complex::zero(), |a, b| a + b)
    }

    /// Purity `Tr(ρ²)` — 1 for pure states, `1/dim` when fully mixed.
    pub fn purity(&self) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.dim {
            for c in 0..self.dim {
                acc += (self.entry(r, c) * self.entry(c, r)).re;
            }
        }
        acc
    }

    /// Measurement probabilities (the diagonal).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.entry(i, i).re.max(0.0))
            .collect()
    }

    /// Applies a gate unitarily: `ρ ← UρU†`.
    pub fn apply(&mut self, gate: &Gate) {
        match *gate {
            Gate::Cx(c, t) => self.conjugate_permutation(|idx| {
                if idx >> c & 1 == 1 {
                    idx ^ (1 << t)
                } else {
                    idx
                }
            }),
            Gate::Swap(a, b) => self.conjugate_permutation(|idx| {
                let ba = idx >> a & 1;
                let bb = idx >> b & 1;
                if ba == bb {
                    idx
                } else {
                    idx ^ (1 << a) ^ (1 << b)
                }
            }),
            Gate::Cz(a, b) => self.conjugate_diagonal(|idx| {
                if idx >> a & 1 == 1 && idx >> b & 1 == 1 {
                    Complex::real(-1.0)
                } else {
                    Complex::one()
                }
            }),
            Gate::Cp(a, b, theta) => self.conjugate_diagonal(|idx| {
                if idx >> a & 1 == 1 && idx >> b & 1 == 1 {
                    Complex::cis(theta)
                } else {
                    Complex::one()
                }
            }),
            ref g => {
                let q = g.qubits().as_slice()[0];
                self.conjugate_single(q, &single_qubit_matrix(g));
            }
        }
    }

    /// `ρ ← UρU†` for a one-qubit unitary on `q`.
    pub fn conjugate_single(&mut self, q: usize, u: &Mat2) {
        let bit = 1usize << q;
        // Left: ρ ← Uρ (columns are statevectors over the row index).
        for c in 0..self.dim {
            for r in 0..self.dim {
                if r & bit == 0 {
                    let r2 = r | bit;
                    let a = self.rho[r * self.dim + c];
                    let b = self.rho[r2 * self.dim + c];
                    self.rho[r * self.dim + c] = u[0][0] * a + u[0][1] * b;
                    self.rho[r2 * self.dim + c] = u[1][0] * a + u[1][1] * b;
                }
            }
        }
        // Right: ρ ← ρU† (rows pick up conj(U)).
        for r in 0..self.dim {
            for c in 0..self.dim {
                if c & bit == 0 {
                    let c2 = c | bit;
                    let a = self.rho[r * self.dim + c];
                    let b = self.rho[r * self.dim + c2];
                    self.rho[r * self.dim + c] = a * u[0][0].conj() + b * u[0][1].conj();
                    self.rho[r * self.dim + c2] = a * u[1][0].conj() + b * u[1][1].conj();
                }
            }
        }
    }

    fn conjugate_permutation(&mut self, f: impl Fn(usize) -> usize) {
        let mut out = vec![Complex::zero(); self.dim * self.dim];
        for r in 0..self.dim {
            let fr = f(r);
            for c in 0..self.dim {
                out[fr * self.dim + f(c)] = self.rho[r * self.dim + c];
            }
        }
        self.rho = out;
    }

    fn conjugate_diagonal(&mut self, phase: impl Fn(usize) -> Complex) {
        for r in 0..self.dim {
            let pr = phase(r);
            for c in 0..self.dim {
                let pc = phase(c).conj();
                self.rho[r * self.dim + c] = pr * self.rho[r * self.dim + c] * pc;
            }
        }
    }

    /// The Pauli-twirled channel
    /// `ρ ← (1−px−py−pz)ρ + px·XρX + py·YρY + pz·ZρZ` on qubit `q`.
    pub fn pauli_channel(&mut self, q: usize, px: f64, py: f64, pz: f64) {
        let keep = 1.0 - px - py - pz;
        let mut acc: Vec<Complex> = self.rho.iter().map(|&z| z.scale(keep)).collect();
        for (p, gate) in [(px, Gate::X(q)), (py, Gate::Y(q)), (pz, Gate::Z(q))] {
            if p > 0.0 {
                let mut term = self.clone();
                term.apply(&gate);
                for (a, b) in acc.iter_mut().zip(&term.rho) {
                    *a += b.scale(p);
                }
            }
        }
        self.rho = acc;
    }

    /// Uniform depolarizing after a gate: with probability `p`, a
    /// uniformly random non-identity Pauli on the gate's operands (3
    /// choices for one qubit, 15 for two) — exactly the channel the
    /// trajectory sampler draws from.
    pub fn gate_error_channel(&mut self, gate: &Gate, p: f64) {
        if p <= 0.0 {
            return;
        }
        let qs = gate.qubits();
        let qs = qs.as_slice();
        let mut acc: Vec<Complex> = self.rho.iter().map(|&z| z.scale(1.0 - p)).collect();
        if qs.len() == 1 {
            for pauli in [Gate::X(qs[0]), Gate::Y(qs[0]), Gate::Z(qs[0])] {
                let mut term = self.clone();
                term.apply(&pauli);
                for (a, b) in acc.iter_mut().zip(&term.rho) {
                    *a += b.scale(p / 3.0);
                }
            }
        } else {
            for k in 1..16 {
                let (pa, pb) = (k / 4, k % 4);
                let mut term = self.clone();
                if let Some(g) = int_pauli_gate(pa, qs[0]) {
                    term.apply(&g);
                }
                if let Some(g) = int_pauli_gate(pb, qs[1]) {
                    term.apply(&g);
                }
                for (a, b) in acc.iter_mut().zip(&term.rho) {
                    *a += b.scale(p / 15.0);
                }
            }
        }
        self.rho = acc;
    }
}

fn int_pauli_gate(i: usize, q: usize) -> Option<Gate> {
    match i {
        1 => Some(Gate::X(q)),
        2 => Some(Gate::Y(q)),
        3 => Some(Gate::Z(q)),
        _ => None,
    }
}

/// Applies the per-qubit readout confusion to an outcome distribution.
pub fn apply_readout_confusion(probs: &[f64], readout_error: &[f64]) -> Vec<f64> {
    let dim = probs.len();
    let n = readout_error.len();
    assert_eq!(dim, 1 << n, "distribution/readout size mismatch");
    let mut out = probs.to_vec();
    // Qubit-by-qubit binary confusion (tensored assignment matrix).
    for (q, &e) in readout_error.iter().enumerate() {
        let bit = 1usize << q;
        let mut next = vec![0.0; dim];
        for (idx, &p) in out.iter().enumerate() {
            next[idx] += p * (1.0 - e);
            next[idx ^ bit] += p * e;
        }
        out = next;
    }
    out
}

/// Exact outcome distribution of a mapped job under the full noise
/// model — the channel-level counterpart of [`crate::run_noisy`].
///
/// # Errors
///
/// Returns the same [`SimError`] layout diagnostics as the sampler.
///
/// # Panics
///
/// Panics if the circuit exceeds 12 qubits.
pub fn exact_probabilities(
    circuit: &Circuit,
    layout: &[usize],
    device: &Device,
    scaling: &NoiseScaling,
    cfg: &ExecutionConfig,
) -> Result<Vec<f64>, SimError> {
    let plan = build_plan(circuit, layout, device, scaling, &[], cfg)?;
    let mut rho = DensityMatrix::zero_state(circuit.width());
    for &(_, _, ev) in &plan.events {
        match ev {
            Event::Gate { index } => {
                let gate = &circuit.gates()[index];
                rho.apply(gate);
                rho.gate_error_channel(gate, plan.error_p[index]);
            }
            Event::Idle {
                q,
                relax_p,
                dephase_p,
            } => {
                rho.pauli_channel(q, relax_p / 4.0, relax_p / 4.0, dephase_p / 2.0);
            }
        }
    }
    let mut probs = rho.probabilities();
    if cfg.readout_noise {
        let cal = device.calibration();
        let errors: Vec<f64> = layout.iter().map(|&p| cal.readout_error(p)).collect();
        probs = apply_readout_confusion(&probs, &errors);
    }
    Ok(probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Statevector;
    use qucp_device::{Calibration, CrosstalkModel, Topology};

    fn line_device(n: usize, cx: f64, ro: f64) -> Device {
        let t = Topology::line(n);
        let cal = Calibration::uniform(&t, cx, 1e-4, ro);
        Device::new("dm", t, cal, CrosstalkModel::none())
    }

    #[test]
    fn pure_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .t(1)
            .cx(1, 2)
            .ry(2, 0.7)
            .cz(0, 2)
            .swap(0, 2)
            .cp(1, 2, 0.3);
        let sv = Statevector::from_circuit(&c);
        let mut dm = DensityMatrix::zero_state(3);
        for g in c.gates() {
            dm.apply(g);
        }
        let p_sv = sv.probabilities();
        let p_dm = dm.probabilities();
        for (a, b) in p_sv.iter().zip(&p_dm) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        assert!((dm.purity() - 1.0).abs() < 1e-9);
        assert!(dm.trace().approx_eq(Complex::one(), 1e-10));
    }

    #[test]
    fn depolarizing_mixes_state() {
        let mut dm = DensityMatrix::zero_state(1);
        dm.gate_error_channel(&Gate::X(0), 0.75); // maximal 1q depolarizing
                                                  // Fully mixed: diag(1/2, 1/2).
        let p = dm.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[1] - 0.5).abs() < 1e-10);
        assert!((dm.purity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pauli_channel_dephases() {
        let mut dm = DensityMatrix::zero_state(1);
        dm.apply(&Gate::H(0));
        assert!(dm.entry(0, 1).abs() > 0.4);
        dm.pauli_channel(0, 0.0, 0.0, 0.5); // full dephasing
        assert!(dm.entry(0, 1).abs() < 1e-10);
        // Diagonal untouched.
        assert!((dm.probabilities()[0] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn trace_preserved_by_channels() {
        let mut dm = DensityMatrix::zero_state(2);
        dm.apply(&Gate::H(0));
        dm.apply(&Gate::Cx(0, 1));
        dm.gate_error_channel(&Gate::Cx(0, 1), 0.2);
        dm.pauli_channel(1, 0.05, 0.05, 0.1);
        assert!(dm.trace().approx_eq(Complex::one(), 1e-10));
        let total: f64 = dm.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn readout_confusion_single_qubit() {
        let probs = vec![1.0, 0.0];
        let out = apply_readout_confusion(&probs, &[0.1]);
        assert!((out[0] - 0.9).abs() < 1e-12);
        assert!((out[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn readout_confusion_preserves_normalization() {
        let probs = vec![0.4, 0.1, 0.3, 0.2];
        let out = apply_readout_confusion(&probs, &[0.05, 0.2]);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_probabilities_noise_free_matches_ideal() {
        let dev = line_device(2, 0.0, 0.0);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let cfg = ExecutionConfig::default();
        let p = exact_probabilities(&c, &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[3] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn exact_probabilities_reflect_readout() {
        let dev = line_device(1, 0.0, 0.25);
        let c = Circuit::new(1);
        let cfg = ExecutionConfig::default();
        let p = exact_probabilities(&c, &[0], &dev, &NoiseScaling::uniform(0), &cfg).unwrap();
        assert!((p[1] - 0.25).abs() < 1e-10);
    }

    #[test]
    fn layout_errors_propagate() {
        let dev = line_device(2, 0.0, 0.0);
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let cfg = ExecutionConfig::default();
        let err =
            exact_probabilities(&c, &[0, 0], &dev, &NoiseScaling::uniform(1), &cfg).unwrap_err();
        assert!(matches!(err, SimError::LayoutNotInjective { .. }));
    }
}
