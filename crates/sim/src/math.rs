//! Minimal complex arithmetic and small dense matrices.
//!
//! Implemented in-repo to keep the dependency set within the approved
//! offline list (see DESIGN.md); only what the statevector engine and the
//! VQE eigensolver need.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// ```
/// use qucp_sim::math::Complex;
/// let z = Complex::new(1.0, 2.0) * Complex::i();
/// assert!((z.re + 2.0).abs() < 1e-15);
/// assert!((z.im - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Zero.
    pub const fn zero() -> Self {
        Complex::new(0.0, 0.0)
    }

    /// One.
    pub const fn one() -> Self {
        Complex::new(1.0, 0.0)
    }

    /// The imaginary unit.
    pub const fn i() -> Self {
        Complex::new(0.0, 1.0)
    }

    /// A real number as a complex.
    pub const fn real(re: f64) -> Self {
        Complex::new(re, 0.0)
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Whether both parts are within `eps` of `other`'s.
    pub fn approx_eq(self, other: Complex, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, o: Complex) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, k: f64) -> Complex {
        self.scale(k)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, k: f64) -> Complex {
        Complex::new(self.re / k, self.im / k)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

/// A 2×2 complex matrix (row-major).
pub type Mat2 = [[Complex; 2]; 2];

/// A 4×4 complex matrix (row-major).
pub type Mat4 = [[Complex; 4]; 4];

/// The 2×2 identity.
pub fn mat2_identity() -> Mat2 {
    let z = Complex::zero();
    let o = Complex::one();
    [[o, z], [z, o]]
}

/// Product of two 2×2 matrices.
pub fn mat2_mul(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[Complex::zero(); 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            for (k, &bk) in b.iter().map(|r| &r[j]).enumerate() {
                *cell += a[i][k] * bk;
            }
        }
    }
    out
}

/// Conjugate transpose of a 2×2 matrix.
pub fn mat2_dagger(a: &Mat2) -> Mat2 {
    [
        [a[0][0].conj(), a[1][0].conj()],
        [a[0][1].conj(), a[1][1].conj()],
    ]
}

/// Kronecker product `a ⊗ b` of two 2×2 matrices (a acts on the
/// higher-order qubit).
pub fn kron2(a: &Mat2, b: &Mat2) -> Mat4 {
    let mut out = [[Complex::zero(); 4]; 4];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                for l in 0..2 {
                    out[i * 2 + k][j * 2 + l] = a[i][j] * b[k][l];
                }
            }
        }
    }
    out
}

/// Whether `a` is unitary to tolerance `eps`.
pub fn mat2_is_unitary(a: &Mat2, eps: f64) -> bool {
    let prod = mat2_mul(a, &mat2_dagger(a));
    let id = mat2_identity();
    for i in 0..2 {
        for j in 0..2 {
            if !prod[i][j].approx_eq(id[i][j], eps) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((a.norm_sqr() - 5.0).abs() < 1e-15);
        assert!((a.abs() - 5f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..8 {
            let z = Complex::cis(k as f64 * 0.7);
            assert!((z.abs() - 1.0).abs() < 1e-14);
        }
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex::i(), 1e-15));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::one();
        z += Complex::i();
        z -= Complex::one();
        z *= Complex::i();
        assert!(z.approx_eq(Complex::new(-1.0, 0.0), 1e-15));
        assert_eq!(Complex::real(2.0) / 2.0, Complex::one());
        assert_eq!(Complex::one() * 3.0, Complex::real(3.0));
    }

    #[test]
    fn from_f64() {
        let z: Complex = 2.5f64.into();
        assert_eq!(z, Complex::new(2.5, 0.0));
    }

    #[test]
    fn display_signs() {
        assert_eq!(Complex::new(1.0, -0.5).to_string(), "1.000000-0.500000i");
        assert_eq!(Complex::new(0.0, 0.25).to_string(), "0.000000+0.250000i");
    }

    #[test]
    fn mat2_products() {
        let id = mat2_identity();
        let x: Mat2 = [
            [Complex::zero(), Complex::one()],
            [Complex::one(), Complex::zero()],
        ];
        assert_eq!(mat2_mul(&id, &x), x);
        assert_eq!(mat2_mul(&x, &x), id);
        assert!(mat2_is_unitary(&x, 1e-12));
    }

    #[test]
    fn dagger_of_phase() {
        let s: Mat2 = [
            [Complex::one(), Complex::zero()],
            [Complex::zero(), Complex::i()],
        ];
        let sd = mat2_dagger(&s);
        assert_eq!(sd[1][1], Complex::new(0.0, -1.0));
        assert!(mat2_is_unitary(&s, 1e-12));
    }

    #[test]
    fn kron_identity_structure() {
        let id = mat2_identity();
        let z: Mat2 = [
            [Complex::one(), Complex::zero()],
            [Complex::zero(), Complex::new(-1.0, 0.0)],
        ];
        let k = kron2(&id, &z);
        // diag(1,-1,1,-1)
        assert_eq!(k[0][0], Complex::one());
        assert_eq!(k[1][1], Complex::new(-1.0, 0.0));
        assert_eq!(k[2][2], Complex::one());
        assert_eq!(k[3][3], Complex::new(-1.0, 0.0));
    }

    #[test]
    fn non_unitary_detected() {
        let m: Mat2 = [
            [Complex::real(2.0), Complex::zero()],
            [Complex::zero(), Complex::one()],
        ];
        assert!(!mat2_is_unitary(&m, 1e-12));
    }
}
