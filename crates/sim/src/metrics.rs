//! Output-fidelity metrics of the paper: PST (Eq. 2), Jensen-Shannon
//! divergence (Eq. 3), Kullback-Leibler divergence (Eq. 4), plus total
//! variation distance and Hellinger fidelity used in ablations.

use crate::counts::Counts;

/// Probability of a Successful Trial (paper Eq. 2): the fraction of shots
/// that produced the expected bitstring of a deterministic circuit.
pub fn pst(counts: &Counts, expected: usize) -> f64 {
    counts.probability(expected)
}

/// Kullback-Leibler divergence `D(P‖Q)` (paper Eq. 4) in bits.
///
/// Terms with `p = 0` contribute zero; terms with `p > 0, q = 0` would be
/// infinite, which is why the paper prefers JSD — here they saturate to a
/// large finite value (`1e9`) to stay orderable.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi > 0.0 {
                acc += pi * (pi / qi).log2();
            } else {
                return 1e9;
            }
        }
    }
    acc
}

/// Jensen-Shannon divergence (paper Eq. 3) in bits: always finite,
/// symmetric, and bounded by 1.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn jsd(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Total variation distance `½ Σ |p - q|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn tvd(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Hellinger fidelity `(Σ √(p·q))²` — 1 for identical distributions.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn hellinger_fidelity(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let bc: f64 = p.iter().zip(q).map(|(&a, &b)| (a * b).sqrt()).sum();
    bc * bc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pst_from_counts() {
        let mut c = Counts::new(2);
        c.record(0b11);
        c.record(0b11);
        c.record(0b01);
        c.record(0b00);
        assert!((pst(&c, 0b11) - 0.5).abs() < 1e-12);
        assert_eq!(pst(&c, 0b10), 0.0);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-15);
    }

    #[test]
    fn kl_positive_and_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let d1 = kl_divergence(&p, &q);
        let d2 = kl_divergence(&q, &p);
        assert!(d1 > 0.0);
        assert!(d2 > 0.0);
        assert!((d1 - d2).abs() > 1e-6);
    }

    #[test]
    fn kl_saturates_on_missing_support() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert_eq!(kl_divergence(&p, &q), 1e9);
    }

    #[test]
    fn jsd_bounds() {
        // Identical → 0.
        let p = [0.5, 0.5];
        assert!(jsd(&p, &p).abs() < 1e-15);
        // Disjoint support → 1 bit.
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((jsd(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jsd_symmetric() {
        let p = [0.7, 0.2, 0.1, 0.0];
        let q = [0.25, 0.25, 0.25, 0.25];
        assert!((jsd(&p, &q) - jsd(&q, &p)).abs() < 1e-15);
        let v = jsd(&p, &q);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn tvd_properties() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((tvd(&p, &q) - 1.0).abs() < 1e-15);
        assert!(tvd(&p, &p).abs() < 1e-15);
        let r = [0.5, 0.5];
        assert!((tvd(&p, &r) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn hellinger_bounds() {
        let p = [0.5, 0.5];
        assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-12);
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!(hellinger_fidelity(&a, &b).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        jsd(&[0.5, 0.5], &[1.0]);
    }
}
