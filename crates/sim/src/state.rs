//! Dense statevector with gate kernels.

use qucp_circuit::{Circuit, Gate};
use rand::Rng;

use crate::math::{Complex, Mat2};
use crate::unitaries::single_qubit_matrix;

/// A dense statevector on `n` qubits.
///
/// Basis-state indices are little-endian: bit `q` of the index is the
/// value of qubit `q`, so `|q1 q0⟩ = |10⟩` is index 2.
///
/// ```
/// use qucp_sim::Statevector;
/// use qucp_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let sv = Statevector::from_circuit(&bell);
/// let p = sv.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// assert!((p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    n: usize,
    amps: Vec<Complex>,
}

impl Statevector {
    /// The all-zeros state `|0…0⟩` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 24` (dense simulation would exceed memory; parallel
    /// programs are simulated per-partition, so this bound is never hit in
    /// practice).
    pub fn zero_state(n: usize) -> Self {
        assert!(n <= 24, "statevector limited to 24 qubits, got {n}");
        let mut amps = vec![Complex::zero(); 1 << n];
        amps[0] = Complex::one();
        Statevector { n, amps }
    }

    /// Resets the state to `|0…0⟩` in place, keeping the allocation.
    ///
    /// The trajectory hot loop re-simulates error shots from scratch;
    /// resetting a scratch state instead of allocating a fresh one keeps
    /// that loop allocation-free.
    pub fn reset_zero(&mut self) {
        for a in &mut self.amps {
            *a = Complex::zero();
        }
        self.amps[0] = Complex::one();
    }

    /// Overwrites this state with `other` in place, keeping the
    /// allocation — the snapshot-restore primitive of the trajectory
    /// hot loop (error shots resume from a cached ideal prefix state
    /// instead of re-simulating from `|0…0⟩`).
    ///
    /// # Panics
    ///
    /// Panics if the two states have different widths.
    pub fn copy_from(&mut self, other: &Statevector) {
        assert_eq!(self.n, other.n, "statevector width mismatch");
        self.amps.copy_from_slice(&other.amps);
    }

    /// Runs `circuit` from `|0…0⟩` and returns the final state.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut sv = Statevector::zero_state(circuit.width());
        for g in circuit.gates() {
            sv.apply(g);
        }
        sv
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The raw amplitudes (little-endian basis ordering).
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Applies any supported gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate's qubits are out of range.
    pub fn apply(&mut self, gate: &Gate) {
        match *gate {
            Gate::Cx(c, t) => self.apply_cx(c, t),
            Gate::Cz(a, b) => self.apply_cz(a, b),
            Gate::Cp(a, b, theta) => self.apply_cp(a, b, theta),
            Gate::Swap(a, b) => self.apply_swap(a, b),
            ref g => {
                let q = g.qubits().as_slice()[0];
                self.apply_single(q, &single_qubit_matrix(g));
            }
        }
    }

    /// Applies a 2×2 unitary to qubit `q`.
    ///
    /// The sweep is branch-free: amplitude pairs `(base, base | 1<<q)`
    /// are visited as contiguous strided blocks (no per-index bit test),
    /// in the same ascending pair order — and therefore with bit-for-bit
    /// the same floating-point results — as the historical masked loop.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_single(&mut self, q: usize, m: &Mat2) {
        assert!(q < self.n, "qubit {q} out of range");
        let bit = 1usize << q;
        let (m00, m01) = (m[0][0], m[0][1]);
        let (m10, m11) = (m[1][0], m[1][1]);
        for block in self.amps.chunks_exact_mut(bit << 1) {
            let (lo, hi) = block.split_at_mut(bit);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = m00 * x + m01 * y;
                *b = m10 * x + m11 * y;
            }
        }
    }

    /// Applies CNOT with the given control and target.
    ///
    /// Branch-free: the indices with the control bit set split into
    /// contiguous runs of `min(control, target)`-strided amplitudes
    /// whose target-flipped partners are swapped run-at-a-time.
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        assert!(control < self.n && target < self.n && control != target);
        let cb = 1usize << control;
        let tb = 1usize << target;
        if control > target {
            for block in self.amps.chunks_exact_mut(cb << 1) {
                // The upper half has the control bit set; swap its
                // target-bit pairs.
                for pair in block[cb..].chunks_exact_mut(tb << 1) {
                    let (lo, hi) = pair.split_at_mut(tb);
                    lo.swap_with_slice(hi);
                }
            }
        } else {
            for block in self.amps.chunks_exact_mut(tb << 1) {
                let (lo, hi) = block.split_at_mut(tb);
                // Swap the control-set runs of the target-clear half
                // with the matching runs of the target-set half.
                for (l, h) in lo
                    .chunks_exact_mut(cb << 1)
                    .zip(hi.chunks_exact_mut(cb << 1))
                {
                    l[cb..].swap_with_slice(&mut h[cb..]);
                }
            }
        }
    }

    /// Applies CZ.
    ///
    /// Branch-free: amplitudes with both bits set are visited as
    /// contiguous strided runs and negated in place.
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b);
        let lo_bit = 1usize << a.min(b);
        let hi_bit = 1usize << a.max(b);
        for block in self.amps.chunks_exact_mut(hi_bit << 1) {
            for run in block[hi_bit..].chunks_exact_mut(lo_bit << 1) {
                for amp in &mut run[lo_bit..] {
                    *amp = -*amp;
                }
            }
        }
    }

    /// Applies a controlled phase of angle `theta`.
    ///
    /// Branch-free, same sweep as [`Statevector::apply_cz`].
    pub fn apply_cp(&mut self, a: usize, b: usize, theta: f64) {
        assert!(a < self.n && b < self.n && a != b);
        let phase = Complex::cis(theta);
        let lo_bit = 1usize << a.min(b);
        let hi_bit = 1usize << a.max(b);
        for block in self.amps.chunks_exact_mut(hi_bit << 1) {
            for run in block[hi_bit..].chunks_exact_mut(lo_bit << 1) {
                for amp in &mut run[lo_bit..] {
                    *amp *= phase;
                }
            }
        }
    }

    /// Applies SWAP.
    ///
    /// Branch-free: the `|…1…0…⟩`/`|…0…1…⟩` partner pairs form matching
    /// contiguous runs in the two halves of each high-bit block and are
    /// exchanged run-at-a-time.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b);
        let lo_bit = 1usize << a.min(b);
        let hi_bit = 1usize << a.max(b);
        for block in self.amps.chunks_exact_mut(hi_bit << 1) {
            let (lo_half, hi_half) = block.split_at_mut(hi_bit);
            for (l, h) in lo_half
                .chunks_exact_mut(lo_bit << 1)
                .zip(hi_half.chunks_exact_mut(lo_bit << 1))
            {
                l[lo_bit..].swap_with_slice(&mut h[..lo_bit]);
            }
        }
    }

    /// Measurement probabilities of every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Squared norm (should be 1 for a valid state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Samples one measurement outcome (a basis-state index).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (idx, amp) in self.amps.iter().enumerate() {
            acc += amp.norm_sqr();
            if u < acc {
                return idx;
            }
        }
        self.amps.len() - 1
    }

    /// The most probable outcome and its probability.
    pub fn argmax(&self) -> (usize, f64) {
        let mut best = (0, 0.0);
        for (idx, amp) in self.amps.iter().enumerate() {
            let p = amp.norm_sqr();
            if p > best.1 {
                best = (idx, p);
            }
        }
        best
    }

    /// Fidelity `|⟨self|other⟩|²` with another state.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn fidelity(&self, other: &Statevector) -> f64 {
        assert_eq!(self.n, other.n, "state dimension mismatch");
        let mut ip = Complex::zero();
        for (a, b) in self.amps.iter().zip(&other.amps) {
            ip += a.conj() * *b;
        }
        ip.norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_initialization() {
        let sv = Statevector::zero_state(3);
        assert_eq!(sv.num_qubits(), 3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert!((sv.probabilities()[0] - 1.0).abs() < 1e-15);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn reset_zero_restores_initial_state() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.4);
        let mut sv = Statevector::from_circuit(&c);
        sv.reset_zero();
        assert_eq!(sv, Statevector::zero_state(3));
    }

    #[test]
    fn x_flips_bit() {
        let mut sv = Statevector::zero_state(2);
        sv.apply(&Gate::X(1));
        let p = sv.probabilities();
        assert!((p[2] - 1.0).abs() < 1e-15); // |10⟩ little-endian: qubit1=1
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = Statevector::from_circuit(&c);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!(p[1].abs() < 1e-12);
        assert!(p[2].abs() < 1e-12);
    }

    #[test]
    fn cx_truth_table() {
        // |control=1, target=0⟩ → |11⟩
        let mut sv = Statevector::zero_state(2);
        sv.apply(&Gate::X(0));
        sv.apply(&Gate::Cx(0, 1));
        assert_eq!(sv.argmax().0, 0b11);
        // control=0 leaves target alone
        let mut sv = Statevector::zero_state(2);
        sv.apply(&Gate::Cx(0, 1));
        assert_eq!(sv.argmax().0, 0);
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut sv = Statevector::zero_state(2);
        sv.apply(&Gate::X(0));
        sv.apply(&Gate::Swap(0, 1));
        assert_eq!(sv.argmax().0, 0b10);
    }

    #[test]
    fn cz_phases_only_11() {
        let mut sv = Statevector::zero_state(2);
        sv.apply(&Gate::H(0));
        sv.apply(&Gate::H(1));
        sv.apply(&Gate::Cz(0, 1));
        let amps = sv.amplitudes();
        assert!(amps[3].approx_eq(Complex::real(-0.5), 1e-12));
        assert!(amps[0].approx_eq(Complex::real(0.5), 1e-12));
    }

    #[test]
    fn cp_matches_cz_at_pi() {
        let mut a = Statevector::zero_state(2);
        a.apply(&Gate::H(0));
        a.apply(&Gate::H(1));
        a.apply(&Gate::Cz(0, 1));
        let mut b = Statevector::zero_state(2);
        b.apply(&Gate::H(0));
        b.apply(&Gate::H(1));
        b.apply(&Gate::Cp(0, 1, std::f64::consts::PI));
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_inverse_returns_to_zero() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .t(1)
            .cx(1, 2)
            .ry(2, 0.7)
            .cz(0, 2)
            .rz(1, -0.3);
        let composed = c.compose(&c.inverse()).unwrap();
        let sv = Statevector::from_circuit(&composed);
        assert!((sv.probabilities()[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cx(0, 1)
            .ry(2, 1.1)
            .swap(1, 3)
            .cp(0, 2, 0.4)
            .u(3, 0.3, 0.2, 0.1)
            .sx(1);
        let sv = Statevector::from_circuit(&c);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut c = Circuit::new(1);
        c.h(0);
        let sv = Statevector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(11);
        let mut ones = 0;
        let shots = 20_000;
        for _ in 0..shots {
            ones += sv.sample(&mut rng);
        }
        let frac = ones as f64 / shots as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn fidelity_of_orthogonal_states() {
        let mut a = Statevector::zero_state(1);
        let mut b = Statevector::zero_state(1);
        b.apply(&Gate::X(0));
        assert!(a.fidelity(&b) < 1e-15);
        a.apply(&Gate::X(0));
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_out_of_range_panics() {
        let mut sv = Statevector::zero_state(2);
        sv.apply_single(2, &crate::math::mat2_identity());
    }

    #[test]
    fn ghz_endpoints() {
        let c = qucp_circuit::library::ghz(5);
        let sv = Statevector::from_circuit(&c);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[31] - 0.5).abs() < 1e-12);
    }
}
