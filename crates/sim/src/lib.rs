//! # qucp-sim
//!
//! Noisy quantum-circuit simulation for the QuCP reproduction.
//!
//! The paper executes jobs on IBM hardware; this crate substitutes a
//! Monte-Carlo trajectory statevector simulator whose noise structure is
//! driven by the `qucp-device` calibration model: stochastic Pauli errors
//! after gates, thermal relaxation/dephasing in ALAP-schedule idle gaps,
//! readout bit flips, and crosstalk amplification of CNOT errors through
//! per-gate [`NoiseScaling`] factors (computed by the parallel executor
//! in `qucp-core` from the merged schedule).
//!
//! Because simultaneously executed programs occupy disjoint partitions
//! and never entangle, the joint state factorizes: each program is
//! simulated on its own small register, which keeps 65-qubit parallel
//! workloads tractable.
//!
//! ## Thread safety
//!
//! Every execution entry point ([`run_noisy`], [`run_noisy_with_idle`],
//! [`run_ideal`], …) is a free function over `Send + Sync` inputs
//! ([`ExecutionConfig`] is `Copy`; circuits, devices and
//! [`NoiseScaling`] are plain data) with no interior mutability or
//! global state — each call owns its RNG, seeded from the config. The
//! `qucp-runtime` batch scheduler relies on this to execute the
//! programs of a batch concurrently, one thread per program; a
//! compile-time assertion in this crate's tests pins the guarantee.
//!
//! ## Shot-sharded parallelism
//!
//! A single job's Monte-Carlo trajectories are embarrassingly parallel,
//! and [`ExecutionConfig::parallelism`] exploits that:
//! [`ShotParallelism::Sharded`] splits the shot budget into a fixed
//! number of *shards*, each an independent sequential RNG stream,
//! executed by scoped worker threads. [`ShotParallelism::Auto`] picks
//! the shard count from the shot budget itself
//! ([`auto_shard_count`]: one shard per 512 shots, capped at 32) so
//! callers need not hand-tune the split — the resolution depends only
//! on the job, never the machine, keeping counts deterministic.
//!
//! **Shard-RNG derivation.** Shard `s` of a job seeded with `seed`
//! seeds its `StdRng` with [`derive_shard_seed`]`(seed, s)` — the
//! `s + 1`-th output of a SplitMix64 generator started at the *mixed*
//! base seed `splitmix64(seed)`. Mixing the base seed first keeps the
//! shard streams of co-scheduled programs disjoint even though their
//! per-program seeds are golden-ratio strides of one batch seed; the
//! SplitMix64 finalizer then decorrelates the per-shard ChaCha12
//! streams, all without touching the vendored `rand` internals that
//! the tuned calibration thresholds depend on.
//!
//! ## Trajectory kernels
//!
//! [`ExecutionConfig::kernel`] selects the per-shot algorithm. Both
//! kernels sample the identical noise model — only the RNG stream that
//! realizes it differs:
//!
//! - [`TrajectoryKernel::Replay`] (default): one Bernoulli draw per
//!   scheduled event; clean shots sample the cached ideal state through
//!   the linear CDF walk. Bit-for-bit the historical stream.
//! - [`TrajectoryKernel::SurvivalSkip`]: one uniform draw + binary
//!   search over the plan's prefix survival products jumps straight to
//!   the next error event, and clean shots sample a per-job
//!   Walker/Vose [`AliasTable`] in O(1) — per-shot work proportional
//!   to the number of *errors*, not the number of events.
//!
//! ## Determinism contract (kernel × parallelism)
//!
//! Counts are always a pure function of `(kernel, seed, shards)` and
//! the job; thread counts and scheduling interleavings can change only
//! wall-clock time, never a single count.
//!
//! | | [`Replay`](TrajectoryKernel::Replay) | [`SurvivalSkip`](TrajectoryKernel::SurvivalSkip) |
//! |---|---|---|
//! | [`Serial`](ShotParallelism::Serial) | the historical pre-sharding stream, pinned bit-for-bit across releases | one pinned stream per `(job, seed)`, fewer draws per shot |
//! | [`Sharded`](ShotParallelism::Sharded) | pure in `(seed, shards)` via [`derive_shard_seed`], merged in shard order | same shard seeds, same merge — pure in `(seed, shards)` |
//! | [`Auto`](ShotParallelism::Auto) | equals `Sharded` at [`auto_shard_count`]`(shots)` exactly | equals `Sharded` at [`auto_shard_count`]`(shots)` exactly |
//!
//! Switching any of kernel, shard count, or seed selects a different
//! (equally valid) sample of the same distribution; switching threads
//! never does.
//!
//! **Shard-RNG derivation.** Shard `s` of a job seeded with `seed`
//! seeds its `StdRng` with [`derive_shard_seed`]`(seed, s)` — the
//! `s + 1`-th output of a SplitMix64 generator started at the *mixed*
//! base seed `splitmix64(seed)`. Mixing the base seed first keeps the
//! shard streams of co-scheduled programs disjoint even though their
//! per-program seeds are golden-ratio strides of one batch seed; the
//! SplitMix64 finalizer then decorrelates the per-shard ChaCha12
//! streams, all without touching the vendored `rand` internals that
//! the tuned calibration thresholds depend on.
//!
//! ```
//! use qucp_circuit::Circuit;
//! use qucp_device::ibm;
//! use qucp_sim::{run_noisy, ExecutionConfig, NoiseScaling};
//!
//! # fn main() -> Result<(), qucp_sim::SimError> {
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let dev = ibm::toronto();
//! let cfg = ExecutionConfig::default().with_shots(1024);
//! let counts = run_noisy(&bell, &[0, 1], &dev, &NoiseScaling::uniform(2), &cfg)?;
//! assert_eq!(counts.shots(), 1024);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alias;
mod counts;
pub mod density;
mod executor;
pub mod math;
pub mod metrics;
mod state;
mod unitaries;

pub use alias::AliasTable;
pub use counts::Counts;
pub use density::{apply_readout_confusion, exact_probabilities, DensityMatrix};
pub use executor::{
    auto_shard_count, clean_shot_probability, derive_shard_seed, gate_durations, ideal_outcome,
    noiseless_probabilities, run_ideal, run_noisy, run_noisy_with_idle, trivial_layout,
    ExecutionConfig, NoiseScaling, ShotParallelism, SimError, TrajectoryKernel, AUTO_MAX_SHARDS,
    AUTO_SHOTS_PER_SHARD,
};
pub use state::Statevector;
pub use unitaries::single_qubit_matrix;
