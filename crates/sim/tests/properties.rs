//! Property-based tests for the statevector engine, counts, and metrics.

use proptest::prelude::*;
use qucp_circuit::{Circuit, Gate};
use qucp_device::{Calibration, CrosstalkModel, Device, Topology};
use qucp_sim::{
    metrics, noiseless_probabilities, run_noisy, Counts, ExecutionConfig, NoiseScaling,
    ShotParallelism, Statevector, TrajectoryKernel,
};

fn arb_gate(width: usize) -> impl Strategy<Value = Gate> {
    let q = 0..width;
    let q2 = (0..width, 0..width).prop_filter("distinct", |(a, b)| a != b);
    let angle = -3.2..3.2f64;
    prop_oneof![
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::T),
        (q.clone(), angle.clone()).prop_map(|(q, a)| Gate::Ry(q, a)),
        (q, angle.clone()).prop_map(|(q, a)| Gate::Rz(q, a)),
        q2.clone().prop_map(|(a, b)| Gate::Cx(a, b)),
        q2.clone().prop_map(|(a, b)| Gate::Cz(a, b)),
        (q2, angle).prop_map(|((a, b), t)| Gate::Cp(a, b, t)),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..=4).prop_flat_map(|width| {
        proptest::collection::vec(arb_gate(width), 0..30).prop_map(move |gates| {
            let mut c = Circuit::new(width);
            for g in gates {
                c.push(g);
            }
            c
        })
    })
}

/// An all-to-all coupled device, so any random circuit is executable
/// on the trivial layout.
fn complete_device(n: usize) -> Device {
    let edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .collect();
    let t = Topology::new(n, &edges);
    let cal = Calibration::uniform(&t, 0.02, 3e-4, 0.01);
    Device::new("complete", t, cal, CrosstalkModel::none())
}

/// Distribution strategy: a normalized vector of length 4.
fn arb_distribution() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..1.0f64, 4).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        if s == 0.0 {
            v[0] = 1.0;
        } else {
            for x in &mut v {
                *x /= s;
            }
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn state_norm_preserved(c in arb_circuit()) {
        let sv = Statevector::from_circuit(&c);
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_circuit_restores_zero_state(c in arb_circuit()) {
        let round = c.compose(&c.inverse()).unwrap();
        let sv = Statevector::from_circuit(&round);
        prop_assert!((sv.probabilities()[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn probabilities_sum_to_one(c in arb_circuit()) {
        let p = noiseless_probabilities(&c);
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jsd_bounds_hold(p in arb_distribution(), q in arb_distribution()) {
        let v = metrics::jsd(&p, &q);
        prop_assert!(v >= -1e-12, "jsd = {v}");
        prop_assert!(v <= 1.0 + 1e-12, "jsd = {v}");
        // Symmetry.
        prop_assert!((v - metrics::jsd(&q, &p)).abs() < 1e-12);
        // Identity of indiscernibles (approximately).
        prop_assert!(metrics::jsd(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn tvd_and_hellinger_bounds(p in arb_distribution(), q in arb_distribution()) {
        let t = metrics::tvd(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&t));
        let h = metrics::hellinger_fidelity(&p, &q);
        prop_assert!((-1e-12..=1.0 + 1e-9).contains(&h));
    }

    #[test]
    fn kl_nonnegative(p in arb_distribution(), q in arb_distribution()) {
        // Gibbs' inequality (when finite).
        let d = metrics::kl_divergence(&p, &q);
        prop_assert!(d >= -1e-9);
    }

    #[test]
    fn counts_distribution_matches_records(outcomes in proptest::collection::vec(0usize..8, 1..200)) {
        let mut counts = Counts::new(3);
        for &o in &outcomes {
            counts.record(o);
        }
        prop_assert_eq!(counts.shots(), outcomes.len());
        let d = counts.distribution();
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for idx in 0..8 {
            let expected = outcomes.iter().filter(|&&o| o == idx).count();
            prop_assert_eq!(counts.count(idx), expected);
        }
    }

    #[test]
    fn expectation_z_within_bounds(outcomes in proptest::collection::vec(0usize..16, 1..200), mask in 0usize..16) {
        let mut counts = Counts::new(4);
        for &o in &outcomes {
            counts.record(o);
        }
        let e = counts.expectation_z(mask);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&e));
    }

    #[test]
    fn sharded_and_serial_agree_statistically(c in arb_circuit(), seed in 0u64..20) {
        // Serial and sharded execution sample the *same* noisy output
        // distribution through different trajectory streams: the
        // empirical probability of the ideal modal outcome (the PST
        // numerator) and the full distributions must agree within
        // sampling tolerance.
        let dev = complete_device(c.width());
        let scaling = NoiseScaling::uniform(c.gate_count());
        let layout: Vec<usize> = (0..c.width()).collect();
        let base = ExecutionConfig::default().with_shots(1024).with_seed(seed);
        let serial = run_noisy(&c, &layout, &dev, &scaling, &base).unwrap();
        let sharded = run_noisy(
            &c,
            &layout,
            &dev,
            &scaling,
            &base.with_parallelism(ShotParallelism::Sharded { shards: 4, threads: 2 }),
        )
        .unwrap();
        prop_assert_eq!(sharded.shots(), 1024);
        let ideal = noiseless_probabilities(&c);
        let target = (0..ideal.len())
            .max_by(|&a, &b| ideal[a].total_cmp(&ideal[b]))
            .unwrap();
        let ps = serial.probability(target);
        let ph = sharded.probability(target);
        prop_assert!((ps - ph).abs() < 0.1, "serial {ps} vs sharded {ph}");
        let tvd = metrics::tvd(&serial.distribution(), &sharded.distribution());
        prop_assert!(tvd < 0.15, "tvd {tvd}");
    }

    #[test]
    fn survival_and_replay_agree_statistically(c in arb_circuit(), seed in 0u64..20) {
        // The SurvivalSkip kernel samples the *same* noisy output
        // distribution as Replay through a different trajectory
        // stream: on random circuits the empirical probability of the
        // ideal modal outcome (the PST numerator) and the full
        // distributions must agree within sampling tolerance.
        let dev = complete_device(c.width());
        let scaling = NoiseScaling::uniform(c.gate_count());
        let layout: Vec<usize> = (0..c.width()).collect();
        let base = ExecutionConfig::default().with_shots(1024).with_seed(seed);
        let replay = run_noisy(&c, &layout, &dev, &scaling, &base).unwrap();
        let survival = run_noisy(
            &c,
            &layout,
            &dev,
            &scaling,
            &base.with_kernel(TrajectoryKernel::SurvivalSkip),
        )
        .unwrap();
        prop_assert_eq!(survival.shots(), 1024);
        let ideal = noiseless_probabilities(&c);
        let target = (0..ideal.len())
            .max_by(|&a, &b| ideal[a].total_cmp(&ideal[b]))
            .unwrap();
        let pr = replay.probability(target);
        let ps = survival.probability(target);
        prop_assert!((pr - ps).abs() < 0.1, "replay {pr} vs survival {ps}");
        let tvd = metrics::tvd(&replay.distribution(), &survival.distribution());
        prop_assert!(tvd < 0.15, "tvd {tvd}");
    }

    #[test]
    fn survival_sharded_is_pure_in_seed_and_shards(c in arb_circuit(), seed in 0u64..10) {
        // SurvivalSkip under sharding obeys the same purity contract
        // as Replay: the counts depend on (seed, shards) only.
        let dev = complete_device(c.width());
        let scaling = NoiseScaling::uniform(c.gate_count());
        let layout: Vec<usize> = (0..c.width()).collect();
        let base = ExecutionConfig::default()
            .with_shots(256)
            .with_seed(seed)
            .with_kernel(TrajectoryKernel::SurvivalSkip);
        let run_with = |threads| {
            let cfg = base.with_parallelism(ShotParallelism::Sharded { shards: 4, threads });
            run_noisy(&c, &layout, &dev, &scaling, &cfg).unwrap()
        };
        let reference = run_with(1);
        prop_assert_eq!(run_with(2), reference.clone());
        prop_assert_eq!(run_with(4), reference);
    }

    #[test]
    fn noisy_run_records_all_shots(seed in 0u64..50) {
        let t = Topology::line(3);
        let cal = Calibration::uniform(&t, 0.03, 3e-4, 0.02);
        let dev = Device::new("line", t, cal, CrosstalkModel::none());
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let cfg = ExecutionConfig::default().with_shots(256).with_seed(seed);
        let counts = run_noisy(&c, &[0, 1, 2], &dev, &NoiseScaling::uniform(3), &cfg).unwrap();
        prop_assert_eq!(counts.shots(), 256);
        prop_assert_eq!(counts.width(), 3);
    }

    #[test]
    fn stronger_noise_never_helps_ghz_pst(scale in 1.0..6.0f64) {
        let t = Topology::line(3);
        let cal = Calibration::uniform(&t, 0.02, 1e-4, 0.0);
        let dev = Device::new("line", t, cal, CrosstalkModel::none());
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 1).cx(1, 2);
        let cfg = ExecutionConfig {
            shots: 3000,
            seed: 99,
            gate_noise: true,
            readout_noise: false,
            idle_noise: false,
            ..ExecutionConfig::default()
        };
        let base = run_noisy(&c, &[0, 1, 2], &dev, &NoiseScaling::uniform(3), &cfg)
            .unwrap()
            .probability(0b111);
        let mut s = NoiseScaling::uniform(3);
        for i in 0..3 {
            s.amplify(i, scale);
        }
        let scaled = run_noisy(&c, &[0, 1, 2], &dev, &s, &cfg).unwrap().probability(0b111);
        // Allow sampling slack: scaled error probability must not beat the
        // baseline by more than statistical noise.
        prop_assert!(scaled <= base + 0.03, "base {base}, scaled {scaled}");
    }
}
