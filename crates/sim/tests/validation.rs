//! Validation of the Monte-Carlo trajectory sampler against the exact
//! density-matrix channel evaluation: both walk the same event stream,
//! so sampled counts must converge to the exact distribution.

use qucp_circuit::Circuit;
use qucp_device::{Calibration, CrosstalkModel, Device, Topology};
use qucp_sim::{exact_probabilities, metrics, run_noisy, ExecutionConfig, NoiseScaling};

fn device(n: usize, cx: f64, ro: f64) -> Device {
    let t = Topology::line(n);
    let cal = Calibration::uniform(&t, cx, 5e-4, ro);
    Device::new("val", t, cal, CrosstalkModel::none())
}

fn tvd_between(circuit: &Circuit, dev: &Device, scaling: &NoiseScaling, shots: usize) -> f64 {
    let cfg = ExecutionConfig::default()
        .with_shots(shots)
        .with_seed(0xA11CE);
    let counts = run_noisy(
        circuit,
        &(0..circuit.width()).collect::<Vec<_>>(),
        dev,
        scaling,
        &cfg,
    )
    .expect("sampler");
    let exact = exact_probabilities(
        circuit,
        &(0..circuit.width()).collect::<Vec<_>>(),
        dev,
        scaling,
        &cfg,
    )
    .expect("exact");
    metrics::tvd(&counts.distribution(), &exact)
}

#[test]
fn trajectories_converge_to_exact_distribution_bell() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    let dev = device(2, 0.05, 0.03);
    let tvd = tvd_between(&c, &dev, &NoiseScaling::uniform(2), 60_000);
    assert!(tvd < 0.02, "tvd = {tvd}");
}

#[test]
fn trajectories_converge_with_idle_and_swaps() {
    let mut c = Circuit::new(3);
    c.x(0).cx(0, 1).h(2);
    for _ in 0..10 {
        c.t(0);
    }
    c.swap(1, 2).cx(1, 2).ry(0, 0.8);
    let dev = device(3, 0.04, 0.02);
    let tvd = tvd_between(&c, &dev, &NoiseScaling::uniform(c.gate_count()), 60_000);
    assert!(tvd < 0.02, "tvd = {tvd}");
}

#[test]
fn trajectories_converge_under_crosstalk_scaling() {
    let mut c = Circuit::new(2);
    c.x(0);
    for _ in 0..4 {
        c.cx(0, 1);
    }
    let dev = device(2, 0.03, 0.01);
    let mut scaling = NoiseScaling::uniform(c.gate_count());
    for i in 1..c.gate_count() {
        scaling.amplify(i, 4.0);
    }
    let tvd = tvd_between(&c, &dev, &scaling, 60_000);
    assert!(tvd < 0.02, "tvd = {tvd}");
}

#[test]
fn exact_pst_matches_sampled_pst_on_deterministic_circuit() {
    // A Toffoli-style deterministic circuit on a line: the exact PST
    // from channels must sit within sampling distance of the trajectory
    // PST.
    let mut c = Circuit::new(3);
    c.x(0).x(1).ccx(0, 1, 2); // deterministic output |111⟩
                              // The CCX decomposition needs all three pairings: use a triangle.
    let t = Topology::ring(3);
    let cal = Calibration::uniform(&t, 0.03, 5e-4, 0.02);
    let dev = Device::new("tri", t, cal, CrosstalkModel::none());
    let layout = vec![0, 1, 2];
    let cfg = ExecutionConfig::default().with_shots(40_000).with_seed(3);
    let scaling = NoiseScaling::uniform(c.gate_count());
    let counts = run_noisy(&c, &layout, &dev, &scaling, &cfg).unwrap();
    let exact = exact_probabilities(&c, &layout, &dev, &scaling, &cfg).unwrap();
    let target = qucp_sim::ideal_outcome(&c).unwrap();
    assert_eq!(target, 0b111);
    let sampled_pst = counts.probability(target);
    let exact_pst = exact[target];
    assert!(
        (sampled_pst - exact_pst).abs() < 0.02,
        "sampled {sampled_pst} vs exact {exact_pst}"
    );
    // The full distributions agree too.
    assert!(metrics::tvd(&counts.distribution(), &exact) < 0.02);
}
