//! Verifies that the Table II benchmark library has the output structure
//! the paper's "Result" column claims, using the noiseless simulator.

use qucp_circuit::library::{self, ResultKind};
use qucp_sim::{ideal_outcome, noiseless_probabilities};

#[test]
fn deterministic_benchmarks_have_unit_probability_outcome() {
    for b in library::all() {
        let c = b.circuit();
        match b.result {
            ResultKind::Deterministic => {
                let outcome = ideal_outcome(&c);
                assert!(
                    outcome.is_some(),
                    "{} is classified deterministic but has no unit-probability outcome",
                    b.name
                );
            }
            ResultKind::Distribution => {
                assert!(
                    ideal_outcome(&c).is_none(),
                    "{} is classified as a distribution but is deterministic",
                    b.name
                );
            }
        }
    }
}

#[test]
fn adder_outputs_sum_and_carry() {
    // Inputs a = b = 1 (x on q0, q1). The carry network leaves
    // q0 = a = 1, q1 = a ⊕ b = 0, q2 = sum-propagate = 0 and sets the
    // carry q3 = maj = 1: outcome 0b1001.
    let c = library::by_name("adder").unwrap().circuit();
    let outcome = ideal_outcome(&c).unwrap();
    assert_eq!(outcome, 0b1001);
    assert_eq!(outcome >> 3 & 1, 1, "carry set");
    assert_eq!(outcome >> 2 & 1, 0, "sum a xor b = 0");
}

#[test]
fn fredkin_swaps_targets() {
    // Input |110⟩ (q0 = control = 1): targets swap, giving q1 = 0, q2 = 1.
    let c = library::by_name("fredkin").unwrap().circuit();
    let outcome = ideal_outcome(&c).unwrap();
    assert_eq!(outcome, 0b101);
}

#[test]
fn distribution_benchmarks_have_spread_support() {
    for b in library::all() {
        if b.result == ResultKind::Distribution {
            let p = noiseless_probabilities(&b.circuit());
            let support = p.iter().filter(|&&x| x > 1e-6).count();
            assert!(
                support >= 3,
                "{} should produce a spread distribution, support = {support}",
                b.name
            );
        }
    }
}

#[test]
fn probabilities_normalized_for_all_benchmarks() {
    for b in library::all() {
        let p = noiseless_probabilities(&b.circuit());
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{} norm {total}", b.name);
    }
}

#[test]
fn w_state_is_uniform_over_one_hot_strings() {
    for n in 2..=5 {
        let p = noiseless_probabilities(&library::w_state(n));
        for (idx, &prob) in p.iter().enumerate() {
            if idx.count_ones() == 1 {
                assert!(
                    (prob - 1.0 / n as f64).abs() < 1e-9,
                    "n={n}, idx={idx:b}: {prob}"
                );
            } else {
                assert!(prob < 1e-9, "n={n}, idx={idx:b}: {prob}");
            }
        }
    }
}

#[test]
fn bernstein_vazirani_recovers_secret() {
    for secret in [0b0000, 0b1011, 0b1111, 0b0100] {
        let c = library::bernstein_vazirani(4, secret);
        let outcome = ideal_outcome(&c).expect("BV is deterministic");
        // Data qubits hold the secret; the ancilla returns to |0⟩.
        assert_eq!(outcome & 0b1111, secret, "secret {secret:04b}");
        assert_eq!(outcome >> 4, 0, "ancilla clean for secret {secret:04b}");
    }
}

#[test]
fn qaoa_ring_distribution_is_symmetric_under_bit_flip() {
    // MaxCut on a ring is invariant under global bit flip: the QAOA state
    // assigns equal probability to each cut and its complement.
    let c = library::qaoa_maxcut_ring(4, 0.4, 0.9);
    let p = noiseless_probabilities(&c);
    let mask = (1 << 4) - 1;
    for idx in 0..p.len() {
        assert!(
            (p[idx] - p[idx ^ mask]).abs() < 1e-9,
            "asymmetry at {idx:04b}"
        );
    }
}
