//! Calibration drift: deterministic processes that age a device's
//! calibration between recalibrations.
//!
//! Real IBM chips are recalibrated roughly daily, and their gate and
//! readout error rates *drift* between calibrations — both the source
//! paper and the multi-programming mechanism it builds on select
//! partitions from the *current* calibration snapshot, and co-execution
//! quality degrades when the noise picture goes stale (Ohkura et al.,
//! arXiv:2112.07091). A [`DriftModel`] makes that process explicit: a
//! pure, seeded function from a step index to an in-place perturbation
//! of a [`Calibration`] and its [`CrosstalkModel`], so a runtime can
//! replay the exact same noise trajectory on every run.
//!
//! Time is divided into fixed *steps* ([`DriftModel::steps_at`] maps a
//! simulated timestamp to the number of completed steps); each step is
//! either a [`DriftEvent::Drift`] (apply [`DriftModel::apply_step`]) or
//! a [`DriftEvent::Recalibrate`] — the daily reset, on which the
//! runtime restores the device's baseline snapshot instead of
//! perturbing further. [`GaussianWalk`] is the reference
//! implementation: a seeded multiplicative (log-normal) random walk on
//! CNOT / one-qubit / readout errors and crosstalk gammas.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calibration::Calibration;
use crate::crosstalk::CrosstalkModel;

/// What a drift step does to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftEvent {
    /// The calibration drifts: the runtime applies
    /// [`DriftModel::apply_step`].
    Drift,
    /// The device is recalibrated: the runtime restores the baseline
    /// calibration snapshot (the step's `apply_step` is *not* called).
    Recalibrate,
}

/// A deterministic calibration-drift process.
///
/// Implementations must be pure functions of `(self, step,
/// device_salt)` and the current calibration state — never of wall
/// clock, thread timing or call count — so that a fleet's noise
/// trajectory is bit-for-bit reproducible and serial == concurrent
/// execution holds under drift. Drifted values must stay **finite**
/// (clamp like [`GaussianWalk`] does); a runtime applying a step that
/// produces NaN or infinity rolls the step back and rejects it.
pub trait DriftModel: Send + Sync + fmt::Debug {
    /// Number of completed drift steps at simulated time `now` (ns).
    /// Must be monotone in `now`; non-positive or NaN times map to 0.
    fn steps_at(&self, now: f64) -> u64;

    /// What step `step` (1-based) does. Defaults to plain drift.
    fn event_at(&self, _step: u64) -> DriftEvent {
        DriftEvent::Drift
    }

    /// Applies drift step `step` to one device's calibration state and
    /// reports whether anything actually changed (a `false` return
    /// tells the runtime to skip the epoch bump and the cache
    /// invalidation). `device_salt` distinguishes the devices of a
    /// fleet sharing one model, so twins drift along independent
    /// trajectories.
    fn apply_step(
        &self,
        step: u64,
        device_salt: u64,
        calibration: &mut Calibration,
        crosstalk: &mut CrosstalkModel,
    ) -> bool;
}

/// The SplitMix64 output mixing function (Steele, Lea & Flood 2014) —
/// the workspace's one canonical copy, shared with the trajectory
/// engine's shard-seed derivation (`qucp_sim::derive_shard_seed`).
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of drift step `step` on the device salted `salt`:
/// `(seed, step, salt)` pass through two SplitMix64 rounds so that
/// neighbouring steps and neighbouring devices never share a stream.
fn derive_step_seed(seed: u64, step: u64, salt: u64) -> u64 {
    splitmix64(
        splitmix64(seed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(step))
            .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(salt.wrapping_add(1))),
    )
}

/// The interval-to-step mapping drift models share: the number of
/// whole `interval_ns` periods completed by simulated time `now`.
/// NaN/non-positive times and degenerate (non-positive or non-finite)
/// intervals map to zero steps; counts past `u64::MAX` saturate.
pub fn interval_steps(now: f64, interval_ns: f64) -> u64 {
    let ticking = interval_ns.is_finite() && interval_ns > 0.0 && now > 0.0;
    if !ticking {
        return 0;
    }
    let steps = (now / interval_ns).floor();
    if steps >= u64::MAX as f64 {
        u64::MAX
    } else {
        steps as u64
    }
}

/// A standard-normal draw via Box–Muller (the vendored `rand` has no
/// normal distribution). Deterministic: exactly two uniform draws.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]: ln never sees 0
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Floors/caps applied after every perturbation so drifted values stay
/// physical: error rates in `[1e-6, 0.45]` (matching the synthesis
/// cap), gammas in `[1.0, 64.0]` (crosstalk amplifies, never helps).
const ERROR_FLOOR: f64 = 1e-6;
const ERROR_CAP: f64 = 0.45;
const GAMMA_CAP: f64 = 64.0;

/// A seeded multiplicative Gaussian random walk on a device's error
/// landscape — the reference [`DriftModel`].
///
/// One step fires every [`interval_ns`](GaussianWalk::interval_ns) of
/// simulated time. Each step multiplies every CNOT error by
/// `exp(cx_sigma · z)` with `z ~ N(0, 1)` (and likewise the one-qubit
/// errors, readout errors and crosstalk gammas with their own sigmas),
/// clamped to physical ranges — a log-normal walk, so rates stay
/// positive and relative drift magnitude is scale-free. With
/// [`recalibrate_every`](GaussianWalk::recalibrate_every)` = Some(n)`,
/// every `n`-th step is a [`DriftEvent::Recalibrate`] instead: the
/// runtime resets the device to its baseline snapshot, modeling the
/// daily recalibration cycle of real chips.
///
/// All sigmas zero makes every step a no-op ([`apply_step`](DriftModel::apply_step)
/// returns `false` without touching the state), which a frozen-fleet
/// equivalence test can rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianWalk {
    /// Base seed of the walk; step `k` on device salt `d` draws from a
    /// stream derived from `(seed, k, d)` only.
    pub seed: u64,
    /// Simulated nanoseconds per drift step (must be positive; a
    /// non-positive or non-finite interval yields zero steps).
    pub interval_ns: f64,
    /// Per-step log-normal sigma on CNOT errors.
    pub cx_sigma: f64,
    /// Per-step log-normal sigma on one-qubit gate errors.
    pub sq_sigma: f64,
    /// Per-step log-normal sigma on readout errors.
    pub readout_sigma: f64,
    /// Per-step log-normal sigma on crosstalk gammas (applied to the
    /// excess `γ − 1`, so uncharacterized-equivalent pairs stay at 1).
    pub gamma_sigma: f64,
    /// Every `n`-th step is a recalibration reset instead of a drift
    /// perturbation (`None` = never recalibrate).
    pub recalibrate_every: Option<u64>,
}

impl GaussianWalk {
    /// A walk with the default drift magnitudes: 8% per-step sigma on
    /// CNOT/readout errors, 5% on one-qubit errors, 4% on gammas, no
    /// recalibration resets.
    pub fn new(seed: u64, interval_ns: f64) -> Self {
        GaussianWalk {
            seed,
            interval_ns,
            cx_sigma: 0.08,
            sq_sigma: 0.05,
            readout_sigma: 0.08,
            gamma_sigma: 0.04,
            recalibrate_every: None,
        }
    }

    /// The same walk with every sigma zeroed — steps still tick (and
    /// recalibration resets still fire if configured) but drift never
    /// changes a value. The frozen-fleet equivalence tests pin that a
    /// service driven by this walk is bit-for-bit a frozen service.
    #[must_use]
    pub fn frozen(mut self) -> Self {
        self.cx_sigma = 0.0;
        self.sq_sigma = 0.0;
        self.readout_sigma = 0.0;
        self.gamma_sigma = 0.0;
        self
    }

    /// Sets the recalibration cycle: every `steps`-th step resets the
    /// device to its baseline snapshot.
    #[must_use]
    pub fn with_recalibration_every(mut self, steps: u64) -> Self {
        self.recalibrate_every = Some(steps);
        self
    }

    fn is_noop(&self) -> bool {
        self.cx_sigma == 0.0
            && self.sq_sigma == 0.0
            && self.readout_sigma == 0.0
            && self.gamma_sigma == 0.0
    }
}

impl DriftModel for GaussianWalk {
    fn steps_at(&self, now: f64) -> u64 {
        interval_steps(now, self.interval_ns)
    }

    fn event_at(&self, step: u64) -> DriftEvent {
        match self.recalibrate_every {
            Some(n) if n > 0 && step.is_multiple_of(n) => DriftEvent::Recalibrate,
            _ => DriftEvent::Drift,
        }
    }

    fn apply_step(
        &self,
        step: u64,
        device_salt: u64,
        calibration: &mut Calibration,
        crosstalk: &mut CrosstalkModel,
    ) -> bool {
        if self.is_noop() {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(derive_step_seed(self.seed, step, device_salt));
        let mut changed = false;
        let mut perturb = |value: &mut f64, sigma: f64, floor: f64, cap: f64| {
            // Draw even when sigma is 0 so enabling one channel never
            // reshuffles another channel's stream.
            let z = standard_normal(&mut rng);
            if sigma != 0.0 {
                let next = (*value * (sigma * z).exp()).clamp(floor, cap);
                if next != *value {
                    *value = next;
                    changed = true;
                }
            }
        };
        for (_, e) in calibration.cx_errors_mut() {
            perturb(e, self.cx_sigma, ERROR_FLOOR, ERROR_CAP);
        }
        for e in calibration.sq_errors_mut() {
            perturb(e, self.sq_sigma, ERROR_FLOOR, ERROR_CAP);
        }
        for e in calibration.readout_errors_mut() {
            perturb(e, self.readout_sigma, ERROR_FLOOR, ERROR_CAP);
        }
        for (_, g) in crosstalk.gammas_mut() {
            // Walk the excess over 1 so γ can approach (never cross)
            // the crosstalk-free floor.
            let z = standard_normal(&mut rng);
            if self.gamma_sigma != 0.0 {
                let next = (1.0 + (*g - 1.0) * (self.gamma_sigma * z).exp()).clamp(1.0, GAMMA_CAP);
                if next != *g {
                    *g = next;
                    changed = true;
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::CrosstalkProfile;

    fn state() -> (Calibration, CrosstalkModel) {
        let t = Topology::grid(3, 3);
        (
            Calibration::synthesize(&t, 11, &crate::NoiseProfile::default()),
            CrosstalkModel::synthesize(&t, 12, &CrosstalkProfile::default()),
        )
    }

    #[test]
    fn steps_are_deterministic_and_salted() {
        let walk = GaussianWalk::new(7, 1000.0);
        let (base_cal, base_xt) = state();
        let run = |step: u64, salt: u64| {
            let (mut cal, mut xt) = (base_cal.clone(), base_xt.clone());
            assert!(walk.apply_step(step, salt, &mut cal, &mut xt));
            (cal, xt)
        };
        assert_eq!(run(1, 0), run(1, 0), "same step, same salt: identical");
        assert_ne!(run(1, 0), run(1, 1), "twin devices drift independently");
        assert_ne!(run(1, 0), run(2, 0), "steps draw fresh streams");
    }

    #[test]
    fn zero_sigma_walk_never_changes_anything() {
        let walk = GaussianWalk::new(7, 1000.0).frozen();
        let (mut cal, mut xt) = state();
        let (snap_cal, snap_xt) = (cal.clone(), xt.clone());
        for step in 1..=10 {
            assert!(!walk.apply_step(step, 0, &mut cal, &mut xt));
        }
        assert_eq!(cal, snap_cal);
        assert_eq!(xt, snap_xt);
    }

    #[test]
    fn drifted_values_stay_physical_and_finite() {
        let mut walk = GaussianWalk::new(3, 1000.0);
        walk.cx_sigma = 1.5; // violent drift to stress the clamps
        walk.readout_sigma = 1.5;
        walk.gamma_sigma = 1.5;
        let (mut cal, mut xt) = state();
        for step in 1..=50 {
            walk.apply_step(step, 4, &mut cal, &mut xt);
        }
        assert!(cal.all_finite());
        assert!(xt.all_finite());
        for (l, _) in cal.clone().cx_errors_mut() {
            let e = cal.cx_error(l);
            assert!((ERROR_FLOOR..=ERROR_CAP).contains(&e), "cx {e}");
        }
        for (p, g) in xt.pairs() {
            assert!((1.0..=GAMMA_CAP).contains(&g), "{p:?} gamma {g}");
        }
    }

    #[test]
    fn steps_at_floor_semantics() {
        let walk = GaussianWalk::new(0, 1000.0);
        assert_eq!(walk.steps_at(-5.0), 0);
        assert_eq!(walk.steps_at(0.0), 0);
        assert_eq!(walk.steps_at(999.9), 0);
        assert_eq!(walk.steps_at(1000.0), 1);
        assert_eq!(walk.steps_at(3500.0), 3);
        assert_eq!(walk.steps_at(f64::NAN), 0);
        let degenerate = GaussianWalk::new(0, 0.0);
        assert_eq!(degenerate.steps_at(1e9), 0, "zero interval never steps");
    }

    #[test]
    fn recalibration_cycle_schedule() {
        let walk = GaussianWalk::new(0, 1000.0).with_recalibration_every(3);
        let events: Vec<DriftEvent> = (1..=7).map(|s| walk.event_at(s)).collect();
        use DriftEvent::*;
        assert_eq!(
            events,
            vec![Drift, Drift, Recalibrate, Drift, Drift, Recalibrate, Drift]
        );
        assert_eq!(GaussianWalk::new(0, 1.0).event_at(1000), Drift);
    }

    #[test]
    fn enabling_one_channel_does_not_reshuffle_another() {
        // cx perturbations must be identical whether or not readout
        // drift is enabled: each entry consumes its draws regardless.
        let mut only_cx = GaussianWalk::new(5, 1000.0).frozen();
        only_cx.cx_sigma = 0.1;
        let mut both = only_cx;
        both.readout_sigma = 0.1;
        let (base_cal, base_xt) = state();
        let (mut cal_a, mut xt_a) = (base_cal.clone(), base_xt.clone());
        let (mut cal_b, mut xt_b) = (base_cal.clone(), base_xt.clone());
        only_cx.apply_step(1, 0, &mut cal_a, &mut xt_a);
        both.apply_step(1, 0, &mut cal_b, &mut xt_b);
        let links: Vec<_> = base_cal.links_by_reliability();
        for (l, _) in links {
            assert_eq!(cal_a.cx_error(l), cal_b.cx_error(l));
        }
    }
}
