//! Device calibration data: gate/readout error rates, coherence times and
//! gate durations.
//!
//! This mirrors the content of IBM's daily `properties()` snapshot that
//! the paper's partitioning and mapping policies consume (Fig. 1 of the
//! paper prints the CNOT and readout error rates of IBM Q 16 Melbourne).
//! Real calibration snapshots are not available offline, so calibrations
//! are synthesized from a seeded RNG with magnitudes matched to the
//! figures in the paper; see [`NoiseProfile`].

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::link::Link;
use crate::topology::Topology;

/// Magnitude ranges used when synthesizing a calibration.
///
/// Defaults match the regimes printed in the paper's Fig. 1 (CNOT error
/// ≈ 1–6×10⁻², readout ≈ 1–8×10⁻², one-qubit error a few 10⁻⁴).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseProfile {
    /// Uniform range of baseline CNOT error rates.
    pub cx_error: (f64, f64),
    /// Fraction of links further degraded (the "red" links of Fig. 1).
    pub bad_link_fraction: f64,
    /// Multiplier range applied to degraded links.
    pub bad_link_factor: (f64, f64),
    /// Uniform range of one-qubit gate error rates.
    pub sq_error: (f64, f64),
    /// Uniform range of readout error rates.
    pub readout_error: (f64, f64),
    /// Fraction of qubits with degraded readout.
    pub bad_readout_fraction: f64,
    /// Multiplier range applied to degraded readout qubits.
    pub bad_readout_factor: (f64, f64),
    /// Uniform range of T1 relaxation times, nanoseconds.
    pub t1: (f64, f64),
    /// Uniform range of T2 dephasing times, nanoseconds (clamped to 2·T1).
    pub t2: (f64, f64),
    /// Uniform range of CNOT durations, nanoseconds.
    pub cx_duration: (f64, f64),
    /// Duration of one-qubit gates, nanoseconds.
    pub sq_duration: f64,
    /// Duration of measurement, nanoseconds.
    pub readout_duration: f64,
}

impl Default for NoiseProfile {
    fn default() -> Self {
        NoiseProfile {
            cx_error: (0.006, 0.040),
            bad_link_fraction: 0.18,
            bad_link_factor: (1.8, 3.0),
            sq_error: (2.0e-4, 8.0e-4),
            readout_error: (0.008, 0.050),
            bad_readout_fraction: 0.18,
            bad_readout_factor: (2.0, 3.5),
            t1: (60_000.0, 120_000.0),
            t2: (40_000.0, 140_000.0),
            cx_duration: (250.0, 450.0),
            sq_duration: 35.0,
            readout_duration: 700.0,
        }
    }
}

/// A calibration snapshot for a device.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    cx_error: BTreeMap<Link, f64>,
    cx_duration: BTreeMap<Link, f64>,
    sq_error: Vec<f64>,
    readout_error: Vec<f64>,
    t1: Vec<f64>,
    t2: Vec<f64>,
    sq_duration: f64,
    readout_duration: f64,
}

impl Calibration {
    /// Synthesizes a calibration for `topology` from `profile`, seeded for
    /// reproducibility.
    pub fn synthesize(topology: &Topology, seed: u64, profile: &NoiseProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = topology.num_qubits();
        let mut cx_error = BTreeMap::new();
        let mut cx_duration = BTreeMap::new();
        for &link in topology.links() {
            let mut e = rng.gen_range(profile.cx_error.0..profile.cx_error.1);
            if rng.gen_bool(profile.bad_link_fraction) {
                e *= rng.gen_range(profile.bad_link_factor.0..profile.bad_link_factor.1);
            }
            cx_error.insert(link, e.min(0.45));
            cx_duration.insert(
                link,
                rng.gen_range(profile.cx_duration.0..profile.cx_duration.1),
            );
        }
        let sq_error: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(profile.sq_error.0..profile.sq_error.1))
            .collect();
        let readout_error: Vec<f64> = (0..n)
            .map(|_| {
                let mut e = rng.gen_range(profile.readout_error.0..profile.readout_error.1);
                if rng.gen_bool(profile.bad_readout_fraction) {
                    e *= rng.gen_range(profile.bad_readout_factor.0..profile.bad_readout_factor.1);
                }
                e.min(0.45)
            })
            .collect();
        let t1: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(profile.t1.0..profile.t1.1))
            .collect();
        let t2: Vec<f64> = t1
            .iter()
            .map(|&t1q| rng.gen_range(profile.t2.0..profile.t2.1).min(2.0 * t1q))
            .collect();
        Calibration {
            cx_error,
            cx_duration,
            sq_error,
            readout_error,
            t1,
            t2,
            sq_duration: profile.sq_duration,
            readout_duration: profile.readout_duration,
        }
    }

    /// Builds a calibration with uniform values (useful in tests where the
    /// noise landscape must be flat).
    pub fn uniform(topology: &Topology, cx_error: f64, sq_error: f64, readout_error: f64) -> Self {
        let n = topology.num_qubits();
        let profile = NoiseProfile::default();
        Calibration {
            cx_error: topology.links().iter().map(|&l| (l, cx_error)).collect(),
            cx_duration: topology.links().iter().map(|&l| (l, 300.0)).collect(),
            sq_error: vec![sq_error; n],
            readout_error: vec![readout_error; n],
            t1: vec![90_000.0; n],
            t2: vec![80_000.0; n],
            sq_duration: profile.sq_duration,
            readout_duration: profile.readout_duration,
        }
    }

    /// Overrides the CNOT error of one link (used to transcribe Fig. 1's
    /// Melbourne values and in tests).
    ///
    /// # Panics
    ///
    /// Panics if the link is not part of the calibration.
    pub fn set_cx_error(&mut self, link: Link, error: f64) {
        let slot = self
            .cx_error
            .get_mut(&link)
            .unwrap_or_else(|| panic!("link {link} not in calibration"));
        *slot = error;
    }

    /// Overrides the readout error of one qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_readout_error(&mut self, q: usize, error: f64) {
        self.readout_error[q] = error;
    }

    /// CNOT error rate on a link.
    ///
    /// # Panics
    ///
    /// Panics if the link is not part of the topology's link set.
    pub fn cx_error(&self, link: Link) -> f64 {
        *self
            .cx_error
            .get(&link)
            .unwrap_or_else(|| panic!("link {link} not in calibration"))
    }

    /// CNOT duration on a link in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the link is not part of the topology's link set.
    pub fn cx_duration(&self, link: Link) -> f64 {
        *self
            .cx_duration
            .get(&link)
            .unwrap_or_else(|| panic!("link {link} not in calibration"))
    }

    /// One-qubit gate error rate of qubit `q`.
    pub fn sq_error(&self, q: usize) -> f64 {
        self.sq_error[q]
    }

    /// Readout (measurement) error rate of qubit `q`.
    pub fn readout_error(&self, q: usize) -> f64 {
        self.readout_error[q]
    }

    /// T1 relaxation time of qubit `q` in nanoseconds.
    pub fn t1(&self, q: usize) -> f64 {
        self.t1[q]
    }

    /// T2 dephasing time of qubit `q` in nanoseconds.
    pub fn t2(&self, q: usize) -> f64 {
        self.t2[q]
    }

    /// One-qubit gate duration in nanoseconds.
    pub fn sq_duration(&self) -> f64 {
        self.sq_duration
    }

    /// Readout duration in nanoseconds.
    pub fn readout_duration(&self) -> f64 {
        self.readout_duration
    }

    /// Number of calibrated qubits.
    pub fn num_qubits(&self) -> usize {
        self.sq_error.len()
    }

    /// Mean CNOT error over all links.
    pub fn mean_cx_error(&self) -> f64 {
        if self.cx_error.is_empty() {
            return 0.0;
        }
        self.cx_error.values().sum::<f64>() / self.cx_error.len() as f64
    }

    /// Mean readout error over all qubits.
    pub fn mean_readout_error(&self) -> f64 {
        self.readout_error.iter().sum::<f64>() / self.readout_error.len() as f64
    }

    /// Cheap calibration-quality prior of a program with `cx_count`
    /// two-qubit gates measuring `width` qubits: the expected error
    /// mass under *mean* calibration, `cx_count · mean CNOT error +
    /// width · mean readout error`. It deliberately ignores *where* on
    /// the chip the program lands — that is the partition scorer's job
    /// — which makes it the right fallback for a fleet router that
    /// needs to rank a chip before (or without) paying a partition
    /// probe on it.
    pub fn error_mass(&self, cx_count: usize, width: usize) -> f64 {
        cx_count as f64 * self.mean_cx_error() + width as f64 * self.mean_readout_error()
    }

    /// Mutable access to every link's CNOT error, in canonical link
    /// order — the iteration a [`DriftModel`](crate::DriftModel)
    /// perturbs, deterministic because the underlying map is ordered.
    pub fn cx_errors_mut(&mut self) -> impl Iterator<Item = (Link, &mut f64)> {
        self.cx_error.iter_mut().map(|(&l, e)| (l, e))
    }

    /// Mutable access to the one-qubit gate errors, indexed by qubit.
    pub fn sq_errors_mut(&mut self) -> &mut [f64] {
        &mut self.sq_error
    }

    /// Mutable access to the readout errors, indexed by qubit.
    pub fn readout_errors_mut(&mut self) -> &mut [f64] {
        &mut self.readout_error
    }

    /// Whether every stored entry (errors, durations, coherence times)
    /// is finite — the validity gate a live-fleet recalibration API
    /// checks before letting a snapshot near the planning caches.
    pub fn all_finite(&self) -> bool {
        self.cx_error.values().all(|e| e.is_finite())
            && self.cx_duration.values().all(|d| d.is_finite())
            && self.sq_error.iter().all(|e| e.is_finite())
            && self.readout_error.iter().all(|e| e.is_finite())
            && self.t1.iter().all(|t| t.is_finite())
            && self.t2.iter().all(|t| t.is_finite())
            && self.sq_duration.is_finite()
            && self.readout_duration.is_finite()
    }

    /// Whether this snapshot calibrates every link of `topology` (and
    /// the same qubit count) — required before swapping it into a
    /// device, or the per-link accessors would panic mid-plan.
    pub fn covers(&self, topology: &Topology) -> bool {
        self.num_qubits() == topology.num_qubits()
            && topology
                .links()
                .iter()
                .all(|l| self.cx_error.contains_key(l) && self.cx_duration.contains_key(l))
    }

    /// Links sorted by ascending CNOT error (most reliable first).
    pub fn links_by_reliability(&self) -> Vec<(Link, f64)> {
        let mut v: Vec<(Link, f64)> = self.cx_error.iter().map(|(&l, &e)| (l, e)).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::grid(3, 3)
    }

    #[test]
    fn synthesize_is_deterministic() {
        let t = topo();
        let p = NoiseProfile::default();
        let a = Calibration::synthesize(&t, 42, &p);
        let b = Calibration::synthesize(&t, 42, &p);
        assert_eq!(a, b);
        let c = Calibration::synthesize(&t, 43, &p);
        assert_ne!(a, c);
    }

    #[test]
    fn synthesized_values_in_range() {
        let t = topo();
        let p = NoiseProfile::default();
        let cal = Calibration::synthesize(&t, 7, &p);
        for &l in t.links() {
            let e = cal.cx_error(l);
            assert!(e >= p.cx_error.0);
            assert!(e <= p.cx_error.1 * p.bad_link_factor.1);
            let d = cal.cx_duration(l);
            assert!(d >= p.cx_duration.0 && d <= p.cx_duration.1);
        }
        for q in 0..t.num_qubits() {
            assert!(cal.sq_error(q) >= p.sq_error.0 && cal.sq_error(q) <= p.sq_error.1);
            assert!(cal.readout_error(q) >= p.readout_error.0);
            assert!(cal.t2(q) <= 2.0 * cal.t1(q) + 1e-9);
        }
    }

    #[test]
    fn uniform_calibration() {
        let t = topo();
        let cal = Calibration::uniform(&t, 0.02, 3e-4, 0.03);
        assert_eq!(cal.cx_error(Link::new(0, 1)), 0.02);
        assert_eq!(cal.sq_error(5), 3e-4);
        assert_eq!(cal.readout_error(8), 0.03);
        assert!((cal.mean_cx_error() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn setters_override() {
        let t = topo();
        let mut cal = Calibration::uniform(&t, 0.02, 3e-4, 0.03);
        cal.set_cx_error(Link::new(0, 1), 0.059);
        cal.set_readout_error(4, 0.08);
        assert_eq!(cal.cx_error(Link::new(0, 1)), 0.059);
        assert_eq!(cal.readout_error(4), 0.08);
    }

    #[test]
    #[should_panic(expected = "not in calibration")]
    fn unknown_link_panics() {
        let t = topo();
        let cal = Calibration::uniform(&t, 0.02, 3e-4, 0.03);
        cal.cx_error(Link::new(0, 8));
    }

    #[test]
    fn reliability_ordering() {
        let t = Topology::line(3);
        let mut cal = Calibration::uniform(&t, 0.02, 3e-4, 0.03);
        cal.set_cx_error(Link::new(0, 1), 0.05);
        let order = cal.links_by_reliability();
        assert_eq!(order[0].0, Link::new(1, 2));
        assert_eq!(order[1].0, Link::new(0, 1));
    }

    #[test]
    fn mean_errors() {
        let t = Topology::line(3);
        let mut cal = Calibration::uniform(&t, 0.02, 3e-4, 0.04);
        cal.set_cx_error(Link::new(0, 1), 0.04);
        assert!((cal.mean_cx_error() - 0.03).abs() < 1e-12);
        assert!((cal.mean_readout_error() - 0.04).abs() < 1e-12);
        // error_mass = cx_count·mean_cx + width·mean_readout.
        assert!((cal.error_mass(10, 3) - (10.0 * 0.03 + 3.0 * 0.04)).abs() < 1e-12);
        assert_eq!(cal.error_mass(0, 0), 0.0);
    }
}
