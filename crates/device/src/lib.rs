//! # qucp-device
//!
//! NISQ device models for the QuCP reproduction: coupling topologies,
//! calibration snapshots, and the crosstalk ground truth that
//! Simultaneous Randomized Benchmarking estimates.
//!
//! The paper evaluates on IBM Q 16 Melbourne, IBM Q 27 Toronto and IBM Q
//! 65 Manhattan; their coupling maps are reconstructed in [`ibm`], with
//! calibration magnitudes seeded to match the ranges printed in the
//! paper's figures.
//!
//! ```
//! use qucp_device::{ibm, Link};
//!
//! let dev = ibm::manhattan();
//! assert_eq!(dev.num_qubits(), 65);
//! let pairs = dev.topology().one_hop_link_pairs();
//! assert!(!pairs.is_empty());
//! let gamma = dev.crosstalk().gamma(Link::new(0, 1), Link::new(2, 3));
//! assert!(gamma >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calibration;
mod crosstalk;
mod device;
mod drift;
pub mod ibm;
mod link;
mod topology;

pub use calibration::{Calibration, NoiseProfile};
pub use crosstalk::{CrosstalkModel, CrosstalkProfile};
pub use device::Device;
pub use drift::{interval_steps, splitmix64, DriftEvent, DriftModel, GaussianWalk};
pub use link::{Link, LinkPair};
pub use topology::{Topology, UNREACHABLE};
