//! Undirected coupling links between physical qubits.

use std::fmt;

/// An undirected coupling-graph edge between two physical qubits.
///
/// The endpoints are stored in ascending order so a `Link` can be used as a
/// canonical map key regardless of the direction a CNOT is applied in.
///
/// ```
/// use qucp_device::Link;
/// assert_eq!(Link::new(3, 1), Link::new(1, 3));
/// assert_eq!(Link::new(1, 3).low(), 1);
/// assert_eq!(Link::new(1, 3).high(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Link {
    low: usize,
    high: usize,
}

impl Link {
    /// Creates a link between two distinct qubits (order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: usize, b: usize) -> Self {
        assert!(a != b, "a link needs two distinct qubits, got {a} twice");
        Link {
            low: a.min(b),
            high: a.max(b),
        }
    }

    /// The smaller endpoint.
    pub fn low(&self) -> usize {
        self.low
    }

    /// The larger endpoint.
    pub fn high(&self) -> usize {
        self.high
    }

    /// Both endpoints as a `(low, high)` tuple.
    pub fn endpoints(&self) -> (usize, usize) {
        (self.low, self.high)
    }

    /// Whether `q` is one of the endpoints.
    pub fn touches(&self, q: usize) -> bool {
        self.low == q || self.high == q
    }

    /// Whether the two links share an endpoint.
    pub fn shares_qubit(&self, other: &Link) -> bool {
        other.touches(self.low) || other.touches(self.high)
    }

    /// The endpoint that is not `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not an endpoint of the link.
    pub fn other(&self, q: usize) -> usize {
        if q == self.low {
            self.high
        } else if q == self.high {
            self.low
        } else {
            panic!("qubit {q} is not an endpoint of {self}")
        }
    }
}

impl From<(usize, usize)> for Link {
    fn from((a, b): (usize, usize)) -> Self {
        Link::new(a, b)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.low, self.high)
    }
}

/// An unordered pair of links, canonically ordered for use as a map key.
///
/// Used to index crosstalk strengths γ(e₁, e₂) between simultaneously
/// driven CNOTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkPair {
    first: Link,
    second: Link,
}

impl LinkPair {
    /// Creates a canonical unordered pair of links.
    pub fn new(a: Link, b: Link) -> Self {
        if a <= b {
            LinkPair {
                first: a,
                second: b,
            }
        } else {
            LinkPair {
                first: b,
                second: a,
            }
        }
    }

    /// The lexicographically smaller link.
    pub fn first(&self) -> Link {
        self.first
    }

    /// The lexicographically larger link.
    pub fn second(&self) -> Link {
        self.second
    }

    /// Whether the two links of the pair are disjoint (no shared qubit).
    pub fn is_disjoint(&self) -> bool {
        !self.first.shares_qubit(&self.second)
    }
}

impl fmt::Display for LinkPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_normalizes_order() {
        let l = Link::new(5, 2);
        assert_eq!(l.low(), 2);
        assert_eq!(l.high(), 5);
        assert_eq!(l.endpoints(), (2, 5));
        assert_eq!(Link::new(2, 5), l);
    }

    #[test]
    #[should_panic(expected = "two distinct qubits")]
    fn link_rejects_self_loop() {
        Link::new(3, 3);
    }

    #[test]
    fn link_touches_and_other() {
        let l = Link::new(1, 4);
        assert!(l.touches(1));
        assert!(l.touches(4));
        assert!(!l.touches(2));
        assert_eq!(l.other(1), 4);
        assert_eq!(l.other(4), 1);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn link_other_panics_for_non_member() {
        Link::new(1, 4).other(2);
    }

    #[test]
    fn shares_qubit() {
        assert!(Link::new(0, 1).shares_qubit(&Link::new(1, 2)));
        assert!(!Link::new(0, 1).shares_qubit(&Link::new(2, 3)));
    }

    #[test]
    fn pair_canonical_order() {
        let a = Link::new(0, 1);
        let b = Link::new(2, 3);
        assert_eq!(LinkPair::new(a, b), LinkPair::new(b, a));
        assert_eq!(LinkPair::new(b, a).first(), a);
        assert_eq!(LinkPair::new(b, a).second(), b);
    }

    #[test]
    fn pair_disjointness() {
        assert!(LinkPair::new(Link::new(0, 1), Link::new(2, 3)).is_disjoint());
        assert!(!LinkPair::new(Link::new(0, 1), Link::new(1, 2)).is_disjoint());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Link::new(3, 1).to_string(), "1-3");
        assert_eq!(
            LinkPair::new(Link::new(2, 3), Link::new(0, 1)).to_string(),
            "(0-1, 2-3)"
        );
    }

    #[test]
    fn from_tuple() {
        let l: Link = (7, 2).into();
        assert_eq!(l, Link::new(2, 7));
    }
}
