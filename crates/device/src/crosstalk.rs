//! Ground-truth crosstalk model of a device.
//!
//! When two CNOTs on one-hop-separated links are driven simultaneously,
//! each gate's error rate is amplified by a factor γ(e₁, e₂) ≥ 1 (Sheldon
//! et al.; Murali et al. ASPLOS'20 report 2–11× amplification on IBM
//! chips). The paper *measures* this quantity with SRB (its Fig. 2) and
//! QuCP *approximates* it with the constant σ. Keeping an explicit ground
//! truth lets this repo reproduce both the characterization campaign and
//! the σ-approximation experiment.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::link::{Link, LinkPair};
use crate::topology::Topology;

/// Parameters of the synthetic crosstalk ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkProfile {
    /// Fraction of one-hop pairs with strong crosstalk (the red arrows of
    /// the paper's Fig. 2).
    pub strong_fraction: f64,
    /// Amplification range for strongly coupled pairs.
    pub strong_gamma: (f64, f64),
    /// Amplification range for weakly coupled pairs.
    pub weak_gamma: (f64, f64),
}

impl Default for CrosstalkProfile {
    fn default() -> Self {
        CrosstalkProfile {
            strong_fraction: 0.25,
            strong_gamma: (2.5, 8.0),
            weak_gamma: (1.0, 1.8),
        }
    }
}

/// Crosstalk amplification factors between one-hop link pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct CrosstalkModel {
    gamma: BTreeMap<LinkPair, f64>,
}

impl CrosstalkModel {
    /// Synthesizes the ground truth for `topology`, seeded for
    /// reproducibility. Only one-hop pairs receive a factor; all other
    /// pairs are assumed crosstalk-free (γ = 1), following the locality
    /// finding of Murali et al. that the paper builds on.
    pub fn synthesize(topology: &Topology, seed: u64, profile: &CrosstalkProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gamma = BTreeMap::new();
        for pair in topology.one_hop_link_pairs() {
            let g = if rng.gen_bool(profile.strong_fraction) {
                rng.gen_range(profile.strong_gamma.0..profile.strong_gamma.1)
            } else {
                rng.gen_range(profile.weak_gamma.0..profile.weak_gamma.1)
            };
            gamma.insert(pair, g);
        }
        CrosstalkModel { gamma }
    }

    /// A model with no crosstalk anywhere (γ ≡ 1).
    pub fn none() -> Self {
        CrosstalkModel {
            gamma: BTreeMap::new(),
        }
    }

    /// Builds a model from explicit pair factors.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (LinkPair, f64)>) -> Self {
        CrosstalkModel {
            gamma: pairs.into_iter().collect(),
        }
    }

    /// Amplification factor between two links (1.0 when uncharacterized or
    /// out of crosstalk range).
    pub fn gamma(&self, a: Link, b: Link) -> f64 {
        self.gamma.get(&LinkPair::new(a, b)).copied().unwrap_or(1.0)
    }

    /// All characterized pairs with their factors, canonically ordered.
    pub fn pairs(&self) -> impl Iterator<Item = (LinkPair, f64)> + '_ {
        self.gamma.iter().map(|(&p, &g)| (p, g))
    }

    /// Number of characterized pairs.
    pub fn num_pairs(&self) -> usize {
        self.gamma.len()
    }

    /// Pairs whose amplification meets `threshold` — the pairs the paper's
    /// Fig. 2 highlights with arrows.
    pub fn significant_pairs(&self, threshold: f64) -> Vec<(LinkPair, f64)> {
        let mut v: Vec<(LinkPair, f64)> = self
            .gamma
            .iter()
            .filter(|(_, &g)| g >= threshold)
            .map(|(&p, &g)| (p, g))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Mean amplification over all characterized pairs (1.0 for a
    /// crosstalk-free model) — the chip-level crosstalk penalty a fleet
    /// router folds into its calibration-quality prior.
    pub fn mean_gamma(&self) -> f64 {
        if self.gamma.is_empty() {
            return 1.0;
        }
        self.gamma.values().sum::<f64>() / self.gamma.len() as f64
    }

    /// Mutable access to every characterized pair's factor, in
    /// canonical pair order (deterministic: the map is ordered) — the
    /// iteration a [`DriftModel`](crate::DriftModel) perturbs.
    pub fn gammas_mut(&mut self) -> impl Iterator<Item = (LinkPair, &mut f64)> {
        self.gamma.iter_mut().map(|(&p, g)| (p, g))
    }

    /// Whether every stored factor is finite.
    pub fn all_finite(&self) -> bool {
        self.gamma.values().all(|g| g.is_finite())
    }

    /// The maximum amplification of any pair involving `link`.
    pub fn worst_gamma_for(&self, link: Link) -> f64 {
        self.gamma
            .iter()
            .filter(|(p, _)| p.first() == link || p.second() == link)
            .map(|(_, &g)| g)
            .fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::line(6)
    }

    #[test]
    fn synthesize_covers_one_hop_pairs() {
        let t = topo();
        let m = CrosstalkModel::synthesize(&t, 1, &CrosstalkProfile::default());
        assert_eq!(m.num_pairs(), t.one_hop_link_pairs().len());
    }

    #[test]
    fn synthesize_deterministic() {
        let t = topo();
        let p = CrosstalkProfile::default();
        assert_eq!(
            CrosstalkModel::synthesize(&t, 9, &p),
            CrosstalkModel::synthesize(&t, 9, &p)
        );
    }

    #[test]
    fn gamma_defaults_to_one() {
        let m = CrosstalkModel::none();
        assert_eq!(m.gamma(Link::new(0, 1), Link::new(2, 3)), 1.0);
        assert_eq!(m.num_pairs(), 0);
    }

    #[test]
    fn gamma_symmetric_lookup() {
        let pair = LinkPair::new(Link::new(0, 1), Link::new(2, 3));
        let m = CrosstalkModel::from_pairs([(pair, 4.2)]);
        assert_eq!(m.gamma(Link::new(2, 3), Link::new(0, 1)), 4.2);
        assert_eq!(m.gamma(Link::new(0, 1), Link::new(2, 3)), 4.2);
    }

    #[test]
    fn gamma_in_profile_ranges() {
        let t = topo();
        let p = CrosstalkProfile::default();
        let m = CrosstalkModel::synthesize(&t, 3, &p);
        for (_, g) in m.pairs() {
            assert!(g >= p.weak_gamma.0);
            assert!(g <= p.strong_gamma.1);
        }
    }

    #[test]
    fn significant_pairs_sorted_descending() {
        let a = LinkPair::new(Link::new(0, 1), Link::new(2, 3));
        let b = LinkPair::new(Link::new(1, 2), Link::new(3, 4));
        let m = CrosstalkModel::from_pairs([(a, 3.0), (b, 6.0)]);
        let sig = m.significant_pairs(2.0);
        assert_eq!(sig.len(), 2);
        assert_eq!(sig[0].1, 6.0);
        assert!(m.significant_pairs(10.0).is_empty());
    }

    #[test]
    fn mean_gamma_aggregates() {
        let a = LinkPair::new(Link::new(0, 1), Link::new(2, 3));
        let b = LinkPair::new(Link::new(1, 2), Link::new(3, 4));
        let m = CrosstalkModel::from_pairs([(a, 2.0), (b, 6.0)]);
        assert!((m.mean_gamma() - 4.0).abs() < 1e-12);
        assert_eq!(CrosstalkModel::none().mean_gamma(), 1.0);
    }

    #[test]
    fn worst_gamma_for_link() {
        let a = LinkPair::new(Link::new(0, 1), Link::new(2, 3));
        let b = LinkPair::new(Link::new(2, 3), Link::new(4, 5));
        let m = CrosstalkModel::from_pairs([(a, 3.0), (b, 5.5)]);
        assert_eq!(m.worst_gamma_for(Link::new(2, 3)), 5.5);
        assert_eq!(m.worst_gamma_for(Link::new(0, 1)), 3.0);
        assert_eq!(m.worst_gamma_for(Link::new(7, 8)), 1.0);
    }
}
