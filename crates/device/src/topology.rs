//! Coupling-graph topology of a quantum chip.

use std::collections::VecDeque;

use crate::link::{Link, LinkPair};

/// The undirected coupling graph of a device.
///
/// Stores adjacency, the link list, and an all-pairs BFS distance matrix
/// (hop counts), which the mapper and partitioner query heavily.
///
/// ```
/// use qucp_device::Topology;
/// let t = Topology::line(4);
/// assert_eq!(t.distance(0, 3), 3);
/// assert!(t.has_link(1, 2));
/// assert!(t.is_connected_subset(&[1, 2, 3]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    links: Vec<Link>,
    adjacency: Vec<Vec<usize>>,
    distance: Vec<Vec<usize>>,
}

/// Distance value meaning "unreachable".
pub const UNREACHABLE: usize = usize::MAX;

impl Topology {
    /// Builds a topology on `n` qubits from an edge list.
    ///
    /// Duplicate edges are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= n` or is a self-loop.
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut links: Vec<Link> = edges
            .iter()
            .map(|&(a, b)| {
                assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} qubits");
                Link::new(a, b)
            })
            .collect();
        links.sort_unstable();
        links.dedup();
        let mut adjacency = vec![Vec::new(); n];
        for l in &links {
            adjacency[l.low()].push(l.high());
            adjacency[l.high()].push(l.low());
        }
        for nbrs in &mut adjacency {
            nbrs.sort_unstable();
        }
        let distance = all_pairs_bfs(n, &adjacency);
        Topology {
            n,
            links,
            adjacency,
            distance,
        }
    }

    /// A 1-D chain of `n` qubits (useful in tests).
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Topology::new(n, &edges)
    }

    /// A cycle of `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 qubits");
        let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        edges.push((n - 1, 0));
        Topology::new(n, &edges)
    }

    /// A `rows × cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        Topology::new(rows * cols, &edges)
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// All coupling links, sorted canonically.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of coupling links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Neighbors of `q`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `q >= num_qubits()`.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.adjacency[q].len()
    }

    /// Whether qubits `a` and `b` are directly coupled.
    pub fn has_link(&self, a: usize, b: usize) -> bool {
        a != b && self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Hop distance between two qubits ([`UNREACHABLE`] if disconnected).
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.distance[a][b]
    }

    /// Hop distance between two links: the minimum endpoint-to-endpoint
    /// distance. Adjacent links (sharing a qubit) have distance 0; the
    /// "one-hop" pairs of the SRB literature have distance 1.
    pub fn link_distance(&self, a: Link, b: Link) -> usize {
        let mut best = UNREACHABLE;
        for &x in &[a.low(), a.high()] {
            for &y in &[b.low(), b.high()] {
                best = best.min(self.distance(x, y));
            }
        }
        best
    }

    /// All unordered pairs of disjoint links at one-hop distance — the
    /// pairs whose simultaneous operation may suffer crosstalk and that SRB
    /// must characterize (Sec. III of the paper).
    pub fn one_hop_link_pairs(&self) -> Vec<LinkPair> {
        let mut out = Vec::new();
        for (i, &a) in self.links.iter().enumerate() {
            for &b in &self.links[i + 1..] {
                if !a.shares_qubit(&b) && self.link_distance(a, b) == 1 {
                    out.push(LinkPair::new(a, b));
                }
            }
        }
        out
    }

    /// Whether the induced subgraph on `subset` is connected and non-empty.
    pub fn is_connected_subset(&self, subset: &[usize]) -> bool {
        if subset.is_empty() {
            return false;
        }
        let inside = |q: usize| subset.contains(&q);
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::new();
        queue.push_back(subset[0]);
        seen[subset[0]] = true;
        let mut count = 1;
        while let Some(q) = queue.pop_front() {
            for &nb in self.neighbors(q) {
                if inside(nb) && !seen[nb] {
                    seen[nb] = true;
                    count += 1;
                    queue.push_back(nb);
                }
            }
        }
        count == subset.len()
    }

    /// Whether the whole graph is connected.
    pub fn is_connected(&self) -> bool {
        let all: Vec<usize> = (0..self.n).collect();
        self.n > 0 && self.is_connected_subset(&all)
    }

    /// The shortest path between two qubits as a vertex list (inclusive),
    /// or `None` if disconnected. Ties are broken toward lower qubit
    /// indices, making routing deterministic.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        if self.distance(from, to) == UNREACHABLE {
            return None;
        }
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            let next = *self
                .neighbors(cur)
                .iter()
                .find(|&&nb| self.distance(nb, to) + 1 == self.distance(cur, to))
                .expect("distance matrix is consistent");
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// The links within a qubit subset (induced edges).
    pub fn links_within(&self, subset: &[usize]) -> Vec<Link> {
        self.links
            .iter()
            .copied()
            .filter(|l| subset.contains(&l.low()) && subset.contains(&l.high()))
            .collect()
    }
}

fn all_pairs_bfs(n: usize, adjacency: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut dist = vec![vec![UNREACHABLE; n]; n];
    for (start, row) in dist.iter_mut().enumerate() {
        row[start] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(q) = queue.pop_front() {
            for &nb in &adjacency[q] {
                if row[nb] == UNREACHABLE {
                    row[nb] = row[q] + 1;
                    queue.push_back(nb);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let t = Topology::line(5);
        assert_eq!(t.num_qubits(), 5);
        assert_eq!(t.num_links(), 4);
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.distance(2, 2), 0);
        assert!(t.is_connected());
    }

    #[test]
    fn ring_wraps() {
        let t = Topology::ring(6);
        assert_eq!(t.distance(0, 5), 1);
        assert_eq!(t.distance(0, 3), 3);
        assert_eq!(t.num_links(), 6);
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid(3, 3);
        assert_eq!(t.num_qubits(), 9);
        assert_eq!(t.num_links(), 12);
        assert_eq!(t.distance(0, 8), 4);
        assert!(t.has_link(0, 1));
        assert!(t.has_link(0, 3));
        assert!(!t.has_link(0, 4));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let t = Topology::new(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(t.num_links(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Topology::new(2, &[(0, 2)]);
    }

    #[test]
    fn disconnected_distance() {
        let t = Topology::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(t.distance(0, 3), UNREACHABLE);
        assert!(!t.is_connected());
        assert!(t.shortest_path(0, 3).is_none());
    }

    #[test]
    fn connected_subset_checks() {
        let t = Topology::line(5);
        assert!(t.is_connected_subset(&[1, 2, 3]));
        assert!(!t.is_connected_subset(&[0, 2]));
        assert!(!t.is_connected_subset(&[]));
        assert!(t.is_connected_subset(&[4]));
    }

    #[test]
    fn shortest_path_endpoints() {
        let t = Topology::grid(2, 3);
        let p = t.shortest_path(0, 5).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&5));
        assert_eq!(p.len(), t.distance(0, 5) + 1);
        assert_eq!(t.shortest_path(2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn link_distance_classes() {
        let t = Topology::line(6);
        let l01 = Link::new(0, 1);
        let l12 = Link::new(1, 2);
        let l23 = Link::new(2, 3);
        let l45 = Link::new(4, 5);
        assert_eq!(t.link_distance(l01, l12), 0); // share qubit 1
        assert_eq!(t.link_distance(l01, l23), 1); // one hop
        assert_eq!(t.link_distance(l01, l45), 3);
    }

    #[test]
    fn one_hop_pairs_on_line() {
        // Line 0-1-2-3-4: links 01,12,23,34. Disjoint one-hop pairs:
        // (01,23), (12,34).
        let t = Topology::line(5);
        let pairs = t.one_hop_link_pairs();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|p| p.is_disjoint()));
    }

    #[test]
    fn links_within_subset() {
        let t = Topology::grid(2, 2);
        let links = t.links_within(&[0, 1, 2]);
        assert_eq!(links.len(), 2); // 0-1 and 0-2
    }

    #[test]
    fn neighbors_sorted() {
        let t = Topology::grid(3, 3);
        assert_eq!(t.neighbors(4), &[1, 3, 5, 7]);
        assert_eq!(t.degree(4), 4);
        assert_eq!(t.degree(0), 2);
    }
}
