//! Models of the three IBM devices the paper evaluates on.
//!
//! * [`melbourne`] — IBM Q 16 Melbourne (15 usable qubits, Fig. 1). The
//!   CNOT error rates are transcribed from the values printed in the
//!   paper's Fig. 1 (×10⁻²), assigned in canonical link order.
//! * [`toronto`] — IBM Q 27 Toronto (27-qubit Falcon heavy-hex lattice,
//!   Fig. 2 and the Fig. 3 experiments).
//! * [`manhattan`] — IBM Q 65 Manhattan (65-qubit Hummingbird heavy-hex
//!   lattice, the Fig. 4/5/6 experiments).
//!
//! Topologies are the published coupling maps; calibrations and crosstalk
//! factors are synthesized from fixed seeds (real daily snapshots are not
//! available offline — see DESIGN.md, "Substitutions").

use crate::calibration::{Calibration, NoiseProfile};
use crate::crosstalk::{CrosstalkModel, CrosstalkProfile};
use crate::device::Device;
use crate::link::Link;
use crate::topology::Topology;

/// Calibration seed for Melbourne.
pub const MELBOURNE_SEED: u64 = 16;
/// Calibration seed for Toronto.
pub const TORONTO_SEED: u64 = 27;
/// Calibration seed for Manhattan.
pub const MANHATTAN_SEED: u64 = 65;
/// Offset added to a device seed to derive its crosstalk seed.
pub const CROSSTALK_SEED_OFFSET: u64 = 1000;

/// The 20-link coupling map of IBM Q 16 Melbourne (15 usable qubits),
/// drawn as in the paper's Fig. 1: a 7-qubit top row (0–6), an 8-qubit
/// bottom row (7–14), and vertical rungs.
pub fn melbourne_topology() -> Topology {
    let edges = [
        // top row
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 6),
        // vertical rungs
        (0, 14),
        (1, 13),
        (2, 12),
        (3, 11),
        (4, 10),
        (5, 9),
        (6, 8),
        // bottom row
        (7, 8),
        (8, 9),
        (9, 10),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 14),
    ];
    Topology::new(15, &edges)
}

/// CNOT error rates printed in the paper's Fig. 1 (×10⁻²), in the edge
/// order of [`melbourne_topology`].
pub const MELBOURNE_FIG1_CX_ERRORS: [f64; 20] = [
    2.1, 3.1, 1.9, 5.9, 1.1, 5.3, // top row
    2.8, 2.9, 3.7, 4.0, 5.4, 4.9, 4.4, // rungs
    2.6, 6.2, 3.7, 2.4, 2.8, 2.7, 2.7, // bottom row
];

/// IBM Q 16 Melbourne with the Fig. 1 CNOT error rates.
pub fn melbourne() -> Device {
    let topo = melbourne_topology();
    let mut cal = Calibration::synthesize(&topo, MELBOURNE_SEED, &NoiseProfile::default());
    let edges = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 6),
        (0, 14),
        (1, 13),
        (2, 12),
        (3, 11),
        (4, 10),
        (5, 9),
        (6, 8),
        (7, 8),
        (8, 9),
        (9, 10),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 14),
    ];
    for (i, &(a, b)) in edges.iter().enumerate() {
        cal.set_cx_error(Link::new(a, b), MELBOURNE_FIG1_CX_ERRORS[i] / 100.0);
    }
    let xtalk = CrosstalkModel::synthesize(
        &topo,
        MELBOURNE_SEED + CROSSTALK_SEED_OFFSET,
        &CrosstalkProfile::default(),
    );
    Device::new("ibmq_16_melbourne", topo, cal, xtalk)
}

/// The 28-link coupling map of IBM Q 27 Toronto (Falcon heavy-hex).
pub fn toronto_topology() -> Topology {
    let edges = [
        (0, 1),
        (1, 2),
        (1, 4),
        (2, 3),
        (3, 5),
        (4, 7),
        (5, 8),
        (6, 7),
        (7, 10),
        (8, 9),
        (8, 11),
        (10, 12),
        (11, 14),
        (12, 13),
        (12, 15),
        (13, 14),
        (14, 16),
        (15, 18),
        (16, 19),
        (17, 18),
        (18, 21),
        (19, 20),
        (19, 22),
        (21, 23),
        (22, 25),
        (23, 24),
        (24, 25),
        (25, 26),
    ];
    Topology::new(27, &edges)
}

/// IBM Q 27 Toronto with a seeded synthetic calibration.
pub fn toronto() -> Device {
    let topo = toronto_topology();
    let cal = Calibration::synthesize(&topo, TORONTO_SEED, &NoiseProfile::default());
    let xtalk = CrosstalkModel::synthesize(
        &topo,
        TORONTO_SEED + CROSSTALK_SEED_OFFSET,
        &CrosstalkProfile::default(),
    );
    Device::new("ibmq_toronto", topo, cal, xtalk)
}

/// The 72-link coupling map of IBM Q 65 Manhattan (Hummingbird heavy-hex):
/// five horizontal rows of qubits joined by vertical rungs.
pub fn manhattan_topology() -> Topology {
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(72);
    let chain = |edges: &mut Vec<(usize, usize)>, from: usize, to: usize| {
        for q in from..to {
            edges.push((q, q + 1));
        }
    };
    chain(&mut edges, 0, 9); // row A: 0..=9
    edges.extend_from_slice(&[(0, 10), (4, 11), (8, 12)]);
    chain(&mut edges, 13, 23); // row B: 13..=23
    edges.extend_from_slice(&[(10, 13), (11, 17), (12, 21)]);
    edges.extend_from_slice(&[(15, 24), (19, 25), (23, 26)]);
    chain(&mut edges, 27, 37); // row C: 27..=37
    edges.extend_from_slice(&[(24, 29), (25, 33), (26, 37)]);
    edges.extend_from_slice(&[(27, 38), (31, 39), (35, 40)]);
    chain(&mut edges, 41, 51); // row D: 41..=51
    edges.extend_from_slice(&[(38, 41), (39, 45), (40, 49)]);
    edges.extend_from_slice(&[(43, 52), (47, 53), (51, 54)]);
    chain(&mut edges, 55, 64); // row E: 55..=64
    edges.extend_from_slice(&[(52, 56), (53, 60), (54, 64)]);
    Topology::new(65, &edges)
}

/// IBM Q 65 Manhattan with a seeded synthetic calibration.
pub fn manhattan() -> Device {
    let topo = manhattan_topology();
    let cal = Calibration::synthesize(&topo, MANHATTAN_SEED, &NoiseProfile::default());
    let xtalk = CrosstalkModel::synthesize(
        &topo,
        MANHATTAN_SEED + CROSSTALK_SEED_OFFSET,
        &CrosstalkProfile::default(),
    );
    Device::new("ibmq_manhattan", topo, cal, xtalk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn melbourne_matches_fig1() {
        let d = melbourne();
        assert_eq!(d.num_qubits(), 15);
        assert_eq!(d.topology().num_links(), 20);
        assert!(d.topology().is_connected());
        // Spot-check the transcribed Fig. 1 values.
        assert!((d.cx_error(0, 1) - 0.021).abs() < 1e-12);
        assert!((d.cx_error(3, 4) - 0.059).abs() < 1e-12);
        assert!((d.cx_error(4, 5) - 0.011).abs() < 1e-12);
        assert!((d.cx_error(8, 9) - 0.062).abs() < 1e-12);
    }

    #[test]
    fn toronto_shape() {
        let d = toronto();
        assert_eq!(d.num_qubits(), 27);
        assert_eq!(d.topology().num_links(), 28);
        assert!(d.topology().is_connected());
        // Heavy-hex: no qubit exceeds degree 3.
        for q in 0..27 {
            assert!(d.topology().degree(q) <= 3, "qubit {q} has degree > 3");
        }
    }

    #[test]
    fn manhattan_shape() {
        let d = manhattan();
        assert_eq!(d.num_qubits(), 65);
        assert_eq!(d.topology().num_links(), 72);
        assert!(d.topology().is_connected());
        for q in 0..65 {
            assert!(d.topology().degree(q) <= 3, "qubit {q} has degree > 3");
        }
    }

    #[test]
    fn all_qubits_used_in_manhattan() {
        let t = manhattan_topology();
        for q in 0..65 {
            assert!(t.degree(q) >= 1, "qubit {q} is isolated");
        }
    }

    #[test]
    fn devices_are_reproducible() {
        assert_eq!(toronto(), toronto());
        assert_eq!(manhattan(), manhattan());
        assert_eq!(melbourne(), melbourne());
    }

    #[test]
    fn crosstalk_present_on_all_devices() {
        assert!(melbourne().crosstalk().num_pairs() > 0);
        assert!(toronto().crosstalk().num_pairs() > 0);
        assert!(manhattan().crosstalk().num_pairs() > 0);
    }

    #[test]
    fn table1_qubit_row() {
        // Table I of the paper: 27 and 65 qubits.
        assert_eq!(toronto().num_qubits(), 27);
        assert_eq!(manhattan().num_qubits(), 65);
    }
}
