//! The [`Device`] aggregate: topology + calibration + crosstalk ground
//! truth.

use crate::calibration::Calibration;
use crate::crosstalk::CrosstalkModel;
use crate::link::Link;
use crate::topology::Topology;

/// A NISQ device model.
///
/// ```
/// use qucp_device::ibm;
/// let dev = ibm::toronto();
/// assert_eq!(dev.num_qubits(), 27);
/// assert_eq!(dev.topology().num_links(), 28);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    topology: Topology,
    calibration: Calibration,
    crosstalk: CrosstalkModel,
}

impl Device {
    /// Assembles a device from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the calibration was built for a different qubit count.
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        calibration: Calibration,
        crosstalk: CrosstalkModel,
    ) -> Self {
        assert_eq!(
            topology.num_qubits(),
            calibration.num_qubits(),
            "calibration does not match topology"
        );
        Device {
            name: name.into(),
            topology,
            calibration,
            crosstalk,
        }
    }

    /// The device name (e.g. `"ibmq_toronto"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coupling topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration snapshot.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Mutable access to the calibration (tests and what-if experiments).
    pub fn calibration_mut(&mut self) -> &mut Calibration {
        &mut self.calibration
    }

    /// The crosstalk ground truth.
    pub fn crosstalk(&self) -> &CrosstalkModel {
        &self.crosstalk
    }

    /// Mutable access to the crosstalk ground truth (drift models and
    /// what-if experiments).
    pub fn crosstalk_mut(&mut self) -> &mut CrosstalkModel {
        &mut self.crosstalk
    }

    /// Simultaneous mutable access to the calibration and the
    /// crosstalk ground truth — the borrow a
    /// [`DriftModel`](crate::DriftModel) step needs, since it perturbs
    /// both in one pass.
    pub fn calibration_state_mut(&mut self) -> (&mut Calibration, &mut CrosstalkModel) {
        (&mut self.calibration, &mut self.crosstalk)
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }

    /// Whether the chip can in principle host a program of `width`
    /// logical qubits — the cheap topology-level admission check a
    /// multi-device dispatcher runs before committing to the expensive
    /// partition probe (which also consults calibration quality).
    ///
    /// Zero-width programs are rejected: they claim no qubits and a
    /// scheduler has nothing to place.
    ///
    /// ```
    /// use qucp_device::ibm;
    /// let dev = ibm::toronto();
    /// assert!(dev.admits(27));
    /// assert!(!dev.admits(28));
    /// assert!(!dev.admits(0));
    /// ```
    pub fn admits(&self, width: usize) -> bool {
        width >= 1 && width <= self.num_qubits()
    }

    /// Hardware throughput (paper Sec. II-A): used qubits over total.
    pub fn throughput(&self, used_qubits: usize) -> f64 {
        used_qubits as f64 / self.num_qubits() as f64
    }

    /// Error rate of a CNOT on a physical link.
    ///
    /// # Panics
    ///
    /// Panics if `(a, b)` is not a coupling link of the device.
    pub fn cx_error(&self, a: usize, b: usize) -> f64 {
        self.calibration.cx_error(Link::new(a, b))
    }

    /// Duration (ns) of a CNOT on a physical link.
    ///
    /// # Panics
    ///
    /// Panics if `(a, b)` is not a coupling link of the device.
    pub fn cx_duration(&self, a: usize, b: usize) -> f64 {
        self.calibration.cx_duration(Link::new(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        let t = Topology::line(4);
        let cal = Calibration::uniform(&t, 0.02, 3e-4, 0.03);
        Device::new("test", t, cal, CrosstalkModel::none())
    }

    #[test]
    fn accessors() {
        let d = device();
        assert_eq!(d.name(), "test");
        assert_eq!(d.num_qubits(), 4);
        assert_eq!(d.cx_error(1, 0), 0.02);
        assert_eq!(d.cx_duration(2, 3), 300.0);
    }

    #[test]
    fn throughput_fraction() {
        let d = device();
        assert!((d.throughput(2) - 0.5).abs() < 1e-12);
        assert_eq!(d.throughput(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "calibration does not match topology")]
    fn mismatched_calibration_panics() {
        let t = Topology::line(4);
        let other = Topology::line(5);
        let cal = Calibration::uniform(&other, 0.02, 3e-4, 0.03);
        Device::new("bad", t, cal, CrosstalkModel::none());
    }

    #[test]
    fn calibration_mut_allows_overrides() {
        let mut d = device();
        d.calibration_mut().set_readout_error(0, 0.2);
        assert_eq!(d.calibration().readout_error(0), 0.2);
    }
}
