//! Property-based tests for topologies, calibrations and crosstalk models.

use proptest::prelude::*;
use qucp_device::{ibm, Calibration, CrosstalkModel, CrosstalkProfile, NoiseProfile, Topology};

/// Strategy producing a random connected topology of 4..12 qubits: a
/// spanning line plus random chords.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (4usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..n).prop_map(move |extra| {
            let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
            for (a, b) in extra {
                if a != b {
                    edges.push((a, b));
                }
            }
            Topology::new(n, &edges)
        })
    })
}

proptest! {
    #[test]
    fn distance_is_symmetric(t in arb_topology()) {
        for a in 0..t.num_qubits() {
            for b in 0..t.num_qubits() {
                prop_assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn distance_satisfies_triangle_inequality(t in arb_topology()) {
        let n = t.num_qubits();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let ab = t.distance(a, b);
                    let bc = t.distance(b, c);
                    let ac = t.distance(a, c);
                    prop_assert!(ac <= ab.saturating_add(bc));
                }
            }
        }
    }

    #[test]
    fn adjacency_matches_distance_one(t in arb_topology()) {
        for a in 0..t.num_qubits() {
            for b in 0..t.num_qubits() {
                if a != b {
                    prop_assert_eq!(t.has_link(a, b), t.distance(a, b) == 1);
                }
            }
        }
    }

    #[test]
    fn one_hop_pairs_are_disjoint_distance_one(t in arb_topology()) {
        for p in t.one_hop_link_pairs() {
            prop_assert!(p.is_disjoint());
            prop_assert_eq!(t.link_distance(p.first(), p.second()), 1);
        }
    }

    #[test]
    fn shortest_path_length_matches_distance(t in arb_topology()) {
        for a in 0..t.num_qubits() {
            for b in 0..t.num_qubits() {
                let p = t.shortest_path(a, b).unwrap();
                prop_assert_eq!(p.len(), t.distance(a, b) + 1);
                // Consecutive vertices are coupled.
                for w in p.windows(2) {
                    prop_assert!(t.has_link(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn calibration_synthesis_bounded(seed in 0u64..500) {
        let t = ibm::toronto_topology();
        let p = NoiseProfile::default();
        let cal = Calibration::synthesize(&t, seed, &p);
        for &l in t.links() {
            prop_assert!(cal.cx_error(l) > 0.0);
            prop_assert!(cal.cx_error(l) < 0.5);
        }
        for q in 0..t.num_qubits() {
            prop_assert!(cal.readout_error(q) > 0.0 && cal.readout_error(q) < 0.5);
            prop_assert!(cal.t1(q) > 0.0);
            prop_assert!(cal.t2(q) <= 2.0 * cal.t1(q) + 1e-9);
        }
    }

    #[test]
    fn crosstalk_gammas_at_least_one(seed in 0u64..500) {
        let t = ibm::toronto_topology();
        let m = CrosstalkModel::synthesize(&t, seed, &CrosstalkProfile::default());
        for (pair, g) in m.pairs() {
            prop_assert!(g >= 1.0, "pair {} has gamma {}", pair, g);
            prop_assert!(pair.is_disjoint());
        }
    }
}
