//! Time scheduling of circuits: moments, ASAP and ALAP schedules, and idle
//! window extraction.
//!
//! The paper (Sec. II-B, "Task scheduling") uses As-Late-As-Possible (ALAP)
//! scheduling for parallel workloads so that qubits stay in the ground state
//! as long as possible, limiting decoherence when circuits of different
//! depths are merged. ALAP is therefore the default throughout this repo;
//! ASAP is provided for comparison and for computing the makespan.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// A gate placed in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledGate {
    /// Index of the gate in the source circuit's gate list.
    pub gate_index: usize,
    /// Start time in nanoseconds.
    pub start: f64,
    /// Duration in nanoseconds.
    pub duration: f64,
}

impl ScheduledGate {
    /// End time in nanoseconds.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }

    /// Whether two scheduled gates overlap in time (open intervals).
    pub fn overlaps(&self, other: &ScheduledGate) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// A fully timed circuit schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    entries: Vec<ScheduledGate>,
    makespan: f64,
}

impl Schedule {
    /// The scheduled gates in source order.
    pub fn entries(&self) -> &[ScheduledGate] {
        &self.entries
    }

    /// Total wall-clock duration of the schedule in nanoseconds.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// The entry for a particular gate index.
    pub fn entry(&self, gate_index: usize) -> Option<&ScheduledGate> {
        self.entries.iter().find(|e| e.gate_index == gate_index)
    }

    /// Per-qubit idle windows within `[0, makespan]`.
    ///
    /// Returns, for each qubit of the circuit, the list of `(start, end)`
    /// gaps during which the qubit holds state but no gate acts on it. The
    /// noise model converts these into decoherence errors. Leading idle time
    /// (before the first gate on a qubit) is excluded under ALAP semantics:
    /// the qubit is still in the ground state there.
    pub fn idle_windows(&self, circuit: &Circuit) -> Vec<Vec<(f64, f64)>> {
        let mut per_qubit: Vec<Vec<(f64, f64)>> = vec![Vec::new(); circuit.width()];
        let mut busy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); circuit.width()];
        for e in &self.entries {
            for q in &circuit.gates()[e.gate_index].qubits() {
                busy[q].push((e.start, e.end()));
            }
        }
        for (q, spans) in busy.iter_mut().enumerate() {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
            if spans.is_empty() {
                continue;
            }
            // Gaps between consecutive operations.
            for w in spans.windows(2) {
                let gap = (w[0].1, w[1].0);
                if gap.1 - gap.0 > 1e-9 {
                    per_qubit[q].push(gap);
                }
            }
            // Trailing idle until readout at the makespan.
            let last_end = spans.last().unwrap().1;
            if self.makespan - last_end > 1e-9 {
                per_qubit[q].push((last_end, self.makespan));
            }
        }
        per_qubit
    }
}

/// Greedy as-soon-as-possible layering of a circuit into moments.
///
/// Each moment is a set of gate indices acting on disjoint qubits. This is
/// the unit-time view used for depth and for coarse crosstalk analysis.
///
/// ```
/// use qucp_circuit::{Circuit, schedule::moments};
/// let mut c = Circuit::new(3);
/// c.h(0).h(1).cx(0, 1).h(2);
/// let m = moments(&c);
/// assert_eq!(m.len(), 2);
/// assert_eq!(m[0], vec![0, 1, 3]); // h q0, h q1, h q2
/// assert_eq!(m[1], vec![2]);       // cx
/// ```
pub fn moments(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut level = vec![0usize; circuit.width()];
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for (i, g) in circuit.gates().iter().enumerate() {
        let start = g.qubits().into_iter().map(|q| level[q]).max().unwrap_or(0);
        for q in &g.qubits() {
            level[q] = start + 1;
        }
        if layers.len() <= start {
            layers.resize_with(start + 1, Vec::new);
        }
        layers[start].push(i);
    }
    layers
}

/// Schedules the circuit as soon as possible with per-gate durations.
pub fn asap_schedule(circuit: &Circuit, duration: impl Fn(&Gate) -> f64) -> Schedule {
    asap_schedule_with(circuit, |_, g| duration(g))
}

/// [`asap_schedule`] with an index-aware duration function, for callers
/// whose durations depend on gate position (e.g. link-specific CNOT
/// durations after mapping).
pub fn asap_schedule_with(circuit: &Circuit, duration: impl Fn(usize, &Gate) -> f64) -> Schedule {
    let mut available = vec![0.0f64; circuit.width()];
    let mut entries = Vec::with_capacity(circuit.gate_count());
    let mut makespan = 0.0f64;
    for (i, g) in circuit.gates().iter().enumerate() {
        let start = g
            .qubits()
            .into_iter()
            .map(|q| available[q])
            .fold(0.0f64, f64::max);
        let d = duration(i, g);
        for q in &g.qubits() {
            available[q] = start + d;
        }
        makespan = makespan.max(start + d);
        entries.push(ScheduledGate {
            gate_index: i,
            start,
            duration: d,
        });
    }
    Schedule { entries, makespan }
}

/// Schedules the circuit as late as possible within the ASAP makespan.
///
/// The relative order of gates on each qubit is preserved; every gate is
/// pushed toward the end of the schedule so that qubits leave the ground
/// state as late as possible (the paper's default policy).
pub fn alap_schedule(circuit: &Circuit, duration: impl Fn(&Gate) -> f64) -> Schedule {
    alap_schedule_with(circuit, |_, g| duration(g))
}

/// [`alap_schedule`] with an index-aware duration function.
pub fn alap_schedule_with(circuit: &Circuit, duration: impl Fn(usize, &Gate) -> f64) -> Schedule {
    let asap = asap_schedule_with(circuit, &duration);
    let makespan = asap.makespan;
    let mut deadline = vec![makespan; circuit.width()];
    let mut entries = vec![
        ScheduledGate {
            gate_index: 0,
            start: 0.0,
            duration: 0.0,
        };
        circuit.gate_count()
    ];
    for (i, g) in circuit.gates().iter().enumerate().rev() {
        let end = g
            .qubits()
            .into_iter()
            .map(|q| deadline[q])
            .fold(f64::INFINITY, f64::min);
        let d = duration(i, g);
        let start = end - d;
        for q in &g.qubits() {
            deadline[q] = start;
        }
        entries[i] = ScheduledGate {
            gate_index: i,
            start,
            duration: d,
        };
    }
    Schedule { entries, makespan }
}

/// A simple duration model: constant per gate class.
///
/// Device-accurate durations come from `qucp-device` calibrations; this
/// model is used by unit tests and the pure-circuit examples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDurations {
    /// Duration of any one-qubit gate, in nanoseconds.
    pub single: f64,
    /// Duration of a CNOT/CZ/CP, in nanoseconds.
    pub two_qubit: f64,
    /// Duration of a SWAP (typically three CNOTs), in nanoseconds.
    pub swap: f64,
}

impl Default for UniformDurations {
    /// IBM-like defaults: 35 ns one-qubit gates, 300 ns CNOTs.
    fn default() -> Self {
        UniformDurations {
            single: 35.0,
            two_qubit: 300.0,
            swap: 900.0,
        }
    }
}

impl UniformDurations {
    /// Duration of `gate` under this model.
    pub fn duration(&self, gate: &Gate) -> f64 {
        match gate {
            Gate::Swap(..) => self.swap,
            g if g.is_two_qubit() => self.two_qubit,
            _ => self.single,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dur(g: &Gate) -> f64 {
        if g.is_two_qubit() {
            300.0
        } else {
            35.0
        }
    }

    #[test]
    fn asap_timings() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        let s = asap_schedule(&c, dur);
        assert_eq!(s.entries()[0].start, 0.0);
        assert_eq!(s.entries()[1].start, 35.0);
        assert_eq!(s.entries()[2].start, 335.0);
        assert_eq!(s.makespan(), 370.0);
    }

    #[test]
    fn alap_pushes_gates_late() {
        // q0: h then nothing; q1: long chain. ALAP should delay the h.
        let mut c = Circuit::new(2);
        c.h(0).h(1).h(1).h(1).cx(0, 1);
        let asap = asap_schedule(&c, dur);
        let alap = alap_schedule(&c, dur);
        assert_eq!(asap.makespan(), alap.makespan());
        // Under ASAP the single h on q0 starts at t=0; under ALAP it abuts
        // the cx.
        assert_eq!(asap.entries()[0].start, 0.0);
        assert_eq!(alap.entries()[0].start, 105.0 - 35.0);
        // Gate order per qubit preserved.
        assert!(alap.entries()[1].start < alap.entries()[2].start);
        assert!(alap.entries()[2].start < alap.entries()[3].start);
    }

    #[test]
    fn alap_reduces_idle_before_first_gate() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).h(1).h(1).cx(0, 1);
        let alap = alap_schedule(&c, dur);
        let idle = alap.idle_windows(&c);
        // Under ALAP, qubit 0's h abuts the cx, so no internal gap exists.
        assert!(idle[0].is_empty());
        assert!(idle[1].is_empty());
    }

    #[test]
    fn idle_windows_trailing_gap() {
        // q1 finishes well before q0 under ASAP.
        let mut c = Circuit::new(2);
        c.h(1).h(0).h(0).h(0).h(0);
        let s = asap_schedule(&c, dur);
        let idle = s.idle_windows(&c);
        assert_eq!(idle[1].len(), 1);
        let (a, b) = idle[1][0];
        assert_eq!(a, 35.0);
        assert_eq!(b, s.makespan());
    }

    #[test]
    fn idle_windows_internal_gap() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0).h(0).cx(0, 1);
        let s = asap_schedule(&c, dur);
        let idle = s.idle_windows(&c);
        // q1 idles between the two cx gates.
        assert_eq!(idle[1].len(), 1);
        let (a, b) = idle[1][0];
        assert!((b - a - 70.0).abs() < 1e-9);
    }

    #[test]
    fn unused_qubits_have_no_idle_windows() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1);
        let s = alap_schedule(&c, dur);
        assert!(s.idle_windows(&c)[2].is_empty());
    }

    #[test]
    fn moments_group_disjoint_gates() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).cx(0, 1).cx(2, 3).h(0);
        let m = moments(&c);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], vec![0, 1, 3]);
        assert_eq!(m[1], vec![2]);
        assert_eq!(m[2], vec![4]);
    }

    #[test]
    fn overlap_detection() {
        let a = ScheduledGate {
            gate_index: 0,
            start: 0.0,
            duration: 10.0,
        };
        let b = ScheduledGate {
            gate_index: 1,
            start: 5.0,
            duration: 10.0,
        };
        let c = ScheduledGate {
            gate_index: 2,
            start: 10.0,
            duration: 5.0,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn uniform_durations_default() {
        let d = UniformDurations::default();
        assert_eq!(d.duration(&Gate::H(0)), 35.0);
        assert_eq!(d.duration(&Gate::Cx(0, 1)), 300.0);
        assert_eq!(d.duration(&Gate::Swap(0, 1)), 900.0);
    }

    #[test]
    fn empty_circuit_schedule() {
        let c = Circuit::new(3);
        let s = alap_schedule(&c, dur);
        assert_eq!(s.makespan(), 0.0);
        assert!(s.entries().is_empty());
    }

    #[test]
    fn schedule_entry_lookup() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = asap_schedule(&c, dur);
        assert!(s.entry(1).is_some());
        assert!(s.entry(7).is_none());
    }
}
