//! The [`Circuit`] container: an ordered gate list on a fixed register.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::CircuitError;
use crate::gate::Gate;

/// An ordered quantum circuit on `width` qubits.
///
/// Measurement of every qubit at the end of the circuit is implicit, which
/// matches the benchmarks of the paper (all of them measure the full
/// register). Gates are stored in program order; scheduling into moments is
/// performed by [`crate::schedule`].
///
/// ```
/// use qucp_circuit::Circuit;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.gate_count(), 2);
/// assert_eq!(c.cx_count(), 1);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    name: String,
    width: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `width` qubits named `"circuit"`.
    pub fn new(width: usize) -> Self {
        Circuit {
            name: "circuit".to_string(),
            width,
            gates: Vec::new(),
        }
    }

    /// Creates an empty named circuit on `width` qubits.
    pub fn with_name(width: usize, name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            width,
            gates: Vec::new(),
        }
    }

    /// The circuit name (used in reports and QASM headers).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit in place.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits in the register.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of two-qubit gates of any kind.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of CNOT gates (the metric reported in Table II of the paper).
    pub fn cx_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_cx()).count()
    }

    /// Number of one-qubit gates.
    pub fn single_qubit_count(&self) -> usize {
        self.gates.len() - self.two_qubit_count()
    }

    /// Whether the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate, validating its operands.
    ///
    /// # Errors
    ///
    /// [`CircuitError::QubitOutOfRange`] if an operand exceeds the register,
    /// [`CircuitError::DuplicateQubit`] if a two-qubit gate repeats a qubit.
    pub fn try_push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        let qs = gate.qubits();
        for q in &qs {
            if q >= self.width {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    width: self.width,
                });
            }
        }
        let s = qs.as_slice();
        if s.len() == 2 && s[0] == s[1] {
            return Err(CircuitError::DuplicateQubit { qubit: s[0] });
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics on the conditions documented at [`Circuit::try_push`]. The
    /// builder methods ([`Circuit::h`], [`Circuit::cx`], …) use this method.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        self.try_push(gate)
            .unwrap_or_else(|e| panic!("invalid gate {gate:?}: {e}"));
        self
    }

    /// Appends every gate of `other` (same width required).
    ///
    /// # Errors
    ///
    /// [`CircuitError::WidthMismatch`] if `other` is wider than `self`.
    pub fn try_extend_from(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        if other.width > self.width {
            return Err(CircuitError::WidthMismatch {
                expected: self.width,
                found: other.width,
            });
        }
        self.gates.extend_from_slice(&other.gates);
        Ok(())
    }

    /// Returns a new circuit with the gates of `self` followed by `other`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::WidthMismatch`] if widths differ.
    pub fn compose(&self, other: &Circuit) -> Result<Circuit, CircuitError> {
        if other.width != self.width {
            return Err(CircuitError::WidthMismatch {
                expected: self.width,
                found: other.width,
            });
        }
        let mut out = self.clone();
        out.gates.extend_from_slice(&other.gates);
        Ok(out)
    }

    /// The inverse circuit (gates reversed, each inverted symbolically).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            name: format!("{}_dg", self.name),
            width: self.width,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// The set of qubits touched by at least one gate.
    pub fn used_qubits(&self) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        for g in &self.gates {
            for q in &g.qubits() {
                set.insert(q);
            }
        }
        set
    }

    /// Circuit depth: the number of moments under greedy as-soon-as-possible
    /// layering (each gate occupies one moment on each of its qubits).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.width];
        let mut depth = 0;
        for g in &self.gates {
            let start = g.qubits().into_iter().map(|q| level[q]).max().unwrap_or(0);
            for q in &g.qubits() {
                level[q] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    /// Per-mnemonic gate counts, ordered by name.
    pub fn count_ops(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for g in &self.gates {
            *map.entry(g.name()).or_insert(0) += 1;
        }
        map
    }

    /// The logical interaction graph: two-qubit gate multiplicity per
    /// unordered qubit pair. Used by the noise-aware initial mapper.
    pub fn interaction_graph(&self) -> BTreeMap<(usize, usize), usize> {
        let mut map = BTreeMap::new();
        for g in &self.gates {
            if g.is_two_qubit() {
                let s = g.qubits();
                let s = s.as_slice();
                let key = (s[0].min(s[1]), s[0].max(s[1]));
                *map.entry(key).or_insert(0) += 1;
            }
        }
        map
    }

    /// Whether every gate maps computational basis states to basis states,
    /// i.e. the noiseless output is a single deterministic bitstring.
    pub fn is_classically_deterministic(&self) -> bool {
        self.gates.iter().all(Gate::preserves_computational_basis)
    }

    /// Re-indexes every gate through `mapping` (logical index → new index)
    /// onto a register of `new_width` qubits.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidMapping`] if the mapping misses a used qubit,
    /// is not injective on used qubits, or exceeds `new_width`.
    pub fn remap(&self, mapping: &[usize], new_width: usize) -> Result<Circuit, CircuitError> {
        let used = self.used_qubits();
        let mut seen = BTreeSet::new();
        for &q in &used {
            let Some(&target) = mapping.get(q) else {
                return Err(CircuitError::InvalidMapping {
                    reason: format!("qubit {q} is used but not mapped"),
                });
            };
            if target >= new_width {
                return Err(CircuitError::InvalidMapping {
                    reason: format!("qubit {q} maps to {target} >= width {new_width}"),
                });
            }
            if !seen.insert(target) {
                return Err(CircuitError::InvalidMapping {
                    reason: format!("mapping is not injective at physical qubit {target}"),
                });
            }
        }
        let gates = self
            .gates
            .iter()
            .map(|g| g.map_qubits(|q| mapping[q]))
            .collect();
        Ok(Circuit {
            name: self.name.clone(),
            width: new_width,
            gates,
        })
    }

    /// Removes adjacent self-inverse gate pairs (`h h`, `cx cx`, …) until a
    /// fixed point; returns the number of gates removed.
    ///
    /// This is the light peephole pass applied before mapping, standing in
    /// for Qiskit's `optimization_level=3` cancellation stage.
    pub fn cancel_adjacent_inverses(&mut self) -> usize {
        let mut removed = 0;
        loop {
            let mut out: Vec<Gate> = Vec::with_capacity(self.gates.len());
            let mut changed = false;
            for &g in &self.gates {
                // The candidate partner is the most recent gate that shares a
                // qubit with `g`; cancellation is only sound if no gate in
                // between touches any operand of `g`.
                if let Some(&last) = out.last() {
                    if last == g.inverse() && last.qubits() == g.qubits() {
                        out.pop();
                        removed += 2;
                        changed = true;
                        continue;
                    }
                }
                out.push(g);
            }
            self.gates = out;
            if !changed {
                break;
            }
        }
        removed
    }

    /// Serializes the circuit as OpenQASM 2.0 with terminal measurement.
    pub fn to_qasm(&self) -> String {
        let mut s = String::new();
        s.push_str("OPENQASM 2.0;\n");
        s.push_str("include \"qelib1.inc\";\n");
        s.push_str(&format!("qreg q[{}];\n", self.width));
        s.push_str(&format!("creg c[{}];\n", self.width));
        for g in &self.gates {
            s.push_str(&g.to_string());
            s.push('\n');
        }
        for q in 0..self.width {
            s.push_str(&format!("measure q[{q}] -> c[{q}];\n"));
        }
        s
    }

    // ----- builder methods ------------------------------------------------
    //
    // Every builder panics on invalid operands (see `push`).

    /// Appends an identity marker on `q`.
    pub fn id(&mut self, q: usize) -> &mut Self {
        self.push(Gate::I(q))
    }

    /// Appends X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Appends Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y(q))
    }

    /// Appends Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z(q))
    }

    /// Appends a Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Appends S on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S(q))
    }

    /// Appends S† on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg(q))
    }

    /// Appends T on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T(q))
    }

    /// Appends T† on `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Tdg(q))
    }

    /// Appends √X on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sx(q))
    }

    /// Appends Rx(θ) on `q`.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }

    /// Appends Ry(θ) on `q`.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(q, theta))
    }

    /// Appends Rz(θ) on `q`.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }

    /// Appends a phase gate P(θ) on `q`.
    pub fn p(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::P(q, theta))
    }

    /// Appends the generic U(θ, φ, λ) on `q`.
    pub fn u(&mut self, q: usize, theta: f64, phi: f64, lambda: f64) -> &mut Self {
        self.push(Gate::U(q, theta, phi, lambda))
    }

    /// Appends CNOT with the given control and target.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cx(control, target))
    }

    /// Appends CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }

    /// Appends a controlled phase CP(θ).
    pub fn cp(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Gate::Cp(a, b, theta))
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }

    /// Appends the standard 15-gate, 6-CNOT Toffoli decomposition with
    /// controls `a`, `b` and target `c`.
    pub fn ccx(&mut self, a: usize, b: usize, c: usize) -> &mut Self {
        self.h(c)
            .cx(b, c)
            .tdg(c)
            .cx(a, c)
            .t(c)
            .cx(b, c)
            .tdg(c)
            .cx(a, c)
            .t(b)
            .t(c)
            .cx(a, b)
            .h(c)
            .t(a)
            .tdg(b)
            .cx(a, b)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} <{} qubits, {} gates, {} cx, depth {}>",
            self.name,
            self.width,
            self.gate_count(),
            self.cx_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).t(2).swap(0, 2);
        assert_eq!(c.gate_count(), 5);
        assert_eq!(c.cx_count(), 2);
        assert_eq!(c.two_qubit_count(), 3);
        assert_eq!(c.single_qubit_count(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn try_push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::H(2)).unwrap_err();
        assert_eq!(err, CircuitError::QubitOutOfRange { qubit: 2, width: 2 });
    }

    #[test]
    fn try_push_rejects_duplicate() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Gate::Cx(1, 1)).unwrap_err();
        assert_eq!(err, CircuitError::DuplicateQubit { qubit: 1 });
    }

    #[test]
    #[should_panic(expected = "invalid gate")]
    fn push_panics_out_of_range() {
        let mut c = Circuit::new(1);
        c.cx(0, 1);
    }

    #[test]
    fn depth_parallel_gates() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        assert_eq!(c.depth(), 1);
        c.cx(0, 1).cx(2, 3);
        assert_eq!(c.depth(), 2);
        c.cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn depth_empty_is_zero() {
        assert_eq!(Circuit::new(5).depth(), 0);
    }

    #[test]
    fn used_qubits_subset() {
        let mut c = Circuit::new(5);
        c.h(1).cx(1, 3);
        let used: Vec<usize> = c.used_qubits().into_iter().collect();
        assert_eq!(used, vec![1, 3]);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gates(), &[Gate::Cx(0, 1), Gate::Tdg(0), Gate::H(0)]);
        assert_eq!(inv.name(), "circuit_dg");
    }

    #[test]
    fn compose_same_width() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        let c = a.compose(&b).unwrap();
        assert_eq!(c.gate_count(), 2);
        let wide = Circuit::new(3);
        assert!(a.compose(&wide).is_err());
    }

    #[test]
    fn remap_to_physical() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mapped = c.remap(&[5, 9], 10).unwrap();
        assert_eq!(mapped.gates(), &[Gate::H(5), Gate::Cx(5, 9)]);
        assert_eq!(mapped.width(), 10);
    }

    #[test]
    fn remap_rejects_non_injective() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let err = c.remap(&[3, 3], 5).unwrap_err();
        assert!(matches!(err, CircuitError::InvalidMapping { .. }));
    }

    #[test]
    fn remap_rejects_out_of_range_target() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(c.remap(&[7], 5).is_err());
    }

    #[test]
    fn interaction_graph_weights() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 0).cx(1, 2);
        let g = c.interaction_graph();
        assert_eq!(g[&(0, 1)], 2);
        assert_eq!(g[&(1, 2)], 1);
    }

    #[test]
    fn determinism_classification() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        assert!(c.is_classically_deterministic());
        c.h(1);
        assert!(!c.is_classically_deterministic());
    }

    #[test]
    fn cancellation_removes_pairs() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cx(0, 1).cx(0, 1).t(0);
        let removed = c.cancel_adjacent_inverses();
        assert_eq!(removed, 4);
        assert_eq!(c.gates(), &[Gate::T(0)]);
    }

    #[test]
    fn cancellation_cascades() {
        let mut c = Circuit::new(1);
        c.s(0).h(0).h(0).sdg(0);
        let removed = c.cancel_adjacent_inverses();
        assert_eq!(removed, 4);
        assert!(c.is_empty());
    }

    #[test]
    fn cancellation_respects_interleaving() {
        // cx(0,1) h(0) cx(0,1): the h blocks cancellation on qubit 0.
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0).cx(0, 1);
        assert_eq!(c.cancel_adjacent_inverses(), 0);
        assert_eq!(c.gate_count(), 3);
    }

    #[test]
    fn ccx_has_paper_counts() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert_eq!(c.gate_count(), 15);
        assert_eq!(c.cx_count(), 6);
    }

    #[test]
    fn qasm_round_structure() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let q = c.to_qasm();
        assert!(q.contains("qreg q[2];"));
        assert!(q.contains("h q[0];"));
        assert!(q.contains("cx q[0],q[1];"));
        assert!(q.contains("measure q[1] -> c[1];"));
    }

    #[test]
    fn display_summary() {
        let mut c = Circuit::with_name(2, "bell");
        c.h(0).cx(0, 1);
        assert_eq!(c.to_string(), "bell <2 qubits, 2 gates, 1 cx, depth 2>");
    }

    #[test]
    fn count_ops_by_name() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let ops = c.count_ops();
        assert_eq!(ops["h"], 2);
        assert_eq!(ops["cx"], 1);
    }
}
