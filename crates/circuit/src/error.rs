//! Error types of the circuit crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or transforming circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate refers to a qubit index `qubit` outside `0..width`.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: usize,
        /// Circuit width.
        width: usize,
    },
    /// A two-qubit gate was given the same qubit twice.
    DuplicateQubit {
        /// The repeated qubit index.
        qubit: usize,
    },
    /// Two circuits of incompatible widths were combined.
    WidthMismatch {
        /// Width expected by the receiver.
        expected: usize,
        /// Width of the argument.
        found: usize,
    },
    /// A qubit remapping did not cover every used qubit or was not injective.
    InvalidMapping {
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit index {qubit} out of range for width {width}")
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit gate uses qubit {qubit} twice")
            }
            CircuitError::WidthMismatch { expected, found } => {
                write!(
                    f,
                    "circuit width mismatch: expected {expected}, found {found}"
                )
            }
            CircuitError::InvalidMapping { reason } => {
                write!(f, "invalid qubit mapping: {reason}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CircuitError::QubitOutOfRange { qubit: 5, width: 3 };
        assert_eq!(e.to_string(), "qubit index 5 out of range for width 3");
        let e = CircuitError::DuplicateQubit { qubit: 2 };
        assert_eq!(e.to_string(), "two-qubit gate uses qubit 2 twice");
        let e = CircuitError::WidthMismatch {
            expected: 4,
            found: 6,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = CircuitError::InvalidMapping {
            reason: "not injective".into(),
        };
        assert!(e.to_string().contains("not injective"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(CircuitError::DuplicateQubit { qubit: 0 });
        assert!(e.source().is_none());
    }
}
