//! A parser and writer for the OpenQASM 2.0 subset used by the paper's
//! benchmark suites (RevLib, QASMBench).
//!
//! Supported statements: the version header, `include`, `qreg`, `creg`,
//! `barrier` (ignored), `measure`, and applications of the `qelib1.inc`
//! gates in [`crate::Gate`] plus `u1`/`u2`/`u`/`cu1` aliases and `ccx`
//! (expanded into the standard 15-gate decomposition). Parameter
//! expressions support numbers, `pi`, unary minus, `+ - * /` and
//! parentheses.

use std::error::Error;
use std::fmt;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Errors produced while parsing OpenQASM 2.0 source.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// A statement could not be parsed.
    Syntax {
        /// 1-based statement number in the source.
        statement: usize,
        /// Description of the problem.
        message: String,
    },
    /// A gate refers to an undeclared register or an out-of-range index.
    UnknownQubit {
        /// 1-based statement number in the source.
        statement: usize,
        /// The offending reference, e.g. `q[9]`.
        reference: String,
    },
    /// The gate mnemonic is not in the supported subset.
    UnsupportedGate {
        /// 1-based statement number in the source.
        statement: usize,
        /// The mnemonic found.
        name: String,
    },
    /// No `qreg` was declared before the first gate.
    MissingRegister,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::Syntax { statement, message } => {
                write!(f, "syntax error in statement {statement}: {message}")
            }
            QasmError::UnknownQubit {
                statement,
                reference,
            } => {
                write!(
                    f,
                    "unknown qubit reference {reference} in statement {statement}"
                )
            }
            QasmError::UnsupportedGate { statement, name } => {
                write!(f, "unsupported gate `{name}` in statement {statement}")
            }
            QasmError::MissingRegister => write!(f, "no qreg declared before first gate"),
        }
    }
}

impl Error for QasmError {}

/// Parses OpenQASM 2.0 source into a [`Circuit`].
///
/// Multiple `qreg` declarations are concatenated in declaration order.
/// `measure` and `barrier` statements are validated and dropped (this IR
/// measures every qubit implicitly at the end).
///
/// # Errors
///
/// Returns a [`QasmError`] describing the first offending statement.
///
/// ```
/// # fn main() -> Result<(), qucp_circuit::QasmError> {
/// let src = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     creg c[2];
///     h q[0];
///     cx q[0],q[1];
///     measure q[0] -> c[0];
/// "#;
/// let c = qucp_circuit::parse_qasm(src)?;
/// assert_eq!(c.gate_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_qasm(source: &str) -> Result<Circuit, QasmError> {
    let cleaned = strip_comments(source);
    let mut registers: Vec<(String, usize)> = Vec::new();
    let mut pending: Vec<PendingGate> = Vec::new();

    for (idx, raw) in cleaned.split(';').enumerate() {
        let stmt_no = idx + 1;
        let stmt = raw.trim();
        if stmt.is_empty() {
            continue;
        }
        let lower = stmt.to_ascii_lowercase();
        if lower.starts_with("openqasm") || lower.starts_with("include") {
            continue;
        }
        if let Some(rest) = lower.strip_prefix("qreg") {
            let (name, size) = parse_register(rest, stmt_no)?;
            registers.push((name, size));
            continue;
        }
        if lower.starts_with("creg") || lower.starts_with("barrier") {
            continue;
        }
        if lower.starts_with("measure") {
            // Validated lazily: references must name a declared register.
            continue;
        }
        pending.push(parse_gate_statement(stmt, stmt_no)?);
    }

    if registers.is_empty() {
        if pending.is_empty() {
            return Ok(Circuit::new(0));
        }
        return Err(QasmError::MissingRegister);
    }

    let width: usize = registers.iter().map(|(_, n)| n).sum();
    let mut circuit = Circuit::new(width);
    for g in pending {
        let resolve = |reference: &QubitRef| -> Result<usize, QasmError> {
            let mut offset = 0;
            for (name, size) in &registers {
                if *name == reference.register {
                    if reference.index < *size {
                        return Ok(offset + reference.index);
                    }
                    break;
                }
                offset += size;
            }
            Err(QasmError::UnknownQubit {
                statement: g.statement,
                reference: format!("{}[{}]", reference.register, reference.index),
            })
        };
        let qubits: Vec<usize> = g.qubits.iter().map(&resolve).collect::<Result<_, _>>()?;
        emit_gate(&mut circuit, &g, &qubits)?;
    }
    Ok(circuit)
}

/// A single-register qubit reference like `q[3]`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QubitRef {
    register: String,
    index: usize,
}

#[derive(Debug, Clone)]
struct PendingGate {
    statement: usize,
    name: String,
    params: Vec<f64>,
    qubits: Vec<QubitRef>,
}

fn strip_comments(source: &str) -> String {
    source
        .lines()
        .map(|l| match l.find("//") {
            Some(pos) => &l[..pos],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn parse_register(rest: &str, statement: usize) -> Result<(String, usize), QasmError> {
    let rest = rest.trim();
    let open = rest.find('[').ok_or_else(|| QasmError::Syntax {
        statement,
        message: "expected `name[size]`".to_string(),
    })?;
    let close = rest.find(']').ok_or_else(|| QasmError::Syntax {
        statement,
        message: "missing `]`".to_string(),
    })?;
    let name = rest[..open].trim().to_string();
    let size: usize = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| QasmError::Syntax {
            statement,
            message: "register size is not an integer".to_string(),
        })?;
    if name.is_empty() {
        return Err(QasmError::Syntax {
            statement,
            message: "empty register name".to_string(),
        });
    }
    Ok((name, size))
}

fn parse_gate_statement(stmt: &str, statement: usize) -> Result<PendingGate, QasmError> {
    // Split "name(params)? operands".
    let (head, operands) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) if !stmt[..pos].contains('(') && !stmt.contains('(') => {
            (&stmt[..pos], &stmt[pos..])
        }
        _ => {
            if let Some(open) = stmt.find('(') {
                let close = matching_paren(stmt, open).ok_or_else(|| QasmError::Syntax {
                    statement,
                    message: "unbalanced parentheses".to_string(),
                })?;
                (&stmt[..close + 1], &stmt[close + 1..])
            } else {
                let pos =
                    stmt.find(|c: char| c.is_whitespace())
                        .ok_or_else(|| QasmError::Syntax {
                            statement,
                            message: "gate without operands".to_string(),
                        })?;
                (&stmt[..pos], &stmt[pos..])
            }
        }
    };

    let (name, params) = if let Some(open) = head.find('(') {
        let name = head[..open].trim().to_ascii_lowercase();
        let inner = &head[open + 1..head.len() - 1];
        let params = inner
            .split(',')
            .map(|e| eval_expr(e, statement))
            .collect::<Result<Vec<_>, _>>()?;
        (name, params)
    } else {
        (head.trim().to_ascii_lowercase(), Vec::new())
    };

    let qubits = operands
        .split(',')
        .map(|s| parse_qubit_ref(s, statement))
        .collect::<Result<Vec<_>, _>>()?;
    if qubits.is_empty() {
        return Err(QasmError::Syntax {
            statement,
            message: "gate without operands".to_string(),
        });
    }
    Ok(PendingGate {
        statement,
        name,
        params,
        qubits,
    })
}

fn matching_paren(s: &str, open: usize) -> Option<usize> {
    let mut depth = 0;
    for (i, c) in s.char_indices().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn parse_qubit_ref(text: &str, statement: usize) -> Result<QubitRef, QasmError> {
    let text = text.trim();
    let open = text.find('[').ok_or_else(|| QasmError::Syntax {
        statement,
        message: format!("expected qubit reference, found `{text}`"),
    })?;
    let close = text.find(']').ok_or_else(|| QasmError::Syntax {
        statement,
        message: "missing `]` in qubit reference".to_string(),
    })?;
    let register = text[..open].trim().to_string();
    let index: usize = text[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| QasmError::Syntax {
            statement,
            message: "qubit index is not an integer".to_string(),
        })?;
    Ok(QubitRef { register, index })
}

fn emit_gate(circuit: &mut Circuit, g: &PendingGate, q: &[usize]) -> Result<(), QasmError> {
    let statement = g.statement;
    let arity_err = |want: usize| QasmError::Syntax {
        statement,
        message: format!(
            "gate `{}` expects {want} qubit(s), found {}",
            g.name,
            q.len()
        ),
    };
    let param_err = |want: usize| QasmError::Syntax {
        statement,
        message: format!(
            "gate `{}` expects {want} parameter(s), found {}",
            g.name,
            g.params.len()
        ),
    };
    let need = |n: usize| -> Result<(), QasmError> {
        if q.len() != n {
            Err(arity_err(n))
        } else {
            Ok(())
        }
    };
    let need_p = |n: usize| -> Result<(), QasmError> {
        if g.params.len() != n {
            Err(param_err(n))
        } else {
            Ok(())
        }
    };

    let push = |circuit: &mut Circuit, gate: Gate| -> Result<(), QasmError> {
        circuit.try_push(gate).map_err(|e| QasmError::Syntax {
            statement,
            message: e.to_string(),
        })
    };

    match g.name.as_str() {
        "id" | "i" => {
            need(1)?;
            push(circuit, Gate::I(q[0]))
        }
        "x" => {
            need(1)?;
            push(circuit, Gate::X(q[0]))
        }
        "y" => {
            need(1)?;
            push(circuit, Gate::Y(q[0]))
        }
        "z" => {
            need(1)?;
            push(circuit, Gate::Z(q[0]))
        }
        "h" => {
            need(1)?;
            push(circuit, Gate::H(q[0]))
        }
        "s" => {
            need(1)?;
            push(circuit, Gate::S(q[0]))
        }
        "sdg" => {
            need(1)?;
            push(circuit, Gate::Sdg(q[0]))
        }
        "t" => {
            need(1)?;
            push(circuit, Gate::T(q[0]))
        }
        "tdg" => {
            need(1)?;
            push(circuit, Gate::Tdg(q[0]))
        }
        "sx" => {
            need(1)?;
            push(circuit, Gate::Sx(q[0]))
        }
        "sxdg" => {
            need(1)?;
            push(circuit, Gate::Sxdg(q[0]))
        }
        "rx" => {
            need(1)?;
            need_p(1)?;
            push(circuit, Gate::Rx(q[0], g.params[0]))
        }
        "ry" => {
            need(1)?;
            need_p(1)?;
            push(circuit, Gate::Ry(q[0], g.params[0]))
        }
        "rz" => {
            need(1)?;
            need_p(1)?;
            push(circuit, Gate::Rz(q[0], g.params[0]))
        }
        "p" | "u1" => {
            need(1)?;
            need_p(1)?;
            push(circuit, Gate::P(q[0], g.params[0]))
        }
        "u2" => {
            need(1)?;
            need_p(2)?;
            push(
                circuit,
                Gate::U(q[0], std::f64::consts::FRAC_PI_2, g.params[0], g.params[1]),
            )
        }
        "u3" | "u" => {
            need(1)?;
            need_p(3)?;
            push(
                circuit,
                Gate::U(q[0], g.params[0], g.params[1], g.params[2]),
            )
        }
        "cx" | "cnot" => {
            need(2)?;
            push(circuit, Gate::Cx(q[0], q[1]))
        }
        "cz" => {
            need(2)?;
            push(circuit, Gate::Cz(q[0], q[1]))
        }
        "cp" | "cu1" => {
            need(2)?;
            need_p(1)?;
            push(circuit, Gate::Cp(q[0], q[1], g.params[0]))
        }
        "swap" => {
            need(2)?;
            push(circuit, Gate::Swap(q[0], q[1]))
        }
        "ccx" => {
            need(3)?;
            if q[0] == q[1] || q[1] == q[2] || q[0] == q[2] {
                return Err(QasmError::Syntax {
                    statement,
                    message: "ccx operands must be distinct".to_string(),
                });
            }
            circuit.ccx(q[0], q[1], q[2]);
            Ok(())
        }
        other => Err(QasmError::UnsupportedGate {
            statement,
            name: other.to_string(),
        }),
    }
}

// --- tiny arithmetic expression evaluator for gate parameters -------------

fn eval_expr(expr: &str, statement: usize) -> Result<f64, QasmError> {
    let tokens = tokenize_expr(expr, statement)?;
    let mut parser = ExprParser {
        tokens,
        pos: 0,
        statement,
    };
    let v = parser.parse_additive()?;
    if parser.pos != parser.tokens.len() {
        return Err(QasmError::Syntax {
            statement,
            message: format!("trailing tokens in expression `{expr}`"),
        });
    }
    Ok(v)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize_expr(expr: &str, statement: usize) -> Result<Vec<Tok>, QasmError> {
    let mut out = Vec::new();
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            'p' | 'P' => {
                if expr[i..].len() >= 2 && expr[i..i + 2].eq_ignore_ascii_case("pi") {
                    out.push(Tok::Num(std::f64::consts::PI));
                    i += 2;
                } else {
                    return Err(QasmError::Syntax {
                        statement,
                        message: format!("unexpected character `{c}` in expression"),
                    });
                }
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let v: f64 = expr[start..i].parse().map_err(|_| QasmError::Syntax {
                    statement,
                    message: format!("bad number `{}`", &expr[start..i]),
                })?;
                out.push(Tok::Num(v));
            }
            other => {
                return Err(QasmError::Syntax {
                    statement,
                    message: format!("unexpected character `{other}` in expression"),
                })
            }
        }
    }
    Ok(out)
}

struct ExprParser {
    tokens: Vec<Tok>,
    pos: usize,
    statement: usize,
}

impl ExprParser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> QasmError {
        QasmError::Syntax {
            statement: self.statement,
            message: message.into(),
        }
    }

    fn parse_additive(&mut self) -> Result<f64, QasmError> {
        let mut v = self.parse_multiplicative()?;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Plus => {
                    self.bump();
                    v += self.parse_multiplicative()?;
                }
                Tok::Minus => {
                    self.bump();
                    v -= self.parse_multiplicative()?;
                }
                _ => break,
            }
        }
        Ok(v)
    }

    fn parse_multiplicative(&mut self) -> Result<f64, QasmError> {
        let mut v = self.parse_unary()?;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Star => {
                    self.bump();
                    v *= self.parse_unary()?;
                }
                Tok::Slash => {
                    self.bump();
                    v /= self.parse_unary()?;
                }
                _ => break,
            }
        }
        Ok(v)
    }

    fn parse_unary(&mut self) -> Result<f64, QasmError> {
        match self.bump() {
            Some(Tok::Minus) => Ok(-self.parse_unary()?),
            Some(Tok::Plus) => self.parse_unary(),
            Some(Tok::Num(v)) => Ok(v),
            Some(Tok::LParen) => {
                let v = self.parse_additive()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(v),
                    _ => Err(self.err("missing `)`")),
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    #[test]
    fn parse_minimal_bell() {
        let src = format!("{HEADER}qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\n");
        let c = parse_qasm(&src).unwrap();
        assert_eq!(c.width(), 2);
        assert_eq!(c.gates(), &[Gate::H(0), Gate::Cx(0, 1)]);
    }

    #[test]
    fn parse_parameterized_gates() {
        let src = format!(
            "{HEADER}qreg q[1];\nrx(pi/2) q[0];\nry(-pi/4) q[0];\nrz(0.5) q[0];\nu3(pi,0,pi) q[0];\nu1(2*pi/3) q[0];\n"
        );
        let c = parse_qasm(&src).unwrap();
        assert_eq!(c.gate_count(), 5);
        assert_eq!(c.gates()[0], Gate::Rx(0, PI / 2.0));
        assert_eq!(c.gates()[1], Gate::Ry(0, -PI / 4.0));
        assert_eq!(c.gates()[2], Gate::Rz(0, 0.5));
        assert_eq!(c.gates()[3], Gate::U(0, PI, 0.0, PI));
        assert_eq!(c.gates()[4], Gate::P(0, 2.0 * PI / 3.0));
    }

    #[test]
    fn parse_expression_arithmetic() {
        assert!((eval_expr("pi/2", 1).unwrap() - PI / 2.0).abs() < 1e-15);
        assert!((eval_expr("-pi", 1).unwrap() + PI).abs() < 1e-15);
        assert!((eval_expr("3*pi/4", 1).unwrap() - 3.0 * PI / 4.0).abs() < 1e-15);
        assert!((eval_expr("(1+2)*0.5", 1).unwrap() - 1.5).abs() < 1e-15);
        assert!((eval_expr("1e-3", 1).unwrap() - 0.001).abs() < 1e-18);
        assert!((eval_expr("2.5e2", 1).unwrap() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn parse_expression_errors() {
        assert!(eval_expr("pi pi", 1).is_err());
        assert!(eval_expr("(1", 1).is_err());
        assert!(eval_expr("1 $ 2", 1).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = format!("{HEADER}// a comment\nqreg q[1];\n\nx q[0]; // trailing\n");
        let c = parse_qasm(&src).unwrap();
        assert_eq!(c.gates(), &[Gate::X(0)]);
    }

    #[test]
    fn measure_and_barrier_dropped() {
        let src = format!(
            "{HEADER}qreg q[2];\ncreg c[2];\nh q[0];\nbarrier q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n"
        );
        let c = parse_qasm(&src).unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn ccx_expands() {
        let src = format!("{HEADER}qreg q[3];\nccx q[0],q[1],q[2];\n");
        let c = parse_qasm(&src).unwrap();
        assert_eq!(c.gate_count(), 15);
        assert_eq!(c.cx_count(), 6);
    }

    #[test]
    fn multiple_registers_concatenate() {
        let src = format!("{HEADER}qreg a[2];\nqreg b[2];\nh a[1];\ncx a[0],b[1];\n");
        let c = parse_qasm(&src).unwrap();
        assert_eq!(c.width(), 4);
        assert_eq!(c.gates(), &[Gate::H(1), Gate::Cx(0, 3)]);
    }

    #[test]
    fn unknown_register_rejected() {
        let src = format!("{HEADER}qreg q[2];\nh r[0];\n");
        let err = parse_qasm(&src).unwrap_err();
        assert!(matches!(err, QasmError::UnknownQubit { .. }));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let src = format!("{HEADER}qreg q[2];\nh q[5];\n");
        let err = parse_qasm(&src).unwrap_err();
        assert!(matches!(err, QasmError::UnknownQubit { .. }));
    }

    #[test]
    fn unsupported_gate_rejected() {
        let src = format!("{HEADER}qreg q[2];\nfancy q[0];\n");
        let err = parse_qasm(&src).unwrap_err();
        assert!(matches!(err, QasmError::UnsupportedGate { .. }));
    }

    #[test]
    fn gates_without_any_register_rejected() {
        let src = format!("{HEADER}h q[0];\n");
        assert_eq!(parse_qasm(&src).unwrap_err(), QasmError::MissingRegister);
    }

    #[test]
    fn empty_source_gives_empty_circuit() {
        let c = parse_qasm(HEADER).unwrap();
        assert_eq!(c.width(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn round_trip_through_writer() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(1, PI / 8.0)
            .swap(1, 2)
            .t(2)
            .cp(0, 2, -PI / 2.0);
        let qasm = c.to_qasm();
        let parsed = parse_qasm(&qasm).unwrap();
        assert_eq!(parsed.width(), c.width());
        assert_eq!(parsed.gates().len(), c.gates().len());
        for (a, b) in parsed.gates().iter().zip(c.gates()) {
            match (a, b) {
                (Gate::Rz(qa, ta), Gate::Rz(qb, tb)) => {
                    assert_eq!(qa, qb);
                    assert!((ta - tb).abs() < 1e-9);
                }
                (Gate::Cp(xa, ya, ta), Gate::Cp(xb, yb, tb)) => {
                    assert_eq!((xa, ya), (xb, yb));
                    assert!((ta - tb).abs() < 1e-9);
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn cz_and_swap_and_aliases() {
        let src = format!(
            "{HEADER}qreg q[2];\ncz q[0],q[1];\nswap q[0],q[1];\ncnot q[0],q[1];\ncu1(pi/8) q[0],q[1];\nu2(0,pi) q[0];\n"
        );
        let c = parse_qasm(&src).unwrap();
        assert_eq!(c.gates()[0], Gate::Cz(0, 1));
        assert_eq!(c.gates()[1], Gate::Swap(0, 1));
        assert_eq!(c.gates()[2], Gate::Cx(0, 1));
        assert!(matches!(c.gates()[3], Gate::Cp(0, 1, _)));
        assert!(matches!(c.gates()[4], Gate::U(0, ..)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let src = format!("{HEADER}qreg q[2];\ncx q[0];\n");
        assert!(matches!(
            parse_qasm(&src).unwrap_err(),
            QasmError::Syntax { .. }
        ));
        let src = format!("{HEADER}qreg q[2];\nrx q[0];\n");
        assert!(matches!(
            parse_qasm(&src).unwrap_err(),
            QasmError::Syntax { .. }
        ));
    }

    #[test]
    fn error_display() {
        let e = QasmError::UnsupportedGate {
            statement: 4,
            name: "foo".to_string(),
        };
        assert_eq!(e.to_string(), "unsupported gate `foo` in statement 4");
        assert_eq!(
            QasmError::MissingRegister.to_string(),
            "no qreg declared before first gate"
        );
    }
}
