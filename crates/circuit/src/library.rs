//! The benchmark suite of Table II of the paper, plus a few generic circuit
//! generators used by examples and tests.
//!
//! The eight benchmarks are reconstructions of the RevLib / QASMBench
//! circuits the paper evaluates, with the **exact qubit / gate / CNOT
//! counts of Table II** and the same result class: reversible-logic
//! circuits (`adder`, `4mod5-v1_22`, `fredkin`, `alu-v0_27`) are built from
//! basis-preserving gate networks so their noiseless output is a single
//! bitstring (evaluated with PST), while the remaining four produce
//! distributions (evaluated with JSD). Circuits are embedded as OpenQASM
//! 2.0 and parsed by [`crate::parse_qasm`], which keeps the parser honest.

use crate::circuit::Circuit;
use crate::qasm::parse_qasm;

/// How the noiseless output of a benchmark is evaluated (Table II "Result").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultKind {
    /// The ideal output is a single bitstring; fidelity is measured with
    /// the Probability of a Successful Trial (PST), Eq. (2) of the paper.
    Deterministic,
    /// The ideal output is a distribution; fidelity is measured with the
    /// Jensen-Shannon divergence (JSD), Eq. (3) of the paper.
    Distribution,
}

/// Expected structural statistics of a benchmark (the Table II row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkStats {
    /// Number of qubits.
    pub qubits: usize,
    /// Total gate count.
    pub gates: usize,
    /// CNOT count.
    pub cx: usize,
}

/// One benchmark of the paper's Table II.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Canonical benchmark name as printed in the paper.
    pub name: &'static str,
    /// Short name used on the figure axes (`adder`, `4mod`, `fred`, …).
    pub short_name: &'static str,
    /// Result class: deterministic (PST) or distribution (JSD).
    pub result: ResultKind,
    /// The Table II row this reconstruction matches.
    pub stats: BenchmarkStats,
    /// OpenQASM 2.0 source.
    pub qasm: &'static str,
}

impl Benchmark {
    /// Parses the embedded QASM into a circuit named after the benchmark.
    ///
    /// # Panics
    ///
    /// Never panics for the embedded benchmarks (covered by tests); the
    /// QASM sources are fixed at compile time.
    pub fn circuit(&self) -> Circuit {
        let mut c = parse_qasm(self.qasm)
            .unwrap_or_else(|e| panic!("embedded benchmark `{}` failed to parse: {e}", self.name));
        c.set_name(self.name);
        c
    }
}

const ADDER_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// 1-bit full adder with carry (IBM QX tutorial form): a=q0, b=q1,
// sum into q2, carry into q3.
qreg q[4];
creg c[4];
x q[0];
x q[1];
h q[3];
cx q[2],q[3];
t q[0];
t q[1];
t q[2];
tdg q[3];
cx q[0],q[1];
cx q[2],q[3];
cx q[3],q[0];
cx q[1],q[2];
cx q[0],q[1];
cx q[2],q[3];
tdg q[0];
tdg q[1];
tdg q[2];
t q[3];
cx q[0],q[1];
cx q[2],q[3];
s q[3];
cx q[3],q[0];
h q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
"#;

const LINEARSOLVER_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// 2x2 linear system solver sketch (HHL-lite): controlled rotations on an
// ancilla conditioned on two equation qubits.
qreg q[3];
creg c[3];
ry(0.3) q[0];
ry(0.7) q[1];
rz(1.1) q[2];
h q[0];
h q[1];
ry(pi/8) q[2];
cx q[0],q[2];
ry(pi/4) q[2];
cx q[1],q[2];
ry(-pi/4) q[2];
cx q[0],q[2];
ry(-pi/8) q[2];
cx q[1],q[2];
h q[0];
h q[1];
rz(pi/4) q[2];
h q[2];
s q[0];
t q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
"#;

const FOURMOD5_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// 4mod5-v1_22 (RevLib): reversible mod-5 block on 5 lines, CX/X network.
qreg q[5];
creg c[5];
x q[1];
x q[4];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
x q[2];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
x q[3];
cx q[4],q[0];
cx q[0],q[1];
cx q[1],q[2];
x q[0];
cx q[3],q[4];
cx q[4],q[0];
x q[4];
x q[3];
x q[0];
x q[1];
x q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
measure q[4] -> c[4];
"#;

const FREDKIN_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// Controlled swap: control q0, targets q1/q2, on input |110>.
qreg q[3];
creg c[3];
x q[0];
x q[1];
cx q[2],q[1];
h q[2];
cx q[1],q[2];
tdg q[2];
cx q[0],q[2];
t q[2];
cx q[1],q[2];
tdg q[2];
cx q[0],q[2];
t q[1];
t q[2];
cx q[0],q[1];
h q[2];
t q[0];
tdg q[1];
cx q[0],q[1];
cx q[2],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
"#;

const QEC_EN_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// 5-qubit error-correction encoder sketch: data qubit q0 spread over a
// bit-flip block, syndrome qubits entangled in the X basis.
qreg q[5];
creg c[5];
ry(pi/3) q[0];
cx q[0],q[1];
cx q[0],q[2];
h q[3];
h q[4];
cx q[3],q[0];
cx q[3],q[1];
cx q[4],q[1];
cx q[4],q[2];
t q[0];
tdg q[1];
t q[2];
s q[3];
sdg q[4];
cx q[0],q[3];
cx q[2],q[4];
h q[0];
h q[1];
h q[2];
x q[3];
x q[4];
rz(0.5) q[0];
ry(0.25) q[1];
cx q[1],q[3];
cx q[2],q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
measure q[4] -> c[4];
"#;

const ALU_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// alu-v0_27 (RevLib): one-bit ALU slice; two Toffoli stages feeding a CX
// propagate network.
qreg q[5];
creg c[5];
x q[0];
ccx q[0],q[1],q[2];
ccx q[2],q[3],q[4];
cx q[0],q[1];
cx q[2],q[3];
cx q[4],q[0];
cx q[1],q[2];
cx q[3],q[4];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
measure q[4] -> c[4];
"#;

const BELL_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// Dressed Bell-pair preparation over four qubits with rotation padding.
qreg q[4];
creg c[4];
h q[0];
h q[1];
h q[2];
h q[3];
rz(pi/8) q[0];
rz(pi/4) q[1];
rz(3*pi/8) q[2];
rz(pi/2) q[3];
cx q[0],q[1];
cx q[2],q[3];
ry(pi/5) q[0];
ry(2*pi/5) q[1];
ry(3*pi/5) q[2];
ry(4*pi/5) q[3];
cx q[1],q[2];
rz(pi/7) q[0];
rz(2*pi/7) q[1];
rz(3*pi/7) q[2];
rz(4*pi/7) q[3];
cx q[0],q[1];
cx q[2],q[3];
ry(pi/9) q[0];
ry(2*pi/9) q[1];
ry(pi/6) q[2];
ry(pi/3) q[3];
cx q[3],q[0];
s q[0];
t q[1];
sdg q[2];
tdg q[3];
h q[0];
h q[2];
cx q[1],q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
"#;

const VARIATION_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// Hardware-efficient variational ansatz instance: four RyRz + ring-CX
// layers and a final rotation layer.
qreg q[4];
creg c[4];
ry(0.1) q[0];
rz(0.2) q[0];
ry(0.3) q[1];
rz(0.4) q[1];
ry(0.5) q[2];
rz(0.6) q[2];
ry(0.7) q[3];
rz(0.8) q[3];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[0];
ry(0.9) q[0];
rz(1.0) q[0];
ry(1.1) q[1];
rz(1.2) q[1];
ry(1.3) q[2];
rz(1.4) q[2];
ry(1.5) q[3];
rz(1.6) q[3];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[0];
ry(1.7) q[0];
rz(1.8) q[0];
ry(1.9) q[1];
rz(2.0) q[1];
ry(2.1) q[2];
rz(2.2) q[2];
ry(2.3) q[3];
rz(2.4) q[3];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[0];
ry(2.5) q[0];
rz(2.6) q[0];
ry(2.7) q[1];
rz(2.8) q[1];
ry(2.9) q[2];
rz(3.0) q[2];
ry(3.1) q[3];
rz(0.15) q[3];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[0];
ry(0.25) q[0];
ry(0.35) q[1];
ry(0.45) q[2];
ry(0.55) q[3];
rz(0.65) q[0];
rz(0.75) q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
"#;

/// The eight Table II benchmarks in the paper's row order.
pub const TABLE2: [Benchmark; 8] = [
    Benchmark {
        name: "adder",
        short_name: "adder",
        result: ResultKind::Deterministic,
        stats: BenchmarkStats {
            qubits: 4,
            gates: 23,
            cx: 10,
        },
        qasm: ADDER_QASM,
    },
    Benchmark {
        name: "linearsolver",
        short_name: "lin",
        result: ResultKind::Distribution,
        stats: BenchmarkStats {
            qubits: 3,
            gates: 19,
            cx: 4,
        },
        qasm: LINEARSOLVER_QASM,
    },
    Benchmark {
        name: "4mod5-v1_22",
        short_name: "4mod",
        result: ResultKind::Deterministic,
        stats: BenchmarkStats {
            qubits: 5,
            gates: 21,
            cx: 11,
        },
        qasm: FOURMOD5_QASM,
    },
    Benchmark {
        name: "fredkin",
        short_name: "fred",
        result: ResultKind::Deterministic,
        stats: BenchmarkStats {
            qubits: 3,
            gates: 19,
            cx: 8,
        },
        qasm: FREDKIN_QASM,
    },
    Benchmark {
        name: "qec_en",
        short_name: "qec",
        result: ResultKind::Distribution,
        stats: BenchmarkStats {
            qubits: 5,
            gates: 25,
            cx: 10,
        },
        qasm: QEC_EN_QASM,
    },
    Benchmark {
        name: "alu-v0_27",
        short_name: "alu",
        result: ResultKind::Deterministic,
        stats: BenchmarkStats {
            qubits: 5,
            gates: 36,
            cx: 17,
        },
        qasm: ALU_QASM,
    },
    Benchmark {
        name: "bell",
        short_name: "bell",
        result: ResultKind::Distribution,
        stats: BenchmarkStats {
            qubits: 4,
            gates: 33,
            cx: 7,
        },
        qasm: BELL_QASM,
    },
    Benchmark {
        name: "variation",
        short_name: "var",
        result: ResultKind::Distribution,
        stats: BenchmarkStats {
            qubits: 4,
            gates: 54,
            cx: 16,
        },
        qasm: VARIATION_QASM,
    },
];

/// All Table II benchmarks.
pub fn all() -> &'static [Benchmark] {
    &TABLE2
}

/// Looks a benchmark up by either its full or short name.
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    TABLE2
        .iter()
        .find(|b| b.name == name || b.short_name == name)
}

/// A GHZ state preparation circuit on `n` qubits (H then a CNOT chain).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n > 0, "ghz requires at least one qubit");
    let mut c = Circuit::with_name(n, format!("ghz_{n}"));
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// The quantum Fourier transform on `n` qubits (without the final qubit
/// reversal), built from H and controlled-phase gates.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qft(n: usize) -> Circuit {
    assert!(n > 0, "qft requires at least one qubit");
    let mut c = Circuit::with_name(n, format!("qft_{n}"));
    for i in 0..n {
        c.h(i);
        for j in i + 1..n {
            let angle = std::f64::consts::PI / f64::powi(2.0, (j - i) as i32);
            c.cp(j, i, angle);
        }
    }
    c
}

/// A W-state preparation circuit on `n` qubits using the cascade of
/// controlled rotations (ideal output: equal superposition of the `n`
/// one-hot bitstrings).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn w_state(n: usize) -> Circuit {
    assert!(n > 0, "w_state requires at least one qubit");
    let mut c = Circuit::with_name(n, format!("w_{n}"));
    c.x(0);
    for k in 1..n {
        // Move (n-k)/(n-k+1) of the remaining excitation from qubit k-1
        // onto qubit k: a controlled-Ry (decomposed Ry/CX/Ry/CX) followed
        // by a CX that shifts the transferred excitation.
        let moved = (n - k) as f64 / ((n - k) as f64 + 1.0);
        let theta = 2.0 * moved.sqrt().asin();
        c.ry(k, theta / 2.0);
        c.cx(k - 1, k);
        c.ry(k, -theta / 2.0);
        c.cx(k - 1, k);
        c.cx(k, k - 1);
    }
    c
}

/// Bernstein–Vazirani for an `n`-bit `secret` with an explicit ancilla
/// on the last wire (width `n + 1`). Deterministic: measures the secret.
///
/// # Panics
///
/// Panics if `n == 0` or `secret >= 2^n`.
pub fn bernstein_vazirani(n: usize, secret: usize) -> Circuit {
    assert!(n > 0, "bernstein_vazirani requires at least one data qubit");
    assert!(secret < (1 << n), "secret does not fit in {n} bits");
    let mut c = Circuit::with_name(n + 1, format!("bv_{n}_{secret:b}"));
    c.x(n).h(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        if secret >> q & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c.h(n).x(n);
    c
}

/// One QAOA layer for MaxCut on a ring of `n` vertices: the standard
/// `H^{⊗n} · e^{-iγ Σ Z_i Z_{i+1}} · e^{-iβ Σ X_i}` circuit with the ZZ
/// terms compiled to CX·Rz·CX.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn qaoa_maxcut_ring(n: usize, gamma: f64, beta: f64) -> Circuit {
    assert!(n >= 3, "a ring needs at least 3 vertices");
    let mut c = Circuit::with_name(n, format!("qaoa_ring_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for i in 0..n {
        let j = (i + 1) % n;
        c.cx(i, j);
        c.rz(j, 2.0 * gamma);
        c.cx(i, j);
    }
    for q in 0..n {
        c.rx(q, 2.0 * beta);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_match_paper() {
        for b in all() {
            let c = b.circuit();
            assert_eq!(c.width(), b.stats.qubits, "{} qubits", b.name);
            assert_eq!(c.gate_count(), b.stats.gates, "{} gates", b.name);
            assert_eq!(c.cx_count(), b.stats.cx, "{} cx", b.name);
        }
    }

    #[test]
    fn table2_row_order_matches_paper() {
        let names: Vec<&str> = all().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "adder",
                "linearsolver",
                "4mod5-v1_22",
                "fredkin",
                "qec_en",
                "alu-v0_27",
                "bell",
                "variation"
            ]
        );
    }

    #[test]
    fn result_kind_classification() {
        assert_eq!(by_name("adder").unwrap().result, ResultKind::Deterministic);
        assert_eq!(
            by_name("fredkin").unwrap().result,
            ResultKind::Deterministic
        );
        assert_eq!(
            by_name("4mod5-v1_22").unwrap().result,
            ResultKind::Deterministic
        );
        assert_eq!(
            by_name("alu-v0_27").unwrap().result,
            ResultKind::Deterministic
        );
        assert_eq!(by_name("bell").unwrap().result, ResultKind::Distribution);
        assert_eq!(
            by_name("linearsolver").unwrap().result,
            ResultKind::Distribution
        );
        assert_eq!(by_name("qec_en").unwrap().result, ResultKind::Distribution);
        assert_eq!(
            by_name("variation").unwrap().result,
            ResultKind::Distribution
        );
    }

    #[test]
    fn classical_benchmarks_are_basis_preserving() {
        // The X/CX-network reconstructions must be deterministic by
        // construction; the Toffoli-based ones are verified end-to-end by
        // the simulator tests in qucp-sim.
        let c = by_name("4mod5-v1_22").unwrap().circuit();
        assert!(c.is_classically_deterministic());
    }

    #[test]
    fn lookup_by_short_name() {
        assert_eq!(by_name("4mod").unwrap().name, "4mod5-v1_22");
        assert_eq!(by_name("lin").unwrap().name, "linearsolver");
        assert_eq!(by_name("var").unwrap().name, "variation");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn ghz_structure() {
        let c = ghz(4);
        assert_eq!(c.width(), 4);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.cx_count(), 3);
        assert_eq!(c.depth(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn ghz_zero_panics() {
        ghz(0);
    }

    #[test]
    fn qft_gate_count() {
        // n H gates + n(n-1)/2 controlled-phase gates.
        let c = qft(4);
        assert_eq!(c.gate_count(), 4 + 6);
        assert_eq!(c.two_qubit_count(), 6);
    }

    #[test]
    fn benchmarks_use_all_declared_qubits() {
        for b in all() {
            let c = b.circuit();
            assert_eq!(
                c.used_qubits().len(),
                b.stats.qubits,
                "{} should touch all of its qubits",
                b.name
            );
        }
    }

    #[test]
    fn benchmark_names_unique() {
        let mut names: Vec<&str> = all().iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn circuits_are_reparsable_from_writer() {
        for b in all() {
            let c = b.circuit();
            let round = crate::parse_qasm(&c.to_qasm()).unwrap();
            assert_eq!(round.gate_count(), c.gate_count(), "{}", b.name);
            assert_eq!(round.cx_count(), c.cx_count(), "{}", b.name);
        }
    }

    #[test]
    fn w_state_structure() {
        let c = w_state(3);
        assert_eq!(c.width(), 3);
        assert!(c.cx_count() >= 3);
        assert!(!c.is_classically_deterministic());
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn w_state_zero_panics() {
        w_state(0);
    }

    #[test]
    fn bernstein_vazirani_structure() {
        let c = bernstein_vazirani(4, 0b1011);
        assert_eq!(c.width(), 5);
        // One CX per set secret bit.
        assert_eq!(c.cx_count(), 3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn bernstein_vazirani_oversized_secret_panics() {
        bernstein_vazirani(2, 7);
    }

    #[test]
    fn qaoa_ring_structure() {
        let c = qaoa_maxcut_ring(4, 0.3, 0.7);
        assert_eq!(c.width(), 4);
        assert_eq!(c.cx_count(), 8); // 2 per ring edge
        assert_eq!(c.count_ops()["rx"], 4);
        assert_eq!(c.count_ops()["rz"], 4);
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn qaoa_small_ring_panics() {
        qaoa_maxcut_ring(2, 0.1, 0.1);
    }
}
