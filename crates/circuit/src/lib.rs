//! # qucp-circuit
//!
//! Quantum-circuit intermediate representation for the QuCP reproduction of
//! *"How Parallel Circuit Execution Can Be Useful for NISQ Computing?"*
//! (Niu & Todri-Sanial, DATE 2022).
//!
//! The crate provides:
//!
//! * [`Gate`] — the `qelib1.inc`-style elementary gate set;
//! * [`Circuit`] — an ordered gate list with builders, structural queries,
//!   remapping onto physical qubits, and a light cancellation pass;
//! * [`parse_qasm`] — an OpenQASM 2.0 subset parser (and [`Circuit::to_qasm`]
//!   as the writer);
//! * [`schedule`] — ASAP/ALAP timing, moments, and idle-window extraction
//!   (the paper's default ALAP task-scheduling policy);
//! * [`library`] — the eight Table II benchmarks with the paper's exact
//!   qubit/gate/CNOT counts, plus GHZ/QFT generators.
//!
//! ```
//! use qucp_circuit::{library, schedule};
//!
//! let adder = library::by_name("adder").unwrap().circuit();
//! assert_eq!(adder.gate_count(), 23);
//! assert_eq!(adder.cx_count(), 10);
//!
//! let timing = schedule::alap_schedule(&adder, |g| if g.is_two_qubit() { 300.0 } else { 35.0 });
//! assert!(timing.makespan() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
mod error;
mod gate;
pub mod library;
mod qasm;
pub mod schedule;

pub use circuit::Circuit;
pub use error::CircuitError;
pub use gate::{Gate, Qubits, ANGLE_EPS};
pub use qasm::{parse_qasm, QasmError};
pub use schedule::{Schedule, ScheduledGate};
