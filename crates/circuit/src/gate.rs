//! Elementary gate set of the QuCP intermediate representation.
//!
//! The gate set mirrors the OpenQASM 2.0 `qelib1.inc` subset used by the
//! RevLib / QASMBench circuits evaluated in the paper, plus the `swap` gate
//! inserted by routing. Every gate knows its operands, its symbolic inverse,
//! and a few structural predicates used by the scheduler, the optimizer and
//! the noise model.

use std::fmt;

/// Machine epsilon-ish tolerance used when comparing gate angles.
pub const ANGLE_EPS: f64 = 1e-12;

/// A fixed-capacity operand list (quantum gates act on one or two qubits).
///
/// Returned by [`Gate::qubits`]; iterate it or view it with
/// [`Qubits::as_slice`].
///
/// ```
/// use qucp_circuit::Gate;
/// let g = Gate::Cx(0, 3);
/// assert_eq!(g.qubits().as_slice(), &[0, 3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Qubits {
    buf: [usize; 2],
    len: u8,
}

impl Qubits {
    /// Operand list of a one-qubit gate.
    pub fn one(q: usize) -> Self {
        Qubits {
            buf: [q, 0],
            len: 1,
        }
    }

    /// Operand list of a two-qubit gate.
    pub fn two(a: usize, b: usize) -> Self {
        Qubits {
            buf: [a, b],
            len: 2,
        }
    }

    /// The operands as a slice, in gate-argument order.
    pub fn as_slice(&self) -> &[usize] {
        &self.buf[..self.len as usize]
    }

    /// Number of operands (1 or 2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always `false`: a gate has at least one operand.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `q` is one of the operands.
    pub fn contains(&self, q: usize) -> bool {
        self.as_slice().contains(&q)
    }
}

impl<'a> IntoIterator for &'a Qubits {
    type Item = usize;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, usize>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

/// An elementary quantum gate.
///
/// One-qubit variants carry the qubit index first, then any Euler angles in
/// radians. Two-qubit variants are `(control, target)` for controlled gates
/// and unordered for [`Gate::Swap`] (the IR keeps the textual order).
///
/// ```
/// use qucp_circuit::Gate;
/// let g = Gate::Ry(2, std::f64::consts::FRAC_PI_2);
/// assert!(!g.is_two_qubit());
/// assert_eq!(g.inverse(), Gate::Ry(2, -std::f64::consts::FRAC_PI_2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity (explicit idle marker).
    I(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Hadamard.
    H(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// Inverse phase gate.
    Sdg(usize),
    /// T = diag(1, e^{iπ/4}).
    T(usize),
    /// Inverse T gate.
    Tdg(usize),
    /// Square root of X.
    Sx(usize),
    /// Inverse square root of X.
    Sxdg(usize),
    /// Rotation about X by the given angle.
    Rx(usize, f64),
    /// Rotation about Y by the given angle.
    Ry(usize, f64),
    /// Rotation about Z by the given angle.
    Rz(usize, f64),
    /// Phase rotation diag(1, e^{iθ}).
    P(usize, f64),
    /// Generic one-qubit gate U(θ, φ, λ) in the OpenQASM 2 convention.
    U(usize, f64, f64, f64),
    /// Controlled-X with `(control, target)`.
    Cx(usize, usize),
    /// Controlled-Z with `(control, target)` (symmetric).
    Cz(usize, usize),
    /// Controlled phase with `(control, target, angle)` (symmetric).
    Cp(usize, usize, f64),
    /// Swap of two qubits (inserted by routing).
    Swap(usize, usize),
}

impl Gate {
    /// The OpenQASM 2.0 mnemonic of the gate.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I(_) => "id",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::H(_) => "h",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Sx(_) => "sx",
            Gate::Sxdg(_) => "sxdg",
            Gate::Rx(..) => "rx",
            Gate::Ry(..) => "ry",
            Gate::Rz(..) => "rz",
            Gate::P(..) => "p",
            Gate::U(..) => "u3",
            Gate::Cx(..) => "cx",
            Gate::Cz(..) => "cz",
            Gate::Cp(..) => "cp",
            Gate::Swap(..) => "swap",
        }
    }

    /// Operand qubits in argument order.
    pub fn qubits(&self) -> Qubits {
        match *self {
            Gate::I(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Sx(q)
            | Gate::Sxdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::P(q, _)
            | Gate::U(q, ..) => Qubits::one(q),
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Cp(a, b, _) | Gate::Swap(a, b) => {
                Qubits::two(a, b)
            }
        }
    }

    /// Whether the gate acts on two qubits.
    pub fn is_two_qubit(&self) -> bool {
        matches!(
            self,
            Gate::Cx(..) | Gate::Cz(..) | Gate::Cp(..) | Gate::Swap(..)
        )
    }

    /// Whether this is a CNOT (the native entangler on IBM devices).
    pub fn is_cx(&self) -> bool {
        matches!(self, Gate::Cx(..))
    }

    /// Euler angles carried by the gate, if any.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::Rx(_, t)
            | Gate::Ry(_, t)
            | Gate::Rz(_, t)
            | Gate::P(_, t)
            | Gate::Cp(_, _, t) => {
                vec![t]
            }
            Gate::U(_, t, p, l) => vec![t, p, l],
            _ => Vec::new(),
        }
    }

    /// The symbolic inverse of the gate.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::I(q) => Gate::I(q),
            Gate::X(q) => Gate::X(q),
            Gate::Y(q) => Gate::Y(q),
            Gate::Z(q) => Gate::Z(q),
            Gate::H(q) => Gate::H(q),
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Sx(q) => Gate::Sxdg(q),
            Gate::Sxdg(q) => Gate::Sx(q),
            Gate::Rx(q, t) => Gate::Rx(q, -t),
            Gate::Ry(q, t) => Gate::Ry(q, -t),
            Gate::Rz(q, t) => Gate::Rz(q, -t),
            Gate::P(q, t) => Gate::P(q, -t),
            Gate::U(q, t, p, l) => Gate::U(q, -t, -l, -p),
            Gate::Cx(a, b) => Gate::Cx(a, b),
            Gate::Cz(a, b) => Gate::Cz(a, b),
            Gate::Cp(a, b, t) => Gate::Cp(a, b, -t),
            Gate::Swap(a, b) => Gate::Swap(a, b),
        }
    }

    /// Whether the gate is its own inverse.
    pub fn is_self_inverse(&self) -> bool {
        match *self {
            Gate::I(_)
            | Gate::X(_)
            | Gate::Y(_)
            | Gate::Z(_)
            | Gate::H(_)
            | Gate::Cx(..)
            | Gate::Cz(..)
            | Gate::Swap(..) => true,
            Gate::Rx(_, t)
            | Gate::Ry(_, t)
            | Gate::Rz(_, t)
            | Gate::P(_, t)
            | Gate::Cp(_, _, t) => t.abs() < ANGLE_EPS,
            _ => false,
        }
    }

    /// Whether the gate is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I(_)
                | Gate::Z(_)
                | Gate::S(_)
                | Gate::Sdg(_)
                | Gate::T(_)
                | Gate::Tdg(_)
                | Gate::Rz(..)
                | Gate::P(..)
                | Gate::Cz(..)
                | Gate::Cp(..)
        )
    }

    /// Whether the gate maps every computational basis state to a single
    /// computational basis state (possibly with a phase).
    ///
    /// Circuits built only from such gates have a deterministic noiseless
    /// measurement outcome — the "Result = 1" class of Table II benchmarks.
    pub fn preserves_computational_basis(&self) -> bool {
        self.is_diagonal()
            || matches!(
                self,
                Gate::X(_) | Gate::Y(_) | Gate::Cx(..) | Gate::Swap(..)
            )
    }

    /// Re-index the operands of the gate through `f`.
    ///
    /// Used to lay a logical circuit onto physical qubits.
    pub fn map_qubits(&self, mut f: impl FnMut(usize) -> usize) -> Gate {
        match *self {
            Gate::I(q) => Gate::I(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::H(q) => Gate::H(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::T(q) => Gate::T(f(q)),
            Gate::Tdg(q) => Gate::Tdg(f(q)),
            Gate::Sx(q) => Gate::Sx(f(q)),
            Gate::Sxdg(q) => Gate::Sxdg(f(q)),
            Gate::Rx(q, t) => Gate::Rx(f(q), t),
            Gate::Ry(q, t) => Gate::Ry(f(q), t),
            Gate::Rz(q, t) => Gate::Rz(f(q), t),
            Gate::P(q, t) => Gate::P(f(q), t),
            Gate::U(q, t, p, l) => Gate::U(f(q), t, p, l),
            Gate::Cx(a, b) => Gate::Cx(f(a), f(b)),
            Gate::Cz(a, b) => Gate::Cz(f(a), f(b)),
            Gate::Cp(a, b, t) => Gate::Cp(f(a), f(b), t),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
        }
    }

    /// Whether two gates act on disjoint qubit sets (and hence may share a
    /// schedule moment).
    pub fn commutes_trivially_with(&self, other: &Gate) -> bool {
        let a = self.qubits();
        !other.qubits().into_iter().any(|q| a.contains(q))
    }
}

impl fmt::Display for Gate {
    /// Formats the gate as an OpenQASM 2.0 statement (without newline).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())?;
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format_angle(*p)).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))?;
        }
        let qs: Vec<String> = self
            .qubits()
            .into_iter()
            .map(|q| format!("q[{q}]"))
            .collect();
        write!(f, " {};", qs.join(","))
    }
}

/// Renders an angle compactly, using `pi` fractions when exact.
fn format_angle(theta: f64) -> String {
    let pi = std::f64::consts::PI;
    for denom in 1..=16_i64 {
        for numer in -32..=32_i64 {
            if numer == 0 {
                continue;
            }
            let v = pi * numer as f64 / denom as f64;
            if (v - theta).abs() < 1e-12 {
                return match (numer, denom) {
                    (1, 1) => "pi".to_string(),
                    (-1, 1) => "-pi".to_string(),
                    (n, 1) => format!("{n}*pi"),
                    (1, d) => format!("pi/{d}"),
                    (-1, d) => format!("-pi/{d}"),
                    (n, d) => format!("{n}*pi/{d}"),
                };
            }
        }
    }
    format!("{theta:.12}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn qubits_one_and_two() {
        assert_eq!(Gate::H(3).qubits().as_slice(), &[3]);
        assert_eq!(Gate::Cx(1, 2).qubits().as_slice(), &[1, 2]);
        assert_eq!(Gate::Cx(1, 2).qubits().len(), 2);
        assert!(Gate::Cx(1, 2).qubits().contains(2));
        assert!(!Gate::Cx(1, 2).qubits().contains(0));
        assert!(!Gate::H(0).qubits().is_empty());
    }

    #[test]
    fn two_qubit_predicate() {
        assert!(Gate::Cx(0, 1).is_two_qubit());
        assert!(Gate::Swap(0, 1).is_two_qubit());
        assert!(Gate::Cz(0, 1).is_two_qubit());
        assert!(!Gate::H(0).is_two_qubit());
        assert!(Gate::Cx(0, 1).is_cx());
        assert!(!Gate::Cz(0, 1).is_cx());
    }

    #[test]
    fn inverse_round_trip() {
        let gates = [
            Gate::X(0),
            Gate::H(1),
            Gate::S(0),
            Gate::T(2),
            Gate::Sx(1),
            Gate::Rx(0, 0.3),
            Gate::Ry(0, -1.2),
            Gate::Rz(3, 2.5),
            Gate::P(0, 0.7),
            Gate::U(0, 0.1, 0.2, 0.3),
            Gate::Cx(0, 1),
            Gate::Cz(1, 2),
            Gate::Cp(0, 1, 0.4),
            Gate::Swap(2, 3),
        ];
        for g in gates {
            assert_eq!(g.inverse().inverse(), g, "double inverse of {g:?}");
        }
    }

    #[test]
    fn s_and_t_invert_to_daggers() {
        assert_eq!(Gate::S(0).inverse(), Gate::Sdg(0));
        assert_eq!(Gate::Tdg(0).inverse(), Gate::T(0));
        assert_eq!(Gate::Sxdg(4).inverse(), Gate::Sx(4));
    }

    #[test]
    fn self_inverse_detection() {
        assert!(Gate::X(0).is_self_inverse());
        assert!(Gate::Cx(0, 1).is_self_inverse());
        assert!(Gate::Rz(0, 0.0).is_self_inverse());
        assert!(!Gate::T(0).is_self_inverse());
        assert!(!Gate::Rx(0, 0.1).is_self_inverse());
    }

    #[test]
    fn basis_preservation() {
        assert!(Gate::X(0).preserves_computational_basis());
        assert!(Gate::Cx(0, 1).preserves_computational_basis());
        assert!(Gate::T(0).preserves_computational_basis());
        assert!(Gate::Rz(0, 0.3).preserves_computational_basis());
        assert!(!Gate::H(0).preserves_computational_basis());
        assert!(!Gate::Ry(0, 0.3).preserves_computational_basis());
        assert!(!Gate::U(0, 1.0, 0.0, 0.0).preserves_computational_basis());
    }

    #[test]
    fn map_qubits_shifts_operands() {
        let g = Gate::Cx(0, 1).map_qubits(|q| q + 10);
        assert_eq!(g, Gate::Cx(10, 11));
        let g = Gate::Ry(2, 0.5).map_qubits(|q| q * 3);
        assert_eq!(g, Gate::Ry(6, 0.5));
    }

    #[test]
    fn trivial_commutation() {
        assert!(Gate::H(0).commutes_trivially_with(&Gate::H(1)));
        assert!(!Gate::Cx(0, 1).commutes_trivially_with(&Gate::H(1)));
        assert!(Gate::Cx(0, 1).commutes_trivially_with(&Gate::Cx(2, 3)));
    }

    #[test]
    fn qasm_display() {
        assert_eq!(Gate::H(0).to_string(), "h q[0];");
        assert_eq!(Gate::Cx(1, 2).to_string(), "cx q[1],q[2];");
        assert_eq!(Gate::Rz(0, PI / 2.0).to_string(), "rz(pi/2) q[0];");
        assert_eq!(Gate::Rz(0, -PI).to_string(), "rz(-pi) q[0];");
        assert_eq!(
            Gate::U(0, PI, 0.0, PI).to_string(),
            "u3(pi,0.000000000000,pi) q[0];"
        );
    }

    #[test]
    fn angle_formatting_fractions() {
        assert_eq!(format_angle(PI), "pi");
        assert_eq!(format_angle(-PI / 4.0), "-pi/4");
        assert_eq!(format_angle(3.0 * PI / 4.0), "3*pi/4");
        assert_eq!(format_angle(2.0 * PI), "2*pi");
        assert_eq!(format_angle(0.123), "0.123000000000");
    }

    #[test]
    fn params_exposed() {
        assert!(Gate::H(0).params().is_empty());
        assert_eq!(Gate::Rx(0, 1.5).params(), vec![1.5]);
        assert_eq!(Gate::U(0, 1.0, 2.0, 3.0).params(), vec![1.0, 2.0, 3.0]);
    }
}
