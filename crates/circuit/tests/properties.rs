//! Property-based tests for the circuit IR, scheduling, and QASM round trip.

use proptest::prelude::*;
use qucp_circuit::{schedule, Circuit, Gate};

/// Strategy producing an arbitrary gate on a register of `width` qubits.
fn arb_gate(width: usize) -> impl Strategy<Value = Gate> {
    let q = 0..width;
    let q2 = (0..width, 0..width).prop_filter("distinct qubits", |(a, b)| a != b);
    let angle = -std::f64::consts::TAU..std::f64::consts::TAU;
    prop_oneof![
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::Y),
        q.clone().prop_map(Gate::Z),
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::Sdg),
        q.clone().prop_map(Gate::T),
        q.clone().prop_map(Gate::Tdg),
        (q.clone(), angle.clone()).prop_map(|(q, a)| Gate::Rx(q, a)),
        (q.clone(), angle.clone()).prop_map(|(q, a)| Gate::Ry(q, a)),
        (q.clone(), angle.clone()).prop_map(|(q, a)| Gate::Rz(q, a)),
        (q, angle.clone()).prop_map(|(q, a)| Gate::P(q, a)),
        q2.clone().prop_map(|(a, b)| Gate::Cx(a, b)),
        q2.clone().prop_map(|(a, b)| Gate::Cz(a, b)),
        (q2.clone(), angle).prop_map(|((a, b), t)| Gate::Cp(a, b, t)),
        q2.prop_map(|(a, b)| Gate::Swap(a, b)),
    ]
}

/// Strategy producing a random circuit of up to `max_gates` gates on
/// 2..=6 qubits.
fn arb_circuit(max_gates: usize) -> impl Strategy<Value = Circuit> {
    (2usize..=6).prop_flat_map(move |width| {
        proptest::collection::vec(arb_gate(width), 0..max_gates).prop_map(move |gates| {
            let mut c = Circuit::new(width);
            for g in gates {
                c.push(g);
            }
            c
        })
    })
}

fn dur(g: &Gate) -> f64 {
    if g.is_two_qubit() {
        300.0
    } else {
        35.0
    }
}

proptest! {
    #[test]
    fn depth_never_exceeds_gate_count(c in arb_circuit(60)) {
        prop_assert!(c.depth() <= c.gate_count());
    }

    #[test]
    fn counts_are_consistent(c in arb_circuit(60)) {
        prop_assert_eq!(c.single_qubit_count() + c.two_qubit_count(), c.gate_count());
        prop_assert!(c.cx_count() <= c.two_qubit_count());
        let by_name: usize = c.count_ops().values().sum();
        prop_assert_eq!(by_name, c.gate_count());
    }

    #[test]
    fn double_inverse_is_identity(c in arb_circuit(40)) {
        let back = c.inverse().inverse();
        prop_assert_eq!(back.gates(), c.gates());
    }

    #[test]
    fn identity_remap_preserves_gates(c in arb_circuit(40)) {
        let mapping: Vec<usize> = (0..c.width()).collect();
        let mapped = c.remap(&mapping, c.width()).unwrap();
        prop_assert_eq!(mapped.gates(), c.gates());
    }

    #[test]
    fn shifted_remap_preserves_structure(c in arb_circuit(40)) {
        let mapping: Vec<usize> = (0..c.width()).map(|q| q + 3).collect();
        let mapped = c.remap(&mapping, c.width() + 3).unwrap();
        prop_assert_eq!(mapped.gate_count(), c.gate_count());
        prop_assert_eq!(mapped.cx_count(), c.cx_count());
        prop_assert_eq!(mapped.depth(), c.depth());
    }

    #[test]
    fn cancellation_never_grows(c in arb_circuit(60)) {
        let before = c.gate_count();
        let mut copy = c.clone();
        let removed = copy.cancel_adjacent_inverses();
        prop_assert_eq!(copy.gate_count() + removed, before);
    }

    #[test]
    fn asap_alap_same_makespan(c in arb_circuit(60)) {
        let asap = schedule::asap_schedule(&c, dur);
        let alap = schedule::alap_schedule(&c, dur);
        prop_assert!((asap.makespan() - alap.makespan()).abs() < 1e-6);
    }

    #[test]
    fn alap_entries_within_makespan(c in arb_circuit(60)) {
        let alap = schedule::alap_schedule(&c, dur);
        for e in alap.entries() {
            prop_assert!(e.start >= -1e-9);
            prop_assert!(e.end() <= alap.makespan() + 1e-9);
        }
    }

    #[test]
    fn alap_preserves_per_qubit_order(c in arb_circuit(60)) {
        let alap = schedule::alap_schedule(&c, dur);
        for q in 0..c.width() {
            let mut last_end = -1e18;
            for (i, g) in c.gates().iter().enumerate() {
                if g.qubits().contains(q) {
                    let e = alap.entries()[i];
                    prop_assert!(e.start >= last_end - 1e-9,
                        "gate {i} starts before predecessor ends on qubit {q}");
                    last_end = e.end();
                }
            }
        }
    }

    #[test]
    fn moments_partition_gates(c in arb_circuit(60)) {
        let m = schedule::moments(&c);
        let mut seen = vec![false; c.gate_count()];
        for layer in &m {
            // Gates within a moment act on disjoint qubits.
            let mut used = std::collections::HashSet::new();
            for &gi in layer {
                prop_assert!(!seen[gi]);
                seen[gi] = true;
                for q in &c.gates()[gi].qubits() {
                    prop_assert!(used.insert(q), "qubit collision inside moment");
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        prop_assert_eq!(m.len(), c.depth());
    }

    #[test]
    fn qasm_round_trip_preserves_counts(c in arb_circuit(40)) {
        let parsed = qucp_circuit::parse_qasm(&c.to_qasm()).unwrap();
        prop_assert_eq!(parsed.width(), c.width());
        prop_assert_eq!(parsed.gate_count(), c.gate_count());
        prop_assert_eq!(parsed.cx_count(), c.cx_count());
        prop_assert_eq!(parsed.two_qubit_count(), c.two_qubit_count());
    }

    #[test]
    fn idle_windows_are_ordered_and_positive(c in arb_circuit(60)) {
        let s = schedule::alap_schedule(&c, dur);
        for windows in s.idle_windows(&c) {
            let mut prev_end = -1e18;
            for (a, b) in windows {
                prop_assert!(b > a);
                prop_assert!(a >= prev_end - 1e-9);
                prev_end = b;
            }
        }
    }
}
