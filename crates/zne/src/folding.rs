//! Digital noise scaling by unitary folding (Giurgica-Tiron et al.,
//! QCE'20 — the method behind Mitiq's `fold_gates_at_random`).
//!
//! Folding replaces a gate `G` by `G G† G`: the unitary is unchanged but
//! the circuit executes three noisy gates instead of one, scaling the
//! effective noise level. A scale factor `λ ∈ [1, 3]` folds a random
//! subset of ⌈(λ−1)/2 · n⌉ gates; λ > 3 folds the whole circuit
//! repeatedly first.

use qucp_circuit::Circuit;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Folds the entire circuit `k` times: `C (C† C)^k`.
///
/// The gate count becomes `(2k + 1) × n`; the unitary is unchanged.
pub fn fold_global(circuit: &Circuit, k: usize) -> Circuit {
    let mut out = circuit.clone();
    out.set_name(format!("{}_gfold{k}", circuit.name()));
    let inverse = circuit.inverse();
    for _ in 0..k {
        for &g in inverse.gates() {
            out.push(g);
        }
        for &g in circuit.gates() {
            out.push(g);
        }
    }
    out
}

/// Folds randomly selected gates to approximate the noise `scale`
/// factor, reproducing Mitiq's `fold_gates_at_random`.
///
/// The result has approximately `scale × n` gates and the same unitary.
/// `scale = 1` returns the circuit unchanged.
///
/// # Panics
///
/// Panics if `scale < 1`.
pub fn fold_gates_at_random(circuit: &Circuit, scale: f64, seed: u64) -> Circuit {
    assert!(scale >= 1.0, "scale factor must be ≥ 1, got {scale}");
    let n = circuit.gate_count();
    if n == 0 || scale == 1.0 {
        let mut c = circuit.clone();
        c.set_name(format!("{}_fold{scale:.2}", circuit.name()));
        return c;
    }
    // Whole-circuit folds absorb the integer part beyond scale 3: after
    // k global folds the count is (2k + 1)·n.
    let k = ((scale - 1.0) / 2.0).floor() as usize;
    let base = if k > 0 {
        fold_global(circuit, k)
    } else {
        circuit.clone()
    };
    // Remaining partial scale achieved by folding single gates of the
    // (possibly pre-folded) base; each adds 2 gates.
    let target_gates = scale * n as f64;
    let num_fold = ((target_gates - base.gate_count() as f64) / 2.0).round() as usize;
    let num_fold = num_fold.min(base.gate_count());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..base.gate_count()).collect();
    indices.shuffle(&mut rng);
    let folded: std::collections::BTreeSet<usize> = indices.into_iter().take(num_fold).collect();

    let mut out = Circuit::with_name(base.width(), format!("{}_fold{scale:.2}", circuit.name()));
    for (i, &g) in base.gates().iter().enumerate() {
        out.push(g);
        if folded.contains(&i) {
            out.push(g.inverse());
            out.push(g);
        }
    }
    out
}

/// The gates added by folding relative to the original, as a ratio —
/// the *achieved* scale factor.
pub fn achieved_scale(original: &Circuit, folded: &Circuit) -> f64 {
    folded.gate_count() as f64 / original.gate_count().max(1) as f64
}

/// A standard scale-factor ladder `1.0, 1.0 + step, …` of `count`
/// entries (the paper uses 1 to 2.5 with step 0.5).
pub fn scale_ladder(count: usize, step: f64) -> Vec<f64> {
    (0..count).map(|i| 1.0 + i as f64 * step).collect()
}

/// A self-inverse gate pair cancels in `cancel_adjacent_inverses`; the
/// noisy executor must **not** cancel folded gates, so folded circuits
/// are executed with optimization disabled.
#[cfg(test)]
mod tests {
    use super::*;
    use qucp_circuit::library;
    use qucp_sim::noiseless_probabilities;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).ry(2, 0.7).cz(0, 2);
        c
    }

    #[test]
    fn global_fold_triples_gate_count() {
        let c = sample_circuit();
        let f = fold_global(&c, 1);
        assert_eq!(f.gate_count(), 3 * c.gate_count());
        let f2 = fold_global(&c, 2);
        assert_eq!(f2.gate_count(), 5 * c.gate_count());
    }

    #[test]
    fn global_fold_preserves_unitary() {
        let c = sample_circuit();
        let f = fold_global(&c, 2);
        let p0 = noiseless_probabilities(&c);
        let p1 = noiseless_probabilities(&f);
        for (a, b) in p0.iter().zip(&p1) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn random_fold_hits_target_count() {
        let c = sample_circuit();
        for scale in [1.0, 1.5, 2.0, 2.5, 3.0] {
            let f = fold_gates_at_random(&c, scale, 7);
            let achieved = achieved_scale(&c, &f);
            assert!(
                (achieved - scale).abs() <= 2.0 / c.gate_count() as f64 + 0.34,
                "scale {scale} achieved {achieved}"
            );
        }
    }

    #[test]
    fn random_fold_preserves_unitary() {
        for b in library::all().iter().take(4) {
            let c = b.circuit();
            let f = fold_gates_at_random(&c, 2.5, 13);
            let p0 = noiseless_probabilities(&c);
            let p1 = noiseless_probabilities(&f);
            for (a, x) in p0.iter().zip(&p1) {
                assert!((a - x).abs() < 1e-9, "{}", b.name);
            }
        }
    }

    #[test]
    fn scale_one_is_identity() {
        let c = sample_circuit();
        let f = fold_gates_at_random(&c, 1.0, 3);
        assert_eq!(f.gate_count(), c.gate_count());
        assert_eq!(f.gates(), c.gates());
    }

    #[test]
    fn folding_is_deterministic_per_seed() {
        let c = sample_circuit();
        assert_eq!(
            fold_gates_at_random(&c, 2.0, 5).gates(),
            fold_gates_at_random(&c, 2.0, 5).gates()
        );
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn sub_unit_scale_panics() {
        fold_gates_at_random(&sample_circuit(), 0.5, 1);
    }

    #[test]
    fn ladder_matches_paper() {
        assert_eq!(scale_ladder(4, 0.5), vec![1.0, 1.5, 2.0, 2.5]);
    }

    #[test]
    fn empty_circuit_folds_to_empty() {
        let c = Circuit::new(2);
        let f = fold_gates_at_random(&c, 2.0, 1);
        assert!(f.is_empty());
    }
}
