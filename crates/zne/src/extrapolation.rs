//! Zero-noise extrapolation factories: Linear, Polynomial, Richardson
//! (the Mitiq factories the paper evaluates).
//!
//! Each factory fits expectation values measured at scale factors
//! `λ₁ < λ₂ < …` and extrapolates to the zero-noise limit `λ = 0`.

use std::fmt;

/// An extrapolation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Factory {
    /// Least-squares straight line; intercept at λ = 0.
    Linear,
    /// Least-squares polynomial of the given order.
    Poly(usize),
    /// Richardson extrapolation: the degree-(n−1) interpolating
    /// polynomial evaluated at λ = 0.
    Richardson,
}

impl fmt::Display for Factory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Factory::Linear => write!(f, "LinearFactory"),
            Factory::Poly(k) => write!(f, "PolyFactory({k})"),
            Factory::Richardson => write!(f, "RichardsonFactory"),
        }
    }
}

/// Errors from extrapolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtrapolationError {
    /// Fewer samples than the model needs.
    NotEnoughSamples {
        /// Samples required.
        needed: usize,
        /// Samples provided.
        got: usize,
    },
    /// Two samples share a scale factor (Richardson needs distinct
    /// nodes).
    DuplicateScale {
        /// The repeated scale factor (×1000, rounded — for Eq/Display).
        milli_scale: i64,
    },
}

impl fmt::Display for ExtrapolationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtrapolationError::NotEnoughSamples { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
            ExtrapolationError::DuplicateScale { milli_scale } => {
                write!(f, "duplicate scale factor {}", *milli_scale as f64 / 1000.0)
            }
        }
    }
}

impl std::error::Error for ExtrapolationError {}

impl Factory {
    /// Extrapolates `(scale, value)` samples to scale zero.
    ///
    /// # Errors
    ///
    /// [`ExtrapolationError::NotEnoughSamples`] if the model is
    /// under-determined, [`ExtrapolationError::DuplicateScale`] if
    /// Richardson nodes coincide.
    pub fn extrapolate(&self, samples: &[(f64, f64)]) -> Result<f64, ExtrapolationError> {
        match self {
            Factory::Linear => polyfit_at_zero(samples, 1),
            Factory::Poly(k) => polyfit_at_zero(samples, *k),
            Factory::Richardson => richardson(samples),
        }
    }

    /// Minimum number of samples this factory needs.
    pub fn min_samples(&self) -> usize {
        match self {
            Factory::Linear => 2,
            Factory::Poly(k) => k + 1,
            Factory::Richardson => 2,
        }
    }
}

/// All factories evaluated in the paper's Fig. 6 experiment.
pub fn standard_factories() -> Vec<Factory> {
    vec![Factory::Linear, Factory::Poly(2), Factory::Richardson]
}

/// Least-squares polynomial fit of `degree`, evaluated at zero (the
/// constant coefficient).
fn polyfit_at_zero(samples: &[(f64, f64)], degree: usize) -> Result<f64, ExtrapolationError> {
    let n = samples.len();
    if n < degree + 1 {
        return Err(ExtrapolationError::NotEnoughSamples {
            needed: degree + 1,
            got: n,
        });
    }
    // Normal equations A^T A c = A^T y with A[i][j] = x_i^j.
    let m = degree + 1;
    let mut ata = vec![vec![0.0f64; m]; m];
    let mut aty = vec![0.0f64; m];
    for &(x, y) in samples {
        let mut xi = vec![1.0f64; m];
        for j in 1..m {
            xi[j] = xi[j - 1] * x;
        }
        for r in 0..m {
            for c in 0..m {
                ata[r][c] += xi[r] * xi[c];
            }
            aty[r] += xi[r] * y;
        }
    }
    let coeffs = solve_linear(&mut ata, &mut aty)?;
    Ok(coeffs[0])
}

/// Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // pivoting logic reads clearer with indices
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>, ExtrapolationError> {
    let n = a.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[pivot][col].abs() {
                pivot = r;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return Err(ExtrapolationError::DuplicateScale {
                milli_scale: (a[pivot][col] * 1000.0).round() as i64,
            });
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for r in col + 1..n {
            let f = a[r][col] / a[col][col];
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in row + 1..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Richardson extrapolation: Lagrange interpolation evaluated at zero.
fn richardson(samples: &[(f64, f64)]) -> Result<f64, ExtrapolationError> {
    if samples.len() < 2 {
        return Err(ExtrapolationError::NotEnoughSamples {
            needed: 2,
            got: samples.len(),
        });
    }
    for (i, &(xi, _)) in samples.iter().enumerate() {
        for &(xj, _) in &samples[i + 1..] {
            if (xi - xj).abs() < 1e-12 {
                return Err(ExtrapolationError::DuplicateScale {
                    milli_scale: (xi * 1000.0).round() as i64,
                });
            }
        }
    }
    let mut total = 0.0;
    for (i, &(xi, yi)) in samples.iter().enumerate() {
        let mut weight = 1.0;
        for (j, &(xj, _)) in samples.iter().enumerate() {
            if i != j {
                weight *= (0.0 - xj) / (xi - xj);
            }
        }
        total += weight * yi;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_recovers_exact_line() {
        // y = 0.9 − 0.2 λ → intercept 0.9.
        let samples: Vec<(f64, f64)> = [1.0, 1.5, 2.0, 2.5]
            .iter()
            .map(|&x| (x, 0.9 - 0.2 * x))
            .collect();
        let v = Factory::Linear.extrapolate(&samples).unwrap();
        assert!((v - 0.9).abs() < 1e-10);
    }

    #[test]
    fn poly_recovers_exact_quadratic() {
        let samples: Vec<(f64, f64)> = [1.0, 1.5, 2.0, 2.5]
            .iter()
            .map(|&x| (x, 0.8 - 0.1 * x - 0.05 * x * x))
            .collect();
        let v = Factory::Poly(2).extrapolate(&samples).unwrap();
        assert!((v - 0.8).abs() < 1e-9);
    }

    #[test]
    fn richardson_interpolates_exactly() {
        // Cubic through 4 points: Richardson must hit the intercept.
        let f = |x: f64| 0.7 - 0.3 * x + 0.04 * x * x - 0.01 * x * x * x;
        let samples: Vec<(f64, f64)> = [1.0, 1.5, 2.0, 2.5].iter().map(|&x| (x, f(x))).collect();
        let v = Factory::Richardson.extrapolate(&samples).unwrap();
        assert!((v - 0.7).abs() < 1e-9, "{v}");
    }

    #[test]
    fn exponential_decay_improves_with_order() {
        // y = e^{-λ}: intercept 1. Higher-order models fit better.
        let samples: Vec<(f64, f64)> = [1.0f64, 1.5, 2.0, 2.5]
            .iter()
            .map(|&x| (x, (-x).exp()))
            .collect();
        let lin = (Factory::Linear.extrapolate(&samples).unwrap() - 1.0).abs();
        let ric = (Factory::Richardson.extrapolate(&samples).unwrap() - 1.0).abs();
        assert!(ric < lin, "richardson {ric} should beat linear {lin}");
    }

    #[test]
    fn not_enough_samples_rejected() {
        let e = Factory::Poly(2)
            .extrapolate(&[(1.0, 0.5), (2.0, 0.4)])
            .unwrap_err();
        assert!(matches!(
            e,
            ExtrapolationError::NotEnoughSamples { needed: 3, got: 2 }
        ));
        let e = Factory::Richardson.extrapolate(&[(1.0, 0.5)]).unwrap_err();
        assert!(matches!(e, ExtrapolationError::NotEnoughSamples { .. }));
    }

    #[test]
    fn duplicate_scales_rejected_by_richardson() {
        let e = Factory::Richardson
            .extrapolate(&[(1.0, 0.5), (1.0, 0.4), (2.0, 0.3)])
            .unwrap_err();
        assert!(matches!(e, ExtrapolationError::DuplicateScale { .. }));
    }

    #[test]
    fn display_names() {
        assert_eq!(Factory::Linear.to_string(), "LinearFactory");
        assert_eq!(Factory::Poly(2).to_string(), "PolyFactory(2)");
        assert_eq!(Factory::Richardson.to_string(), "RichardsonFactory");
        assert_eq!(standard_factories().len(), 3);
    }

    #[test]
    fn min_samples() {
        assert_eq!(Factory::Linear.min_samples(), 2);
        assert_eq!(Factory::Poly(3).min_samples(), 4);
        assert_eq!(Factory::Richardson.min_samples(), 2);
    }

    #[test]
    fn error_display() {
        let e = ExtrapolationError::NotEnoughSamples { needed: 3, got: 1 };
        assert!(e.to_string().contains("at least 3"));
    }
}
