//! The Fig. 6 experiment: error mitigation by ZNE, with the folded
//! circuits executed independently (ZNE) or simultaneously through QuCP
//! (QuCP + ZNE), against an unmitigated baseline.

use qucp_circuit::Circuit;
use qucp_core::{execute_parallel, strategy, CoreError, ParallelConfig, Strategy};
use qucp_device::Device;
use qucp_sim::{noiseless_probabilities, Counts, ExecutionConfig};

use crate::extrapolation::{standard_factories, Factory};
use crate::folding::fold_gates_at_random;

/// Configuration of the Fig. 6 experiment for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ZneExperiment {
    /// Scale factors (the paper: 1.0 to 2.5, step 0.5).
    pub scale_factors: Vec<f64>,
    /// Shots per circuit.
    pub shots: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Strategy used both for single-job placement and the parallel run.
    pub strategy: Strategy,
}

impl Default for ZneExperiment {
    fn default() -> Self {
        ZneExperiment {
            scale_factors: vec![1.0, 1.5, 2.0, 2.5],
            shots: 8192,
            seed: 0x2E7,
            strategy: strategy::qucp(4.0),
        }
    }
}

/// The observable of the experiment: ⟨Z⊗…⊗Z⟩ over all qubits, measured
/// from counts.
pub fn z_observable(counts: &Counts) -> f64 {
    counts.expectation_z((1 << counts.width()) - 1)
}

/// The same observable from exact probabilities.
pub fn z_observable_exact(probs: &[f64], width: usize) -> f64 {
    let mask = (1usize << width) - 1;
    probs
        .iter()
        .enumerate()
        .map(|(idx, &p)| {
            if (idx & mask).count_ones().is_multiple_of(2) {
                p
            } else {
                -p
            }
        })
        .sum()
}

/// Outcome of the three-way comparison for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ZneOutcome {
    /// Benchmark name.
    pub benchmark: String,
    /// The noiseless observable value.
    pub ideal: f64,
    /// |ideal − measured| without any mitigation.
    pub baseline_error: f64,
    /// |ideal − extrapolated| with folded circuits run in parallel.
    pub parallel_error: f64,
    /// |ideal − extrapolated| with folded circuits run independently.
    pub independent_error: f64,
    /// The factory that won the parallel extrapolation.
    pub parallel_factory: Factory,
    /// The factory that won the independent extrapolation.
    pub independent_factory: Factory,
    /// Number of folded circuits (jobs saved by parallel execution).
    pub num_circuits: usize,
}

/// Extrapolates with every standard factory and keeps the value closest
/// to `ideal` — the paper only reports the best factory because ZNE's
/// extrapolation choice is noise-sensitive.
pub(crate) fn best_extrapolation(samples: &[(f64, f64)], ideal: f64) -> (f64, Factory) {
    let mut best: Option<(f64, Factory)> = None;
    for factory in standard_factories() {
        if let Ok(v) = factory.extrapolate(samples) {
            let err = (v - ideal).abs();
            if best.is_none() || err < (best.unwrap().0 - ideal).abs() {
                best = Some((v, factory));
            }
        }
    }
    best.expect("at least one factory succeeds on ≥3 samples")
}

/// Runs the three processes of Fig. 6 on one benchmark circuit.
///
/// # Errors
///
/// Propagates partitioning/simulation failures.
pub fn run_zne_comparison(
    device: &Device,
    circuit: &Circuit,
    exp: &ZneExperiment,
) -> Result<ZneOutcome, CoreError> {
    let ideal = z_observable_exact(&noiseless_probabilities(circuit), circuit.width());
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default()
            .with_shots(exp.shots)
            .with_seed(exp.seed),
        // Folded circuits contain adjacent inverse pairs by construction;
        // the optimizer must not cancel them.
        optimize: false,
    };

    // Folded circuit ladder.
    let folded: Vec<Circuit> = exp
        .scale_factors
        .iter()
        .enumerate()
        .map(|(i, &s)| fold_gates_at_random(circuit, s, exp.seed.wrapping_add(i as u64)))
        .collect();

    // (1) Baseline: the unfolded circuit alone on its best partition.
    let base_out = execute_parallel(device, std::slice::from_ref(circuit), &exp.strategy, &cfg)?;
    let baseline_error = (ideal - z_observable(&base_out.programs[0].counts)).abs();

    // (2) QuCP + ZNE: all folded circuits simultaneously.
    let par_out = execute_parallel(device, &folded, &exp.strategy, &cfg)?;
    let par_samples: Vec<(f64, f64)> = exp
        .scale_factors
        .iter()
        .zip(&par_out.programs)
        .map(|(&s, r)| (s, z_observable(&r.counts)))
        .collect();
    let (par_value, parallel_factory) = best_extrapolation(&par_samples, ideal);

    // (3) ZNE: folded circuits independently (each on the best
    // partition, serial jobs).
    let mut ind_samples = Vec::with_capacity(folded.len());
    for (i, f) in folded.iter().enumerate() {
        let ind_cfg = ParallelConfig {
            execution: cfg
                .execution
                .with_seed(exp.seed.wrapping_add(1000 + i as u64 * 37)),
            ..cfg
        };
        let out = execute_parallel(device, std::slice::from_ref(f), &exp.strategy, &ind_cfg)?;
        ind_samples.push((exp.scale_factors[i], z_observable(&out.programs[0].counts)));
    }
    let (ind_value, independent_factory) = best_extrapolation(&ind_samples, ideal);

    Ok(ZneOutcome {
        benchmark: circuit.name().to_string(),
        ideal,
        baseline_error,
        parallel_error: (ideal - par_value).abs(),
        independent_error: (ideal - ind_value).abs(),
        parallel_factory,
        independent_factory,
        num_circuits: folded.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_circuit::library;
    use qucp_device::ibm;

    fn quick_exp() -> ZneExperiment {
        ZneExperiment {
            scale_factors: vec![1.0, 1.5, 2.0, 2.5],
            shots: 2048,
            seed: 11,
            strategy: strategy::qucp(4.0),
        }
    }

    #[test]
    fn z_observable_of_ghz() {
        // GHZ on 2 qubits: outcomes 00 and 11, both even parity → +1.
        let c = library::ghz(2);
        let probs = noiseless_probabilities(&c);
        assert!((z_observable_exact(&probs, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_observable_counts_vs_exact() {
        let mut counts = Counts::new(2);
        counts.record(0b00);
        counts.record(0b01);
        let v = z_observable(&counts);
        assert!((v - 0.0).abs() < 1e-12);
    }

    #[test]
    fn mitigation_beats_baseline_on_fredkin() {
        let dev = ibm::manhattan();
        let c = library::by_name("fredkin").unwrap().circuit();
        let out = run_zne_comparison(&dev, &c, &quick_exp()).unwrap();
        assert_eq!(out.num_circuits, 4);
        // Fredkin's ideal ⟨Z…Z⟩ = +1 (outcome 101 has two 1s → even).
        assert!((out.ideal - 1.0).abs() < 1e-9);
        // Mitigated errors should not exceed the unmitigated baseline by
        // much; typically they are clearly smaller.
        assert!(
            out.parallel_error <= out.baseline_error + 0.1,
            "parallel {} vs baseline {}",
            out.parallel_error,
            out.baseline_error
        );
        assert!(
            out.independent_error <= out.baseline_error + 0.1,
            "independent {} vs baseline {}",
            out.independent_error,
            out.baseline_error
        );
    }

    #[test]
    fn comparison_is_reproducible() {
        let dev = ibm::manhattan();
        let c = library::by_name("linearsolver").unwrap().circuit();
        let a = run_zne_comparison(&dev, &c, &quick_exp()).unwrap();
        let b = run_zne_comparison(&dev, &c, &quick_exp()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn best_extrapolation_picks_closest() {
        // Construct samples where the linear fit is exact.
        let samples: Vec<(f64, f64)> = [1.0, 1.5, 2.0, 2.5]
            .iter()
            .map(|&x| (x, 1.0 - 0.3 * x))
            .collect();
        let (v, f) = best_extrapolation(&samples, 1.0);
        assert!((v - 1.0).abs() < 1e-9);
        let _ = f; // any factory may win on exact data
    }
}
