//! # qucp-zne
//!
//! Digital zero-noise extrapolation (Sec. IV-D of the paper): unitary
//! folding à la Mitiq's `fold_gates_at_random`, the Linear / Polynomial
//! / Richardson extrapolation factories, and the Fig. 6 comparison of
//! unmitigated execution, independent ZNE, and QuCP-parallel ZNE.
//!
//! ```
//! use qucp_circuit::library;
//! use qucp_zne::{fold_gates_at_random, Factory};
//!
//! let circuit = library::ghz(3);
//! let folded = fold_gates_at_random(&circuit, 2.0, 42);
//! assert!(folded.gate_count() > circuit.gate_count());
//!
//! let samples = [(1.0, 0.8), (1.5, 0.7), (2.0, 0.6), (2.5, 0.5)];
//! let mitigated = Factory::Linear.extrapolate(&samples).unwrap();
//! assert!((mitigated - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod extrapolation;
mod folding;
mod readout;
mod runner;

pub use campaign::{ZneCampaign, ZneCampaignOutput};
pub use extrapolation::{standard_factories, ExtrapolationError, Factory};
pub use folding::{achieved_scale, fold_gates_at_random, fold_global, scale_ladder};
pub use readout::{mitigate_counts, mitigate_distribution, ReadoutError};
pub use runner::{run_zne_comparison, z_observable, z_observable_exact, ZneExperiment, ZneOutcome};
