//! Measurement (readout) error mitigation — the tensored
//! assignment-matrix method (Bravyi et al., PRA 103, 042605, cited by
//! the paper as one of the standard QEM techniques alongside ZNE).
//!
//! Each qubit's readout is modelled by the symmetric confusion matrix
//! `M = [[1−e, e], [e, 1−e]]`; the mitigated distribution applies
//! `M⁻¹ = 1/(1−2e) · [[1−e, −e], [−e, 1−e]]` per qubit, then clips
//! negative quasi-probabilities and renormalizes.

use qucp_sim::Counts;

/// Errors from readout mitigation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadoutError {
    /// A qubit's readout error is ≥ 0.5: the confusion matrix is
    /// singular (or inverting it flips meaning).
    Unresolvable {
        /// The offending qubit.
        qubit: usize,
        /// Its readout error.
        error: f64,
    },
    /// Distribution length does not match the error vector.
    SizeMismatch {
        /// Length of the distribution.
        distribution: usize,
        /// Number of per-qubit errors supplied.
        qubits: usize,
    },
}

impl std::fmt::Display for ReadoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadoutError::Unresolvable { qubit, error } => {
                write!(
                    f,
                    "readout error {error} on qubit {qubit} is not invertible"
                )
            }
            ReadoutError::SizeMismatch {
                distribution,
                qubits,
            } => {
                write!(
                    f,
                    "distribution of {distribution} entries vs {qubits} qubit errors"
                )
            }
        }
    }
}

impl std::error::Error for ReadoutError {}

/// Applies the tensored inverse-confusion correction to a distribution.
///
/// Negative quasi-probabilities from the inversion are clipped to zero
/// and the result renormalized (the standard least-effort projection).
///
/// # Errors
///
/// [`ReadoutError::SizeMismatch`] if `probs.len() != 2^errors.len()`;
/// [`ReadoutError::Unresolvable`] if any per-qubit error is ≥ 0.5.
pub fn mitigate_distribution(
    probs: &[f64],
    readout_error: &[f64],
) -> Result<Vec<f64>, ReadoutError> {
    let n = readout_error.len();
    if probs.len() != 1usize << n {
        return Err(ReadoutError::SizeMismatch {
            distribution: probs.len(),
            qubits: n,
        });
    }
    for (q, &e) in readout_error.iter().enumerate() {
        if e >= 0.5 {
            return Err(ReadoutError::Unresolvable { qubit: q, error: e });
        }
    }
    let mut out = probs.to_vec();
    for (q, &e) in readout_error.iter().enumerate() {
        let bit = 1usize << q;
        let scale = 1.0 / (1.0 - 2.0 * e);
        let mut next = vec![0.0; out.len()];
        for (idx, &p) in out.iter().enumerate() {
            // Row of M⁻¹ for this qubit's bit value.
            next[idx] += p * (1.0 - e) * scale;
            next[idx ^ bit] += p * (-e) * scale;
        }
        out = next;
    }
    // Project back onto the simplex: clip and renormalize.
    for p in &mut out {
        if *p < 0.0 {
            *p = 0.0;
        }
    }
    let total: f64 = out.iter().sum();
    if total > 0.0 {
        for p in &mut out {
            *p /= total;
        }
    }
    Ok(out)
}

/// Mitigates measured counts given per-qubit readout errors, returning
/// the corrected distribution.
///
/// # Errors
///
/// Propagates [`mitigate_distribution`]'s errors.
pub fn mitigate_counts(counts: &Counts, readout_error: &[f64]) -> Result<Vec<f64>, ReadoutError> {
    mitigate_distribution(&counts.distribution(), readout_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_sim::apply_readout_confusion;

    #[test]
    fn exact_inversion_of_confusion() {
        // Confuse a known distribution, mitigate, recover it.
        let ideal = vec![0.6, 0.1, 0.05, 0.25];
        let errors = [0.08, 0.12];
        let confused = apply_readout_confusion(&ideal, &errors);
        let recovered = mitigate_distribution(&confused, &errors).unwrap();
        for (a, b) in ideal.iter().zip(&recovered) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn mitigation_is_identity_without_error() {
        let probs = vec![0.3, 0.7];
        let out = mitigate_distribution(&probs, &[0.0]).unwrap();
        assert!((out[0] - 0.3).abs() < 1e-12);
        assert!((out[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn clipping_keeps_simplex() {
        // A distribution that inversion pushes negative.
        let probs = vec![0.02, 0.98];
        let out = mitigate_distribution(&probs, &[0.3]).unwrap();
        assert!(out.iter().all(|&p| p >= 0.0));
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Mass moves toward |1⟩.
        assert!(out[1] > 0.98);
    }

    #[test]
    fn unresolvable_error_rejected() {
        let err = mitigate_distribution(&[0.5, 0.5], &[0.5]).unwrap_err();
        assert!(matches!(err, ReadoutError::Unresolvable { qubit: 0, .. }));
        assert!(err.to_string().contains("not invertible"));
    }

    #[test]
    fn size_mismatch_rejected() {
        let err = mitigate_distribution(&[0.5, 0.5, 0.0], &[0.1]).unwrap_err();
        assert!(matches!(err, ReadoutError::SizeMismatch { .. }));
    }

    #[test]
    fn counts_interface() {
        let mut counts = Counts::new(1);
        for _ in 0..90 {
            counts.record(0);
        }
        for _ in 0..10 {
            counts.record(1);
        }
        // True state |0⟩ with 10% readout error: mitigation should push
        // probability of 0 toward 1.
        let out = mitigate_counts(&counts, &[0.1]).unwrap();
        assert!(out[0] > 0.95, "p0 = {}", out[0]);
    }

    #[test]
    fn round_trip_three_qubits() {
        let ideal = vec![0.4, 0.0, 0.1, 0.0, 0.25, 0.05, 0.0, 0.2];
        let errors = [0.05, 0.1, 0.02];
        let confused = apply_readout_confusion(&ideal, &errors);
        let recovered = mitigate_distribution(&confused, &errors).unwrap();
        for (a, b) in ideal.iter().zip(&recovered) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
