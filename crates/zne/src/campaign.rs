//! The ZNE folded-circuit ladder as a streaming
//! [`CampaignDriver`]: one round submitting every noise-scaled fold of
//! one benchmark as a co-scheduled batch, extrapolated to zero noise at
//! finish.
//!
//! Where [`run_zne_comparison`](crate::run_zne_comparison) drives the
//! core pipeline directly (the Fig. 6 three-way comparison), this
//! driver streams the same ladder through the runtime
//! [`Service`](qucp_runtime::Service) — the folds are independent by
//! construction, so they pack onto shared hardware in one admission
//! round and their observables are claimed per ticket.
//!
//! **The service must be built with `optimize(false)`**: folded
//! circuits contain adjacent inverse gate pairs by construction, and
//! the cancellation peephole would silently unfold them back to scale
//! 1, making every ladder rung identical.

use qucp_circuit::Circuit;
use qucp_runtime::{CampaignDriver, JobRequest, JobResult, RoutingChoice};
use qucp_sim::noiseless_probabilities;

use crate::extrapolation::Factory;
use crate::folding::fold_gates_at_random;
use crate::runner::{best_extrapolation, z_observable, z_observable_exact};

/// A streaming ZNE campaign for one benchmark circuit: a single round
/// of folded circuits (one per scale factor), folded observables
/// extrapolated to zero noise when the campaign finishes.
///
/// The ladder matches [`run_zne_comparison`](crate::run_zne_comparison)
/// exactly: rung `i` is `fold_gates_at_random(circuit, scale[i],
/// seed + i)`. Deterministic — the batch depends only on the
/// construction parameters — so the service's serial == concurrent
/// guarantee carries to the mitigated value.
#[derive(Debug, Clone)]
pub struct ZneCampaign {
    circuit: Circuit,
    scale_factors: Vec<f64>,
    seed: u64,
    shots: usize,
    routing: Option<RoutingChoice>,
    ideal: f64,
    samples: Vec<(f64, f64)>,
}

/// What a drained [`ZneCampaign`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ZneCampaignOutput {
    /// Benchmark name.
    pub benchmark: String,
    /// The noiseless observable value.
    pub ideal: f64,
    /// The `(scale, observable)` ladder, in scale-factor order.
    pub samples: Vec<(f64, f64)>,
    /// The extrapolated zero-noise estimate.
    pub mitigated: f64,
    /// |ideal − mitigated|.
    pub error: f64,
    /// The factory that won the extrapolation.
    pub factory: Factory,
}

impl ZneCampaign {
    /// A campaign folding `circuit` at each of `scale_factors` (fold
    /// seeds derive from `seed` exactly as in the direct runner).
    pub fn new(circuit: Circuit, scale_factors: Vec<f64>, seed: u64, shots: usize) -> Self {
        let ideal = z_observable_exact(&noiseless_probabilities(&circuit), circuit.width());
        ZneCampaign {
            circuit,
            scale_factors,
            seed,
            shots,
            routing: None,
            ideal,
            samples: Vec::new(),
        }
    }

    /// Attaches a per-job routing override to every request.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingChoice) -> Self {
        self.routing = Some(routing);
        self
    }
}

impl CampaignDriver for ZneCampaign {
    type Output = ZneCampaignOutput;

    fn next_batch(&mut self, round: usize) -> Option<Vec<JobRequest>> {
        if round > 0 {
            return None;
        }
        Some(
            self.scale_factors
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let folded =
                        fold_gates_at_random(&self.circuit, s, self.seed.wrapping_add(i as u64));
                    let mut request = JobRequest::new(folded, 0.0).with_shots(self.shots);
                    if let Some(routing) = self.routing {
                        request = request.with_routing(routing);
                    }
                    request
                })
                .collect(),
        )
    }

    fn fold(&mut self, _round: usize, results: &[JobResult]) {
        self.samples = self
            .scale_factors
            .iter()
            .zip(results)
            .map(|(&s, r)| (s, z_observable(&r.result.counts)))
            .collect();
    }

    fn finish(self) -> ZneCampaignOutput {
        let (mitigated, factory) = best_extrapolation(&self.samples, self.ideal);
        ZneCampaignOutput {
            benchmark: self.circuit.name().to_string(),
            ideal: self.ideal,
            error: (self.ideal - mitigated).abs(),
            samples: self.samples,
            mitigated,
            factory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_circuit::library;
    use qucp_core::strategy;
    use qucp_device::ibm;
    use qucp_runtime::{run_campaign, ExecutionMode, Service};

    fn service(mode: ExecutionMode) -> Service {
        Service::builder()
            .device(ibm::manhattan())
            .strategy(strategy::qucp(4.0))
            .default_shots(2048)
            .seed(11)
            .mode(mode)
            // Folded circuits must survive untouched (see module docs).
            .optimize(false)
            .build()
            .unwrap()
    }

    #[test]
    fn ladder_is_mode_invariant_and_mitigates() {
        let circuit = library::by_name("fredkin").unwrap().circuit();
        let run = |mode| {
            let mut svc = service(mode);
            let campaign = ZneCampaign::new(circuit.clone(), vec![1.0, 1.5, 2.0, 2.5], 11, 2048);
            run_campaign(&mut svc, campaign).unwrap()
        };
        let serial = run(ExecutionMode::Serial);
        let concurrent = run(ExecutionMode::Concurrent);
        assert_eq!(serial, concurrent, "campaign must be mode-invariant");
        assert_eq!(serial.output.samples.len(), 4);
        assert_eq!(serial.stats.rounds, 1);
        assert_eq!(serial.stats.jobs, 4);
        assert!((serial.output.ideal - 1.0).abs() < 1e-9);
        // The whole point of the ladder: the scale-1 rung alone is the
        // unmitigated estimate; extrapolation should not be far worse.
        let unmitigated_error = (serial.output.ideal - serial.output.samples[0].1).abs();
        assert!(
            serial.output.error <= unmitigated_error + 0.1,
            "mitigated {} vs unmitigated {}",
            serial.output.error,
            unmitigated_error
        );
    }
}
