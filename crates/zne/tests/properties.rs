//! Property-based tests for folding, extrapolation, and readout
//! mitigation.

use proptest::prelude::*;
use qucp_circuit::{Circuit, Gate};
use qucp_sim::{apply_readout_confusion, noiseless_probabilities};
use qucp_zne::{achieved_scale, fold_gates_at_random, mitigate_distribution, Factory};

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        (0usize..3).prop_map(Gate::H),
        (0usize..3).prop_map(Gate::T),
        (0usize..3, -3.0..3.0f64).prop_map(|(q, a)| Gate::Ry(q, a)),
        ((0usize..3), (0usize..3))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::Cx(a, b)),
    ];
    proptest::collection::vec(gate, 1..25).prop_map(|gates| {
        let mut c = Circuit::new(3);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_distribution(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..1.0f64, 1 << n).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        if s == 0.0 {
            v[0] = 1.0;
        } else {
            for x in &mut v {
                *x /= s;
            }
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn folding_preserves_semantics(c in arb_circuit(), scale in 1.0..3.0f64, seed in 0u64..100) {
        let folded = fold_gates_at_random(&c, scale, seed);
        let p0 = noiseless_probabilities(&c);
        let p1 = noiseless_probabilities(&folded);
        for (a, b) in p0.iter().zip(&p1) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn folding_reaches_target_scale(c in arb_circuit(), scale in 1.0..3.0f64, seed in 0u64..100) {
        let folded = fold_gates_at_random(&c, scale, seed);
        let achieved = achieved_scale(&c, &folded);
        // Each fold adds 2 gates: quantization error ≤ 1 fold plus
        // rounding of the target count.
        let tol = 2.0 / c.gate_count() as f64 + 1e-9;
        prop_assert!((achieved - scale).abs() <= tol + 0.5,
            "scale {scale} achieved {achieved} (n = {})", c.gate_count());
        prop_assert!(achieved >= 1.0 - 1e-12);
    }

    #[test]
    fn linear_extrapolation_exact_on_lines(intercept in -1.0..1.0f64, slope in -0.5..0.5f64) {
        let samples: Vec<(f64, f64)> = [1.0, 1.5, 2.0, 2.5]
            .iter()
            .map(|&x| (x, intercept + slope * x))
            .collect();
        let v = Factory::Linear.extrapolate(&samples).unwrap();
        prop_assert!((v - intercept).abs() < 1e-8);
        // Richardson interpolates exactly through any polynomial data.
        let r = Factory::Richardson.extrapolate(&samples).unwrap();
        prop_assert!((r - intercept).abs() < 1e-6);
    }

    #[test]
    fn poly2_exact_on_quadratics(a in -1.0..1.0f64, b in -0.5..0.5f64, c in -0.2..0.2f64) {
        let samples: Vec<(f64, f64)> = [1.0, 1.5, 2.0, 2.5]
            .iter()
            .map(|&x| (x, a + b * x + c * x * x))
            .collect();
        let v = Factory::Poly(2).extrapolate(&samples).unwrap();
        prop_assert!((v - a).abs() < 1e-7);
    }

    #[test]
    fn readout_mitigation_inverts_confusion(
        ideal in arb_distribution(3),
        e0 in 0.0..0.35f64,
        e1 in 0.0..0.35f64,
        e2 in 0.0..0.35f64,
    ) {
        let errors = [e0, e1, e2];
        let confused = apply_readout_confusion(&ideal, &errors);
        let recovered = mitigate_distribution(&confused, &errors).unwrap();
        for (a, b) in ideal.iter().zip(&recovered) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn mitigated_output_is_a_distribution(
        measured in arb_distribution(2),
        e0 in 0.0..0.45f64,
        e1 in 0.0..0.45f64,
    ) {
        let out = mitigate_distribution(&measured, &[e0, e1]).unwrap();
        prop_assert!(out.iter().all(|&p| p >= 0.0));
        prop_assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
