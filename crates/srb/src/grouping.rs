//! Scheduling one-hop link pairs into simultaneous characterization
//! groups.
//!
//! SRB is expensive because each pair needs its own jobs. Murali et al.
//! (whom the paper cites) lower the overhead by benchmarking *several*
//! pairs in the same job when they are far enough apart that they cannot
//! disturb each other. Two pairs can share a group when every link of one
//! is at least two hops from every link of the other. Finding the minimum
//! number of groups is graph coloring; this module uses the Welsh–Powell
//! greedy heuristic, which reproduces the small group counts of the
//! paper's Table I.

use qucp_device::{LinkPair, Topology};

/// Whether two pairs would interfere if benchmarked simultaneously:
/// some link of `a` is within one hop of some link of `b`.
pub fn pairs_conflict(topology: &Topology, a: &LinkPair, b: &LinkPair) -> bool {
    let links_a = [a.first(), a.second()];
    let links_b = [b.first(), b.second()];
    for la in links_a {
        for lb in links_b {
            if la == lb || topology.link_distance(la, lb) <= 1 {
                return true;
            }
        }
    }
    false
}

/// Partitions the device's one-hop pairs into simultaneous groups using
/// Welsh–Powell greedy coloring of the conflict graph.
///
/// Every returned group is conflict-free; the group count is the jobs
/// multiplier of Table I.
pub fn srb_groups(topology: &Topology) -> Vec<Vec<LinkPair>> {
    let pairs = topology.one_hop_link_pairs();
    if pairs.is_empty() {
        return Vec::new();
    }
    let n = pairs.len();
    let mut conflicts = vec![Vec::new(); n];
    for i in 0..n {
        for j in i + 1..n {
            if pairs_conflict(topology, &pairs[i], &pairs[j]) {
                conflicts[i].push(j);
                conflicts[j].push(i);
            }
        }
    }
    // Welsh–Powell: color vertices in order of descending degree.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(conflicts[i].len()));
    let mut color = vec![usize::MAX; n];
    let mut num_colors = 0;
    for &v in &order {
        let mut used = vec![false; num_colors];
        for &nb in &conflicts[v] {
            if color[nb] != usize::MAX {
                used[color[nb]] = true;
            }
        }
        let c = (0..num_colors).find(|&c| !used[c]).unwrap_or_else(|| {
            num_colors += 1;
            num_colors - 1
        });
        color[v] = c;
    }
    let mut groups = vec![Vec::new(); num_colors];
    for (i, &c) in color.iter().enumerate() {
        groups[c].push(pairs[i]);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::ibm;

    #[test]
    fn groups_cover_all_pairs_exactly_once() {
        let t = ibm::toronto_topology();
        let groups = srb_groups(&t);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, t.one_hop_link_pairs().len());
    }

    #[test]
    fn groups_are_conflict_free() {
        let t = ibm::toronto_topology();
        for group in srb_groups(&t) {
            for i in 0..group.len() {
                for j in i + 1..group.len() {
                    assert!(
                        !pairs_conflict(&t, &group[i], &group[j]),
                        "{} and {} conflict within a group",
                        group[i],
                        group[j]
                    );
                }
            }
        }
    }

    #[test]
    fn group_counts_are_small() {
        // The whole point of grouping: far fewer groups than pairs.
        let t = ibm::toronto_topology();
        let pairs = t.one_hop_link_pairs().len();
        let groups = srb_groups(&t).len();
        assert!(groups < pairs, "{groups} groups vs {pairs} pairs");
        assert!(groups <= 16, "Toronto needs few groups, got {groups}");

        let m = ibm::manhattan_topology();
        let mg = srb_groups(&m).len();
        assert!(mg <= 16, "Manhattan needs few groups, got {mg}");
    }

    #[test]
    fn conflict_is_symmetric_and_reflexive() {
        let t = ibm::toronto_topology();
        let pairs = t.one_hop_link_pairs();
        let a = pairs[0];
        let b = pairs[1];
        assert_eq!(pairs_conflict(&t, &a, &b), pairs_conflict(&t, &b, &a));
        assert!(pairs_conflict(&t, &a, &a));
    }

    #[test]
    fn empty_topology_has_no_groups() {
        let t = Topology::line(2); // one link, no disjoint one-hop pairs
        assert!(srb_groups(&t).is_empty());
    }

    #[test]
    fn line_groups() {
        // 0-1-2-3-4-5-6: one-hop pairs (01,23),(12,34),(23,45),(34,56),(01,45)?
        // link_distance((0,1),(4,5)) = dist(1,4)=3 → not one-hop. Pairs are
        // chains; conflicts force at least 2 groups.
        let t = Topology::line(7);
        let groups = srb_groups(&t);
        assert!(!groups.is_empty());
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, t.one_hop_link_pairs().len());
    }
}
