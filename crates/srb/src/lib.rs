//! # qucp-srb
//!
//! Simultaneous Randomized Benchmarking (SRB) for crosstalk
//! characterization, reproducing Sec. III of the QuCP paper: the
//! overhead accounting of Table I and the Fig. 2 crosstalk map of
//! IBM Q 27 Toronto.
//!
//! The paper's central argument is that SRB characterization is too
//! expensive to run routinely (`jobs = 3 × groups × seeds`, growing with
//! chip size), which motivates QuCP's σ approximation. This crate
//! implements the whole pipeline anyway — Clifford sequence generation,
//! decay fitting, pair grouping, campaign accounting — both to reproduce
//! the overhead numbers and to give the QuMC baseline its characterized
//! crosstalk input.
//!
//! ```
//! use qucp_device::ibm;
//! use qucp_srb::{srb_overhead, srb_groups};
//!
//! let dev = ibm::toronto();
//! let overhead = srb_overhead(&dev, 5);
//! assert_eq!(overhead.jobs, 3 * overhead.groups * 5);
//! assert_eq!(srb_groups(dev.topology()).len(), overhead.groups);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
pub mod cliffords;
mod fit;
mod grouping;
mod rb;

pub use campaign::{
    characterize_pair, run_campaign, srb_overhead, CampaignReport, PairCharacterization,
    SrbOverhead, JOBS_PER_GROUP_SEED, SIGNIFICANT_RATIO,
};
pub use fit::{fit_decay, DecayFit};
pub use grouping::{pairs_conflict, srb_groups};
pub use rb::{rb_circuit, rb_on_link, RbConfig, RbOutcome};
