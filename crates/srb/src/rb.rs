//! Two-qubit randomized benchmarking on a coupling link.
//!
//! A length-`m` sequence applies `m` layers of (random single-qubit
//! Clifford ⊗ random single-qubit Clifford, then CNOT) on the link,
//! followed by the exact inverse as a noise-free recovery (its error is
//! absorbed into the SPAM constants of the decay fit, as in standard
//! RB analysis). Survival is the probability of returning to |00⟩.
//!
//! Crosstalk-amplified variants scale the CNOT error probability by the
//! γ factor of the simultaneously driven neighbour pair, which is exactly
//! how the device ground truth injects crosstalk during simultaneous
//! execution.

use qucp_circuit::Circuit;
use qucp_device::{Device, Link};
use qucp_sim::{run_noisy, ExecutionConfig, NoiseScaling};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cliffords;
use crate::fit::{fit_decay, DecayFit};

/// Configuration of an RB experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RbConfig {
    /// Sequence lengths (number of Clifford layers).
    pub lengths: Vec<usize>,
    /// Number of random sequences averaged per length.
    pub seeds: usize,
    /// Shots per circuit.
    pub shots: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for RbConfig {
    /// Five seeds as in the paper's Table I; lengths spanning the useful
    /// decay range for percent-level CNOT errors.
    fn default() -> Self {
        RbConfig {
            lengths: vec![1, 4, 8, 16, 32, 48],
            seeds: 5,
            shots: 512,
            base_seed: 0xB0B,
        }
    }
}

/// The averaged survival curve and decay fit of one RB experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RbOutcome {
    /// `(length, mean survival)` samples.
    pub survival: Vec<(usize, f64)>,
    /// The fitted decay.
    pub fit: DecayFit,
}

impl RbOutcome {
    /// Error per Clifford layer from the fitted decay.
    pub fn error_per_clifford(&self) -> f64 {
        self.fit.error_per_clifford()
    }
}

/// Builds one random RB circuit of `m` layers on a local 2-qubit register
/// and returns it with the index of the first recovery gate.
pub fn rb_circuit(m: usize, rng: &mut impl Rng) -> (Circuit, usize) {
    let mut c = Circuit::with_name(2, format!("rb_m{m}"));
    for _ in 0..m {
        for g in cliffords::on_qubit(rng.gen_range(0..cliffords::CLIFFORD_COUNT), 0) {
            c.push(g);
        }
        for g in cliffords::on_qubit(rng.gen_range(0..cliffords::CLIFFORD_COUNT), 1) {
            c.push(g);
        }
        c.cx(0, 1);
    }
    let recovery_start = c.gate_count();
    let inverse = c.inverse();
    for &g in inverse.gates() {
        c.push(g);
    }
    (c, recovery_start)
}

/// Runs RB on `link`, scaling CNOT error probabilities by `gamma_scale`
/// (1.0 for isolated RB; the ground-truth γ for the simultaneous case).
///
/// # Panics
///
/// Panics if `link` is not a coupling link of the device (the simulator
/// rejects the job).
pub fn rb_on_link(device: &Device, link: Link, gamma_scale: f64, cfg: &RbConfig) -> RbOutcome {
    let layout = [link.low(), link.high()];
    let mut survival = Vec::with_capacity(cfg.lengths.len());
    for (li, &m) in cfg.lengths.iter().enumerate() {
        let mut total = 0.0;
        for s in 0..cfg.seeds {
            let seq_seed = cfg
                .base_seed
                .wrapping_add(li as u64 * 1_000_003)
                .wrapping_add(s as u64 * 7919)
                .wrapping_add(link.low() as u64 * 31)
                .wrapping_add(link.high() as u64);
            let mut rng = StdRng::seed_from_u64(seq_seed);
            let (circuit, recovery_start) = rb_circuit(m, &mut rng);
            // Noise scaling: forward gates carry full noise (CNOTs get the
            // crosstalk factor); the recovery block is noise-free so that
            // the decay reflects exactly m layers.
            let mut scaling = NoiseScaling::uniform(circuit.gate_count());
            for (i, g) in circuit.gates().iter().enumerate() {
                if i >= recovery_start {
                    scaling.set(i, 0.0);
                } else if g.is_two_qubit() {
                    scaling.set(i, gamma_scale);
                }
            }
            let exec = ExecutionConfig {
                shots: cfg.shots,
                seed: seq_seed ^ 0xDEAD_BEEF,
                gate_noise: true,
                readout_noise: true,
                idle_noise: false,
                ..ExecutionConfig::default()
            };
            let counts = run_noisy(&circuit, &layout, device, &scaling, &exec)
                .expect("RB circuit must be executable on its own link");
            total += counts.probability(0);
        }
        survival.push((m, total / cfg.seeds as f64));
    }
    let fit = fit_decay(&survival);
    RbOutcome { survival, fit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::{Calibration, CrosstalkModel, Topology};

    fn device(cx_err: f64) -> Device {
        let t = Topology::line(2);
        let cal = Calibration::uniform(&t, cx_err, 1e-4, 0.02);
        Device::new("rbdev", t, cal, CrosstalkModel::none())
    }

    fn quick_cfg() -> RbConfig {
        RbConfig {
            lengths: vec![1, 4, 8, 16],
            seeds: 2,
            shots: 256,
            base_seed: 5,
        }
    }

    #[test]
    fn rb_circuit_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let (c, recovery_start) = rb_circuit(5, &mut rng);
        assert_eq!(c.width(), 2);
        assert!(c.cx_count() >= 10); // 5 forward + 5 recovery
        assert!(recovery_start > 0);
        // Recovery inverts: the noiseless output is |00>.
        assert_eq!(qucp_sim::ideal_outcome(&c), Some(0));
    }

    #[test]
    fn survival_decays_with_length() {
        let dev = device(0.05);
        let out = rb_on_link(&dev, Link::new(0, 1), 1.0, &quick_cfg());
        let first = out.survival.first().unwrap().1;
        let last = out.survival.last().unwrap().1;
        assert!(
            first > last + 0.05,
            "expected decay, got first {first} last {last}"
        );
    }

    #[test]
    fn higher_error_rate_decays_faster() {
        let low = rb_on_link(&device(0.02), Link::new(0, 1), 1.0, &quick_cfg());
        let high = rb_on_link(&device(0.10), Link::new(0, 1), 1.0, &quick_cfg());
        assert!(
            high.error_per_clifford() > low.error_per_clifford(),
            "high {} vs low {}",
            high.error_per_clifford(),
            low.error_per_clifford()
        );
    }

    #[test]
    fn gamma_scale_amplifies_measured_error() {
        let dev = device(0.03);
        let alone = rb_on_link(&dev, Link::new(0, 1), 1.0, &quick_cfg());
        let together = rb_on_link(&dev, Link::new(0, 1), 4.0, &quick_cfg());
        let ratio = together.error_per_clifford() / alone.error_per_clifford();
        assert!(
            ratio > 1.5,
            "crosstalk-scaled RB should decay visibly faster, ratio {ratio}"
        );
    }

    #[test]
    fn outcome_is_reproducible() {
        let dev = device(0.03);
        let a = rb_on_link(&dev, Link::new(0, 1), 1.0, &quick_cfg());
        let b = rb_on_link(&dev, Link::new(0, 1), 1.0, &quick_cfg());
        assert_eq!(a, b);
    }
}
