//! Full SRB characterization campaigns: the overhead accounting of the
//! paper's Table I and the crosstalk map of its Fig. 2.

use std::fmt;

use qucp_device::{Device, LinkPair};

use crate::grouping::srb_groups;
use crate::rb::{rb_on_link, RbConfig};

/// Crosstalk threshold above which a pair is reported as significant
/// (Murali et al. flag pairs whose simultaneous error grows ≥ 2×).
pub const SIGNIFICANT_RATIO: f64 = 2.0;

/// Number of job types per group and seed: RB on each member of the pair
/// plus the simultaneous run (the ×3 of Table I's job formula).
pub const JOBS_PER_GROUP_SEED: usize = 3;

/// The SRB overhead accounting for one device — a row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrbOverhead {
    /// Device name.
    pub device: String,
    /// Number of qubits.
    pub qubits: usize,
    /// Number of coupling links (the paper's "1-hop pairs" row counts the
    /// links that must be characterized).
    pub links: usize,
    /// Number of disjoint one-hop link pairs (the geometric pair count).
    pub one_hop_pairs: usize,
    /// Simultaneous characterization groups after conflict coloring.
    pub groups: usize,
    /// Seeds per experiment.
    pub seeds: usize,
    /// Total jobs = 3 × groups × seeds.
    pub jobs: usize,
}

impl fmt::Display for SrbOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} qubits, {} links, {} one-hop pairs, {} groups, {} seeds, {} jobs",
            self.device,
            self.qubits,
            self.links,
            self.one_hop_pairs,
            self.groups,
            self.seeds,
            self.jobs
        )
    }
}

/// Computes the Table I overhead row for a device without running any
/// circuits.
pub fn srb_overhead(device: &Device, seeds: usize) -> SrbOverhead {
    let topo = device.topology();
    let groups = srb_groups(topo).len();
    SrbOverhead {
        device: device.name().to_string(),
        qubits: topo.num_qubits(),
        links: topo.num_links(),
        one_hop_pairs: topo.one_hop_link_pairs().len(),
        groups,
        seeds,
        jobs: JOBS_PER_GROUP_SEED * groups * seeds,
    }
}

/// The SRB measurement of one one-hop pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairCharacterization {
    /// The measured pair.
    pub pair: LinkPair,
    /// Isolated error per Clifford of (first, second) link.
    pub isolated: (f64, f64),
    /// Simultaneous error per Clifford of (first, second) link.
    pub simultaneous: (f64, f64),
    /// The ground-truth γ of the device model (for validation).
    pub true_gamma: f64,
}

impl PairCharacterization {
    /// The smallest error-per-Clifford treated as resolvable: isolated
    /// errors below this floor are clamped before forming ratios so that
    /// shot-noise fits near zero cannot produce unbounded ratios.
    pub const EPSILON_FLOOR: f64 = 1e-3;

    /// Measured crosstalk ratio `ε(gi|gj)/ε(gi)` for the first link.
    pub fn ratio_first(&self) -> f64 {
        self.simultaneous.0 / self.isolated.0.max(Self::EPSILON_FLOOR)
    }

    /// Measured crosstalk ratio for the second link.
    pub fn ratio_second(&self) -> f64 {
        self.simultaneous.1 / self.isolated.1.max(Self::EPSILON_FLOOR)
    }

    /// The larger of the two ratios.
    pub fn worst_ratio(&self) -> f64 {
        self.ratio_first().max(self.ratio_second())
    }

    /// Whether the pair is significantly affected by crosstalk.
    pub fn is_significant(&self) -> bool {
        self.worst_ratio() >= SIGNIFICANT_RATIO
    }
}

/// Runs SRB on one pair: isolated RB on each link, then the simultaneous
/// variant with the ground-truth γ applied (the physical effect of
/// driving both CNOTs at once).
pub fn characterize_pair(device: &Device, pair: LinkPair, cfg: &RbConfig) -> PairCharacterization {
    let (l1, l2) = (pair.first(), pair.second());
    let gamma = device.crosstalk().gamma(l1, l2);
    let iso1 = rb_on_link(device, l1, 1.0, cfg);
    let iso2 = rb_on_link(device, l2, 1.0, cfg);
    let sim1 = rb_on_link(device, l1, gamma, cfg);
    let sim2 = rb_on_link(device, l2, gamma, cfg);
    PairCharacterization {
        pair,
        isolated: (iso1.error_per_clifford(), iso2.error_per_clifford()),
        simultaneous: (sim1.error_per_clifford(), sim2.error_per_clifford()),
        true_gamma: gamma,
    }
}

/// A full characterization campaign over every one-hop pair of a device —
/// the data behind the paper's Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Overhead accounting (Table I row).
    pub overhead: SrbOverhead,
    /// Per-pair measurements.
    pub pairs: Vec<PairCharacterization>,
}

impl CampaignReport {
    /// Pairs flagged as significantly affected, sorted by worst ratio
    /// descending.
    pub fn significant(&self) -> Vec<&PairCharacterization> {
        let mut v: Vec<&PairCharacterization> =
            self.pairs.iter().filter(|p| p.is_significant()).collect();
        v.sort_by(|a, b| {
            b.worst_ratio()
                .total_cmp(&a.worst_ratio())
                .then(a.pair.cmp(&b.pair))
        });
        v
    }
}

/// Runs the full campaign. `pair_limit` truncates the sweep (useful for
/// tests and quick demos); pass `usize::MAX` for full coverage.
pub fn run_campaign(device: &Device, cfg: &RbConfig, pair_limit: usize) -> CampaignReport {
    let overhead = srb_overhead(device, cfg.seeds);
    let pairs: Vec<PairCharacterization> = device
        .topology()
        .one_hop_link_pairs()
        .into_iter()
        .take(pair_limit)
        .map(|p| characterize_pair(device, p, cfg))
        .collect();
    CampaignReport { overhead, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::{ibm, Calibration, CrosstalkModel, Device, Link, Topology};

    #[test]
    fn table1_overhead_structure() {
        let toronto = srb_overhead(&ibm::toronto(), 5);
        assert_eq!(toronto.qubits, 27);
        assert_eq!(toronto.links, 28);
        assert_eq!(toronto.seeds, 5);
        assert_eq!(toronto.jobs, 3 * toronto.groups * 5);

        let manhattan = srb_overhead(&ibm::manhattan(), 5);
        assert_eq!(manhattan.qubits, 65);
        assert_eq!(manhattan.links, 72);
        assert!(manhattan.groups >= toronto.groups);
        assert!(manhattan.jobs > toronto.jobs);
    }

    #[test]
    fn overhead_display() {
        let o = srb_overhead(&ibm::toronto(), 5);
        let s = o.to_string();
        assert!(s.contains("ibmq_toronto"));
        assert!(s.contains("27 qubits"));
    }

    fn small_device(gamma: f64) -> Device {
        let t = Topology::line(4);
        let cal = Calibration::uniform(&t, 0.03, 1e-4, 0.02);
        let pair = qucp_device::LinkPair::new(Link::new(0, 1), Link::new(2, 3));
        let xt = CrosstalkModel::from_pairs([(pair, gamma)]);
        Device::new("small", t, cal, xt)
    }

    fn quick_cfg() -> RbConfig {
        RbConfig {
            lengths: vec![1, 4, 8, 16],
            seeds: 2,
            shots: 256,
            base_seed: 77,
        }
    }

    #[test]
    fn characterization_detects_strong_crosstalk() {
        let dev = small_device(5.0);
        let pair = qucp_device::LinkPair::new(Link::new(0, 1), Link::new(2, 3));
        let ch = characterize_pair(&dev, pair, &quick_cfg());
        assert!(ch.is_significant(), "worst ratio {}", ch.worst_ratio());
        assert!(ch.worst_ratio() > 2.0);
        assert_eq!(ch.true_gamma, 5.0);
    }

    #[test]
    fn characterization_passes_quiet_pairs() {
        let dev = small_device(1.0);
        let pair = qucp_device::LinkPair::new(Link::new(0, 1), Link::new(2, 3));
        let ch = characterize_pair(&dev, pair, &quick_cfg());
        assert!(!ch.is_significant(), "worst ratio {}", ch.worst_ratio());
    }

    #[test]
    fn campaign_on_small_device() {
        let dev = small_device(4.0);
        let report = run_campaign(&dev, &quick_cfg(), usize::MAX);
        assert_eq!(report.pairs.len(), 1);
        assert_eq!(report.significant().len(), 1);
        assert_eq!(report.overhead.one_hop_pairs, 1);
    }

    #[test]
    fn campaign_respects_pair_limit() {
        let dev = ibm::toronto();
        let report = run_campaign(&dev, &quick_cfg(), 0);
        assert!(report.pairs.is_empty());
        assert_eq!(report.overhead.links, 28);
    }
}
