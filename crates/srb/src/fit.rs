//! Exponential decay fitting for randomized benchmarking.
//!
//! RB survival probabilities follow `P(m) = A·α^m + B`. For a fixed α the
//! model is linear in `(A, B)`, so the fit scans α with closed-form
//! linear least squares and refines the best region by golden-section
//! search.

/// A fitted RB decay curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayFit {
    /// Depolarizing parameter per Clifford layer.
    pub alpha: f64,
    /// SPAM amplitude.
    pub a: f64,
    /// SPAM floor.
    pub b: f64,
    /// Sum of squared residuals at the optimum.
    pub residual: f64,
}

impl DecayFit {
    /// Error per Clifford layer for a two-qubit register:
    /// `ε = (3/4)(1 − α)` (d = 4 depolarizing convention).
    pub fn error_per_clifford(&self) -> f64 {
        0.75 * (1.0 - self.alpha)
    }

    /// The model value at sequence length `m`.
    pub fn predict(&self, m: f64) -> f64 {
        self.a * self.alpha.powf(m) + self.b
    }
}

/// Fits `P(m) = A·α^m + B` to `(m, survival)` samples.
///
/// # Panics
///
/// Panics if fewer than three samples are provided (the model has three
/// parameters).
pub fn fit_decay(samples: &[(usize, f64)]) -> DecayFit {
    assert!(
        samples.len() >= 3,
        "need at least 3 samples to fit a 3-parameter decay, got {}",
        samples.len()
    );
    let mut best = DecayFit {
        alpha: 0.0,
        a: 0.0,
        b: samples.iter().map(|s| s.1).sum::<f64>() / samples.len() as f64,
        residual: f64::INFINITY,
    };
    // Coarse scan.
    for i in 1..1000 {
        let alpha = i as f64 / 1000.0;
        let fit = linear_fit(samples, alpha);
        if fit.residual < best.residual {
            best = fit;
        }
    }
    // Golden-section refinement around the best coarse alpha.
    let mut lo = (best.alpha - 0.002).max(1e-6);
    let mut hi = (best.alpha + 0.002).min(1.0 - 1e-9);
    const PHI: f64 = 0.618_033_988_749_894_8;
    for _ in 0..60 {
        let m1 = hi - PHI * (hi - lo);
        let m2 = lo + PHI * (hi - lo);
        let f1 = linear_fit(samples, m1).residual;
        let f2 = linear_fit(samples, m2).residual;
        if f1 < f2 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let refined = linear_fit(samples, 0.5 * (lo + hi));
    if refined.residual < best.residual {
        best = refined;
    }
    best
}

/// Least-squares `(A, B)` for fixed `alpha`, with the physicality
/// constraints of a two-qubit RB decay: the floor `B` lies in
/// `[0, 0.5]` (the depolarized limit is 1/4; readout error keeps it
/// below one half) and the amplitude `A` is non-negative. Without the
/// clamp, slow decays under shot noise can fit `α ≈ 1, ε ≈ 0` and blow
/// up downstream crosstalk ratios.
fn linear_fit(samples: &[(usize, f64)], alpha: f64) -> DecayFit {
    let n = samples.len() as f64;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for &(m, p) in samples {
        let x = alpha.powi(m as i32);
        sx += x;
        sy += p;
        sxx += x * x;
        sxy += x * p;
    }
    let denom = n * sxx - sx * sx;
    let (mut a, mut b) = if denom.abs() < 1e-15 {
        (0.0, sy / n)
    } else {
        let a = (n * sxy - sx * sy) / denom;
        let b = (sy - a * sx) / n;
        (a, b)
    };
    if !(0.0..=0.5).contains(&b) || a < 0.0 {
        // Re-fit A with B pinned to the nearest physical boundary.
        b = b.clamp(0.0, 0.5);
        a = if sxx.abs() < 1e-15 {
            0.0
        } else {
            ((sxy - b * sx) / sxx).max(0.0)
        };
    }
    let mut residual = 0.0;
    for &(m, p) in samples {
        let pred = a * alpha.powi(m as i32) + b;
        residual += (p - pred) * (p - pred);
    }
    DecayFit {
        alpha,
        a,
        b,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(alpha: f64, a: f64, b: f64, lengths: &[usize]) -> Vec<(usize, f64)> {
        lengths
            .iter()
            .map(|&m| (m, a * alpha.powi(m as i32) + b))
            .collect()
    }

    #[test]
    fn recovers_exact_parameters() {
        let samples = synth(0.93, 0.72, 0.26, &[1, 2, 4, 8, 16, 32, 64]);
        let fit = fit_decay(&samples);
        assert!((fit.alpha - 0.93).abs() < 1e-4, "alpha {}", fit.alpha);
        assert!((fit.a - 0.72).abs() < 1e-3);
        assert!((fit.b - 0.26).abs() < 1e-3);
        assert!(fit.residual < 1e-9);
    }

    #[test]
    fn error_per_clifford_formula() {
        let fit = DecayFit {
            alpha: 0.9,
            a: 0.75,
            b: 0.25,
            residual: 0.0,
        };
        assert!((fit.error_per_clifford() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn predict_matches_model() {
        let fit = DecayFit {
            alpha: 0.8,
            a: 0.5,
            b: 0.25,
            residual: 0.0,
        };
        assert!((fit.predict(0.0) - 0.75).abs() < 1e-12);
        assert!((fit.predict(2.0) - (0.5 * 0.64 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn tolerates_noisy_samples() {
        let mut samples = synth(0.90, 0.7, 0.27, &[1, 2, 4, 8, 16, 32]);
        // Perturb deterministically.
        for (i, s) in samples.iter_mut().enumerate() {
            s.1 += if i % 2 == 0 { 0.01 } else { -0.01 };
        }
        let fit = fit_decay(&samples);
        assert!((fit.alpha - 0.90).abs() < 0.05, "alpha {}", fit.alpha);
    }

    #[test]
    fn faster_decay_gives_higher_error() {
        let clean = fit_decay(&synth(0.95, 0.7, 0.27, &[1, 2, 4, 8, 16, 32]));
        let noisy = fit_decay(&synth(0.80, 0.7, 0.27, &[1, 2, 4, 8, 16, 32]));
        assert!(noisy.error_per_clifford() > clean.error_per_clifford());
    }

    #[test]
    #[should_panic(expected = "at least 3 samples")]
    fn too_few_samples_panics() {
        fit_decay(&[(1, 0.9), (2, 0.8)]);
    }

    #[test]
    fn flat_data_fits_constant() {
        let samples = vec![(1, 0.5), (2, 0.5), (4, 0.5), (8, 0.5)];
        let fit = fit_decay(&samples);
        assert!(fit.residual < 1e-9);
        assert!((fit.predict(3.0) - 0.5).abs() < 1e-6);
    }
}
