//! The single-qubit Clifford group as gate sequences.
//!
//! Randomized benchmarking layers draw uniformly from the 24 single-qubit
//! Cliffords. The group is generated once by enumerating products of
//! `H` and `S` and deduplicating by unitary (up to global phase).

use std::sync::OnceLock;

use qucp_circuit::Gate;
use qucp_sim::math::{mat2_identity, mat2_mul, Complex, Mat2};
use qucp_sim::single_qubit_matrix;

/// Number of single-qubit Clifford group elements.
pub const CLIFFORD_COUNT: usize = 24;

static CLIFFORDS: OnceLock<Vec<Vec<Gate>>> = OnceLock::new();

/// The 24 single-qubit Cliffords as gate sequences on qubit 0.
///
/// The sequences are products of `H` and `S` of minimal discovered
/// length; remap them onto other qubits with [`Gate::map_qubits`].
///
/// ```
/// use qucp_srb::cliffords;
/// assert_eq!(cliffords::all().len(), 24);
/// ```
pub fn all() -> &'static [Vec<Gate>] {
    CLIFFORDS.get_or_init(enumerate)
}

/// The `i`-th Clifford sequence applied to qubit `q`.
///
/// # Panics
///
/// Panics if `i >= 24`.
pub fn on_qubit(i: usize, q: usize) -> Vec<Gate> {
    all()[i].iter().map(|g| g.map_qubits(|_| q)).collect()
}

/// A canonical key for a 2×2 unitary up to global phase.
fn phase_invariant_key(m: &Mat2) -> [i64; 8] {
    // Normalize global phase: rotate so the first entry with significant
    // magnitude becomes real positive.
    let mut phase = Complex::one();
    'outer: for row in m {
        for &e in row {
            if e.abs() > 1e-6 {
                phase = e.conj() * (1.0 / e.abs());
                break 'outer;
            }
        }
    }
    let mut key = [0i64; 8];
    let mut k = 0;
    for row in m {
        for &e in row {
            let v = e * phase;
            key[k] = (v.re * 1e6).round() as i64;
            key[k + 1] = (v.im * 1e6).round() as i64;
            k += 2;
        }
    }
    key
}

fn sequence_matrix(seq: &[Gate]) -> Mat2 {
    let mut m = mat2_identity();
    for g in seq {
        m = mat2_mul(&single_qubit_matrix(g), &m);
    }
    m
}

fn enumerate() -> Vec<Vec<Gate>> {
    let generators = [Gate::H(0), Gate::S(0)];
    let mut found: Vec<(Vec<Gate>, [i64; 8])> =
        vec![(Vec::new(), phase_invariant_key(&mat2_identity()))];
    let mut frontier: Vec<Vec<Gate>> = vec![Vec::new()];
    while found.len() < CLIFFORD_COUNT {
        let mut next_frontier = Vec::new();
        for seq in &frontier {
            for g in &generators {
                let mut candidate = seq.clone();
                candidate.push(*g);
                let key = phase_invariant_key(&sequence_matrix(&candidate));
                if !found.iter().any(|(_, k)| *k == key) {
                    found.push((candidate.clone(), key));
                    next_frontier.push(candidate);
                }
            }
        }
        assert!(
            !next_frontier.is_empty(),
            "Clifford enumeration stalled at {} elements",
            found.len()
        );
        frontier = next_frontier;
    }
    found.truncate(CLIFFORD_COUNT);
    found.into_iter().map(|(seq, _)| seq).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_24_elements() {
        assert_eq!(all().len(), 24);
    }

    #[test]
    fn elements_are_distinct_up_to_phase() {
        let keys: Vec<[i64; 8]> = all()
            .iter()
            .map(|seq| phase_invariant_key(&sequence_matrix(seq)))
            .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "cliffords {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn identity_is_first() {
        assert!(all()[0].is_empty());
    }

    #[test]
    fn sequences_are_short() {
        for seq in all() {
            assert!(seq.len() <= 6, "sequence too long: {seq:?}");
        }
    }

    #[test]
    fn group_closed_under_h_and_s() {
        // Multiplying any element by H stays in the set.
        let keys: Vec<[i64; 8]> = all()
            .iter()
            .map(|seq| phase_invariant_key(&sequence_matrix(seq)))
            .collect();
        for seq in all() {
            let mut extended = seq.clone();
            extended.push(Gate::H(0));
            let key = phase_invariant_key(&sequence_matrix(&extended));
            assert!(keys.contains(&key));
        }
    }

    #[test]
    fn on_qubit_remaps() {
        // Find a non-empty sequence and remap it.
        let idx = all().iter().position(|s| !s.is_empty()).unwrap();
        for g in on_qubit(idx, 5) {
            assert_eq!(g.qubits().as_slice(), &[5]);
        }
    }

    #[test]
    fn x_gate_is_in_group() {
        // X = H S S H up to phase; verify some sequence matches X.
        let x_key = phase_invariant_key(&single_qubit_matrix(&Gate::X(0)));
        let found = all()
            .iter()
            .any(|seq| phase_invariant_key(&sequence_matrix(seq)) == x_key);
        assert!(found, "Pauli X not found in enumerated Clifford group");
    }
}
