//! Error type of the VQE runner.

use std::error::Error;
use std::fmt;

use qucp_core::CoreError;

/// Errors produced while running a VQE experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum VqeError {
    /// The parallel-execution pipeline failed.
    Core(CoreError),
}

impl fmt::Display for VqeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VqeError::Core(e) => write!(f, "parallel execution failed: {e}"),
        }
    }
}

impl Error for VqeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VqeError::Core(e) => Some(e),
        }
    }
}

impl From<CoreError> for VqeError {
    fn from(e: CoreError) -> Self {
        VqeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: VqeError = CoreError::PartitionUnavailable {
            program: 0,
            size: 2,
        }
        .into();
        assert!(e.to_string().contains("parallel execution failed"));
        assert!(e.source().is_some());
    }
}
