//! The VQE experiment of the paper's Sec. IV-C / Table III / Fig. 5:
//! estimating the H2 ground state with Pauli-grouped simultaneous
//! measurement (PG), independently versus in parallel (QuCP + PG).

use qucp_circuit::Circuit;
use qucp_core::{execute_parallel, strategy, ParallelConfig, Strategy};
use qucp_device::Device;
use qucp_sim::{noiseless_probabilities, ExecutionConfig};

use crate::ansatz::tied_ansatz;
use crate::eigen::ground_state_energy;
use crate::error::VqeError;
use crate::hamiltonian::{h2_hamiltonian, Hamiltonian};
use crate::measurement::{group_energy, group_energy_exact, measurement_circuit};
use crate::pauli::PauliString;

/// Configuration of the Table III experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct VqeExperiment {
    /// Number of tied-θ optimization points (8, 10, 12 in the paper).
    pub theta_points: usize,
    /// Ansatz repetitions (2 in the paper).
    pub reps: usize,
    /// Shots per measurement circuit.
    pub shots: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Partitioning strategy for the parallel run.
    pub strategy: Strategy,
}

impl Default for VqeExperiment {
    fn default() -> Self {
        VqeExperiment {
            theta_points: 8,
            reps: 2,
            shots: 8192,
            seed: 0xE16E,
            strategy: strategy::qucp(4.0),
        }
    }
}

/// One θ grid point of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VqePoint {
    /// The tied rotation angle.
    pub theta: f64,
    /// Noiseless simulator energy (the paper's baseline).
    pub energy_sim: f64,
    /// Hardware energy, independent execution (PG).
    pub energy_pg: f64,
    /// Hardware energy, parallel execution (QuCP + PG).
    pub energy_parallel: f64,
}

/// The full Table III row pair + Fig. 5 series for one `theta_points`
/// setting.
#[derive(Debug, Clone, PartialEq)]
pub struct VqeReport {
    /// Per-θ energies.
    pub points: Vec<VqePoint>,
    /// Number of simultaneous measurement circuits (`nc` = 2 × points).
    pub nc: usize,
    /// Exact ground energy from the eigensolver (the "theory" value).
    pub exact: f64,
    /// Minimum simulator energy over the grid.
    pub sim_min: f64,
    /// Minimum PG energy.
    pub pg_min: f64,
    /// Minimum parallel energy.
    pub parallel_min: f64,
    /// Hardware throughput of independent execution.
    pub pg_throughput: f64,
    /// Hardware throughput of the parallel execution.
    pub parallel_throughput: f64,
}

impl VqeReport {
    /// `ΔE_base` (%) of the PG run: error against the simulator minimum.
    pub fn delta_base_pg(&self) -> f64 {
        100.0 * (self.pg_min - self.sim_min).abs() / self.sim_min.abs()
    }

    /// `ΔE_base` (%) of the parallel run.
    pub fn delta_base_parallel(&self) -> f64 {
        100.0 * (self.parallel_min - self.sim_min).abs() / self.sim_min.abs()
    }

    /// `ΔE_theory` (%) of the PG run: error against the eigensolver.
    pub fn delta_theory_pg(&self) -> f64 {
        100.0 * (self.pg_min - self.exact).abs() / self.exact.abs()
    }

    /// `ΔE_theory` (%) of the parallel run.
    pub fn delta_theory_parallel(&self) -> f64 {
        100.0 * (self.parallel_min - self.exact).abs() / self.exact.abs()
    }
}

/// The measurement circuits of one θ point: one per commuting group.
pub(crate) fn circuits_for_theta(
    h: &Hamiltonian,
    groups: &[Vec<usize>],
    reps: usize,
    theta: f64,
    label: usize,
) -> Vec<Circuit> {
    let ansatz = tied_ansatz(h.num_qubits(), reps, theta);
    groups
        .iter()
        .enumerate()
        .map(|(gi, group)| {
            let strings: Vec<&PauliString> = group.iter().map(|&i| &h.terms()[i].0).collect();
            let mut c = measurement_circuit(&ansatz, &strings);
            c.set_name(format!("vqe_t{label}_g{gi}"));
            c
        })
        .collect()
}

/// Runs the H2 experiment on `device` (the paper uses IBM Q 65
/// Manhattan).
///
/// # Errors
///
/// Propagates partitioning/simulation failures as [`VqeError`].
pub fn run_h2_experiment(device: &Device, exp: &VqeExperiment) -> Result<VqeReport, VqeError> {
    let h = h2_hamiltonian();
    let groups = h.commuting_groups();
    let n_groups = groups.len();
    let thetas: Vec<f64> = (0..exp.theta_points)
        .map(|i| {
            -std::f64::consts::PI
                + 2.0 * std::f64::consts::PI * (i as f64 + 0.5) / exp.theta_points as f64
        })
        .collect();

    // Build every measurement circuit.
    let mut all_circuits = Vec::with_capacity(exp.theta_points * n_groups);
    for (ti, &theta) in thetas.iter().enumerate() {
        all_circuits.extend(circuits_for_theta(&h, &groups, exp.reps, theta, ti));
    }
    let nc = all_circuits.len();

    // Noiseless baseline.
    let sim_energy: Vec<f64> = thetas
        .iter()
        .enumerate()
        .map(|(ti, _)| {
            (0..n_groups)
                .map(|gi| {
                    let probs = noiseless_probabilities(&all_circuits[ti * n_groups + gi]);
                    group_energy_exact(&h, &groups[gi], &probs)
                })
                .sum()
        })
        .collect();

    // Independent execution: one circuit per job, best partition each time.
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default()
            .with_shots(exp.shots)
            .with_seed(exp.seed),
        optimize: false, // keep the ansatz structure untouched
    };
    let mut pg_energy = vec![0.0f64; exp.theta_points];
    for (ci, circuit) in all_circuits.iter().enumerate() {
        let single_cfg = ParallelConfig {
            execution: cfg
                .execution
                .with_seed(exp.seed.wrapping_add(ci as u64 * 101)),
            ..cfg
        };
        let out = execute_parallel(
            device,
            std::slice::from_ref(circuit),
            &exp.strategy,
            &single_cfg,
        )?;
        let (ti, gi) = (ci / n_groups, ci % n_groups);
        pg_energy[ti] += group_energy(&h, &groups[gi], &out.programs[0].counts);
    }

    // Parallel execution: all nc circuits simultaneously.
    let parallel_out = execute_parallel(device, &all_circuits, &exp.strategy, &cfg)?;
    let mut parallel_energy = vec![0.0f64; exp.theta_points];
    for (ci, result) in parallel_out.programs.iter().enumerate() {
        let (ti, gi) = (ci / n_groups, ci % n_groups);
        parallel_energy[ti] += group_energy(&h, &groups[gi], &result.counts);
    }

    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let points: Vec<VqePoint> = thetas
        .iter()
        .enumerate()
        .map(|(i, &theta)| VqePoint {
            theta,
            energy_sim: sim_energy[i],
            energy_pg: pg_energy[i],
            energy_parallel: parallel_energy[i],
        })
        .collect();

    Ok(VqeReport {
        nc,
        exact: ground_state_energy(&h),
        sim_min: min(&sim_energy),
        pg_min: min(&pg_energy),
        parallel_min: min(&parallel_energy),
        pg_throughput: h.num_qubits() as f64 / device.num_qubits() as f64,
        parallel_throughput: (h.num_qubits() * nc) as f64 / device.num_qubits() as f64,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::ibm;

    fn quick_experiment(points: usize) -> VqeExperiment {
        VqeExperiment {
            theta_points: points,
            reps: 2,
            shots: 1024,
            seed: 9,
            strategy: strategy::qucp(4.0),
        }
    }

    #[test]
    fn experiment_matches_paper_structure() {
        let dev = ibm::manhattan();
        let report = run_h2_experiment(&dev, &quick_experiment(8)).unwrap();
        // 8 points × 2 groups = 16 simultaneous circuits; throughput
        // 32/65 = 49.2% (Table III row (a)).
        assert_eq!(report.nc, 16);
        assert!((report.parallel_throughput - 32.0 / 65.0).abs() < 1e-12);
        assert!((report.pg_throughput - 2.0 / 65.0).abs() < 1e-12);
        assert_eq!(report.points.len(), 8);
    }

    #[test]
    fn energies_are_physical() {
        let dev = ibm::manhattan();
        let report = run_h2_experiment(&dev, &quick_experiment(8)).unwrap();
        // All estimates must lie within the spectrum bounds of H2.
        for p in &report.points {
            for e in [p.energy_sim, p.energy_pg, p.energy_parallel] {
                assert!(e > -2.5 && e < 1.0, "unphysical energy {e}");
            }
        }
        // The grid minimum approaches the exact ground state from above
        // (variational principle holds for the noiseless baseline).
        assert!(report.sim_min >= report.exact - 1e-9);
        assert!((report.exact + 1.8572750302023797).abs() < 1e-9);
    }

    #[test]
    fn error_rates_are_moderate() {
        let dev = ibm::manhattan();
        let report = run_h2_experiment(&dev, &quick_experiment(8)).unwrap();
        // The paper reports ΔE_base ≤ 10% even at 73.8% throughput; our
        // noise model should land in the same regime.
        assert!(report.delta_base_pg() < 15.0, "{}", report.delta_base_pg());
        assert!(
            report.delta_base_parallel() < 20.0,
            "{}",
            report.delta_base_parallel()
        );
        assert!(report.delta_theory_pg() < 25.0);
        assert!(report.delta_theory_parallel() < 30.0);
    }
}
