//! The H2 VQE grid as a streaming [`CampaignDriver`]: each round is one
//! θ point whose commuting-group measurement circuits ride the
//! [`Service`](qucp_runtime::Service) as a co-scheduled batch.
//!
//! Where [`run_h2_experiment`](crate::run_h2_experiment) drives the
//! core pipeline directly (the paper's Table III comparison), this
//! driver submits the same circuits through the runtime's streaming
//! job interface — multiprogrammed with per-ticket result retrieval —
//! so the VQE iteration loop benefits from admission packing, EFS
//! gating, and scheduler batching without owning any of it. Per-job
//! knobs (EFS threshold, routing override) apply to every request the
//! driver emits.

use qucp_circuit::Circuit;
use qucp_runtime::{CampaignDriver, JobRequest, JobResult, RoutingChoice};

use crate::hamiltonian::{h2_hamiltonian, Hamiltonian};
use crate::measurement::group_energy;
use crate::runner::circuits_for_theta;

/// A streaming H2 VQE campaign: one round per θ grid point, one job
/// per commuting measurement group.
///
/// The grid matches [`run_h2_experiment`](crate::run_h2_experiment):
/// `θ_i = −π + 2π(i + 0.5)/n`, circuits named `vqe_t{ti}_g{gi}`, energy
/// folded per group from raw counts with
/// [`group_energy`](crate::group_energy). Deterministic by
/// construction — the batches depend only on the grid, never on the
/// results — so the service's serial == concurrent guarantee carries
/// to the folded energies.
#[derive(Debug, Clone)]
pub struct VqeCampaign {
    h: Hamiltonian,
    groups: Vec<Vec<usize>>,
    thetas: Vec<f64>,
    reps: usize,
    shots: usize,
    fidelity_threshold: Option<f64>,
    routing: Option<RoutingChoice>,
    energies: Vec<f64>,
}

/// What a drained [`VqeCampaign`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct VqeCampaignOutput {
    /// The θ grid, in round order.
    pub thetas: Vec<f64>,
    /// The estimated energy at each θ, in round order.
    pub energies: Vec<f64>,
    /// The grid minimum (the variational estimate).
    pub min_energy: f64,
}

impl VqeCampaign {
    /// An H2 campaign over `theta_points` grid angles with the given
    /// ansatz repetitions and per-circuit shot budget.
    pub fn h2(theta_points: usize, reps: usize, shots: usize) -> Self {
        let h = h2_hamiltonian();
        let groups = h.commuting_groups();
        let thetas = (0..theta_points)
            .map(|i| {
                -std::f64::consts::PI
                    + 2.0 * std::f64::consts::PI * (i as f64 + 0.5) / theta_points as f64
            })
            .collect();
        VqeCampaign {
            h,
            groups,
            thetas,
            reps,
            shots,
            fidelity_threshold: None,
            routing: None,
            energies: Vec::new(),
        }
    }

    /// Attaches a per-job EFS fidelity threshold to every request.
    #[must_use]
    pub fn with_fidelity_threshold(mut self, threshold: f64) -> Self {
        self.fidelity_threshold = Some(threshold);
        self
    }

    /// Attaches a per-job routing override to every request.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingChoice) -> Self {
        self.routing = Some(routing);
        self
    }

    /// Jobs per round: one per commuting group.
    pub fn jobs_per_round(&self) -> usize {
        self.groups.len()
    }

    fn request(&self, circuit: Circuit) -> JobRequest {
        let mut request = JobRequest::new(circuit, 0.0).with_shots(self.shots);
        if let Some(threshold) = self.fidelity_threshold {
            request = request.with_fidelity_threshold(threshold);
        }
        if let Some(routing) = self.routing {
            request = request.with_routing(routing);
        }
        request
    }
}

impl CampaignDriver for VqeCampaign {
    type Output = VqeCampaignOutput;

    fn next_batch(&mut self, round: usize) -> Option<Vec<JobRequest>> {
        let &theta = self.thetas.get(round)?;
        Some(
            circuits_for_theta(&self.h, &self.groups, self.reps, theta, round)
                .into_iter()
                .map(|c| self.request(c))
                .collect(),
        )
    }

    fn fold(&mut self, _round: usize, results: &[JobResult]) {
        let energy = results
            .iter()
            .zip(&self.groups)
            .map(|(r, group)| group_energy(&self.h, group, &r.result.counts))
            .sum();
        self.energies.push(energy);
    }

    fn finish(self) -> VqeCampaignOutput {
        let min_energy = self.energies.iter().copied().fold(f64::INFINITY, f64::min);
        VqeCampaignOutput {
            thetas: self.thetas,
            energies: self.energies,
            min_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::h2_exact_ground_energy;
    use qucp_core::strategy;
    use qucp_device::ibm;
    use qucp_runtime::{run_campaign, ExecutionMode, Service};

    fn service(mode: ExecutionMode) -> Service {
        Service::builder()
            .device(ibm::manhattan())
            .strategy(strategy::qucp(4.0))
            .default_shots(1024)
            .seed(7)
            .mode(mode)
            .optimize(false)
            .build()
            .unwrap()
    }

    #[test]
    fn campaign_energies_are_physical_and_deterministic() {
        let run = |mode| {
            let mut svc = service(mode);
            run_campaign(&mut svc, VqeCampaign::h2(4, 2, 1024)).unwrap()
        };
        let serial = run(ExecutionMode::Serial);
        let concurrent = run(ExecutionMode::Concurrent);
        assert_eq!(serial, concurrent, "campaign must be mode-invariant");
        assert_eq!(serial.output.energies.len(), 4);
        assert_eq!(serial.stats.rounds, 4);
        assert_eq!(serial.stats.jobs, 8);
        for &e in &serial.output.energies {
            assert!(e > -2.5 && e < 1.0, "unphysical energy {e}");
        }
        // A 4-point grid is coarse, but the minimum still has to land
        // in the well, not at the dissociation plateau.
        assert!(serial.output.min_energy < h2_exact_ground_energy() + 1.0);
    }
}
