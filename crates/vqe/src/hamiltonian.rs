//! Qubit Hamiltonians as weighted Pauli sums, and the H2 molecule of the
//! paper's Sec. IV-C.

use crate::pauli::{group_commuting, PauliString};

/// A Hermitian operator expressed as a real-weighted sum of Pauli
/// strings.
#[derive(Debug, Clone, PartialEq)]
pub struct Hamiltonian {
    terms: Vec<(PauliString, f64)>,
    num_qubits: usize,
}

impl Hamiltonian {
    /// Builds from `(string, coefficient)` terms.
    ///
    /// # Panics
    ///
    /// Panics if the term list is empty or widths disagree.
    pub fn new(terms: Vec<(PauliString, f64)>) -> Self {
        assert!(!terms.is_empty(), "a Hamiltonian needs at least one term");
        let num_qubits = terms[0].0.num_qubits();
        assert!(
            terms.iter().all(|(p, _)| p.num_qubits() == num_qubits),
            "all terms must act on the same register"
        );
        Hamiltonian { terms, num_qubits }
    }

    /// The weighted terms.
    pub fn terms(&self) -> &[(PauliString, f64)] {
        &self.terms
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Indices of terms partitioned into qubit-wise commuting groups.
    pub fn commuting_groups(&self) -> Vec<Vec<usize>> {
        let strings: Vec<PauliString> = self.terms.iter().map(|(p, _)| p.clone()).collect();
        group_commuting(&strings)
    }
}

/// The two-qubit parity-mapped H2 Hamiltonian at the equilibrium bond
/// length of 0.735 Å (singlet, neutral) — the exact operator the paper
/// uses: five Pauli terms {II, IZ, ZI, ZZ, XX}.
///
/// Coefficients are the standard STO-3G / parity-mapping values (in
/// Hartree) used throughout the VQE literature.
pub fn h2_hamiltonian() -> Hamiltonian {
    let term = |s: &str, c: f64| -> (PauliString, f64) { (s.parse().unwrap(), c) };
    Hamiltonian::new(vec![
        term("II", -1.052373245772859),
        term("IZ", 0.39793742484318045),
        term("ZI", -0.39793742484318045),
        term("ZZ", -0.01128010425623538),
        term("XX", 0.18093119978423156),
    ])
}

/// The exact ground-state energy of [`h2_hamiltonian`] in Hartree,
/// computed analytically (the 4×4 operator block-diagonalizes; the
/// minimum lies in the {|01⟩, |10⟩} block). Used to cross-check the
/// numeric eigensolver.
pub fn h2_exact_ground_energy() -> f64 {
    // In the computational basis the Hamiltonian is
    //   diag(a, b, c, d) + XX off-diagonal couplings,
    // with XX coupling |00⟩↔|11⟩ and |01⟩↔|10⟩.
    let g0 = -1.052373245772859;
    let g1 = 0.39793742484318045; // IZ (Z on qubit 0)
    let g2 = -0.39793742484318045; // ZI (Z on qubit 1)
    let g3 = -0.01128010425623538; // ZZ
    let g4 = 0.18093119978423156; // XX
                                  // Basis order |q1 q0⟩: z0 = ±1 for q0, z1 for q1.
    let diag = |z0: f64, z1: f64| g0 + g1 * z0 + g2 * z1 + g3 * z0 * z1;
    let d00 = diag(1.0, 1.0);
    let d01 = diag(-1.0, 1.0); // q0 = 1
    let d10 = diag(1.0, -1.0);
    let d11 = diag(-1.0, -1.0);
    // Block {00, 11}: eigenvalues (d00+d11)/2 ± sqrt(((d00-d11)/2)^2 + g4^2)
    let e_a = 0.5 * (d00 + d11) - (0.25 * (d00 - d11).powi(2) + g4 * g4).sqrt();
    // Block {01, 10}:
    let e_b = 0.5 * (d01 + d10) - (0.25 * (d01 - d10).powi(2) + g4 * g4).sqrt();
    e_a.min(e_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2_has_five_terms_on_two_qubits() {
        let h = h2_hamiltonian();
        assert_eq!(h.terms().len(), 5);
        assert_eq!(h.num_qubits(), 2);
        let names: Vec<String> = h.terms().iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(names, vec!["II", "IZ", "ZI", "ZZ", "XX"]);
    }

    #[test]
    fn h2_groups_match_paper() {
        let h = h2_hamiltonian();
        let groups = h.commuting_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 4); // {II, IZ, ZI, ZZ}
        assert_eq!(groups[1].len(), 1); // {XX}
    }

    #[test]
    fn exact_ground_energy_value() {
        // Known value for these coefficients: ≈ −1.85727503 Ha.
        let e = h2_exact_ground_energy();
        assert!((e + 1.8572750302023797).abs() < 1e-9, "e = {e}");
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_hamiltonian_panics() {
        Hamiltonian::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "same register")]
    fn mismatched_widths_panic() {
        Hamiltonian::new(vec![
            ("II".parse().unwrap(), 1.0),
            ("Z".parse().unwrap(), 1.0),
        ]);
    }
}
