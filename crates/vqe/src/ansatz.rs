//! The hardware-efficient ansatz of the paper's Sec. IV-C: alternating
//! RyRz rotation layers and CNOT entanglers (Kandala et al. 2017).

use qucp_circuit::Circuit;

/// Number of rotation parameters of the ansatz: `(reps + 1)` rotation
/// layers × 2 gates × `n` qubits.
pub fn parameter_count(n_qubits: usize, reps: usize) -> usize {
    (reps + 1) * 2 * n_qubits
}

/// Builds the hardware-efficient RyRz ansatz.
///
/// Layout: a rotation layer (Ry(θ), Rz(θ) on every qubit), then `reps`
/// times {a linear CNOT entangler, another rotation layer}. With
/// `n_qubits = 2, reps = 2` this is exactly the paper's circuit: 12
/// rotation parameters and 2 CNOTs.
///
/// # Panics
///
/// Panics if `params.len() != parameter_count(n_qubits, reps)`.
pub fn hardware_efficient(n_qubits: usize, reps: usize, params: &[f64]) -> Circuit {
    assert_eq!(
        params.len(),
        parameter_count(n_qubits, reps),
        "expected {} parameters",
        parameter_count(n_qubits, reps)
    );
    let mut c = Circuit::with_name(n_qubits, "ryrz_ansatz");
    let mut p = params.iter();
    let mut rotation_layer = |c: &mut Circuit| {
        for q in 0..n_qubits {
            c.ry(q, *p.next().expect("enough params"));
            c.rz(q, *p.next().expect("enough params"));
        }
    };
    rotation_layer(&mut c);
    for _ in 0..reps {
        for q in 0..n_qubits.saturating_sub(1) {
            c.cx(q, q + 1);
        }
        rotation_layer(&mut c);
    }
    c
}

/// The paper's simplification: every rotation uses the same angle θ
/// ("we set the same value for these parameters each time and regard
/// them as one parameter").
pub fn tied_ansatz(n_qubits: usize, reps: usize, theta: f64) -> Circuit {
    let params = vec![theta; parameter_count(n_qubits, reps)];
    hardware_efficient(n_qubits, reps, &params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_counts() {
        // 2 qubits, 2 reps: 12 parameters, 2 CNOTs.
        assert_eq!(parameter_count(2, 2), 12);
        let c = tied_ansatz(2, 2, 0.5);
        assert_eq!(c.cx_count(), 2);
        assert_eq!(c.gate_count(), 12 + 2);
        assert_eq!(c.width(), 2);
    }

    #[test]
    fn zero_reps_is_single_rotation_layer() {
        let c = tied_ansatz(3, 0, 0.1);
        assert_eq!(c.cx_count(), 0);
        assert_eq!(c.gate_count(), 6);
    }

    #[test]
    fn explicit_parameters_land_in_order() {
        let params: Vec<f64> = (0..12).map(|i| i as f64 * 0.1).collect();
        let c = hardware_efficient(2, 2, &params);
        // First gate is Ry(0.0) on q0, second Rz(0.1) on q0.
        match c.gates()[0] {
            qucp_circuit::Gate::Ry(0, t) => assert!((t - 0.0).abs() < 1e-15),
            ref g => panic!("unexpected first gate {g:?}"),
        }
        match c.gates()[1] {
            qucp_circuit::Gate::Rz(0, t) => assert!((t - 0.1).abs() < 1e-15),
            ref g => panic!("unexpected second gate {g:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "expected 12 parameters")]
    fn wrong_parameter_count_panics() {
        hardware_efficient(2, 2, &[0.0; 5]);
    }

    #[test]
    fn wider_ansatz_uses_linear_entangler() {
        let c = tied_ansatz(4, 1, 0.3);
        assert_eq!(c.cx_count(), 3);
        assert_eq!(c.gate_count(), 16 + 3);
    }
}
