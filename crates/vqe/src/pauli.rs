//! Pauli strings and qubit-wise commutation.

use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauliOp {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl PauliOp {
    /// Whether two single-qubit operators are qubit-wise compatible
    /// (equal, or at least one is the identity).
    pub fn compatible(self, other: PauliOp) -> bool {
        self == PauliOp::I || other == PauliOp::I || self == other
    }
}

/// A tensor product of single-qubit Paulis, e.g. `ZI` or `XX`.
///
/// Internally `ops[q]` is the operator on qubit `q`. The textual form
/// follows the physics convention: the **leftmost** character acts on
/// the **highest** qubit, so `"ZI"` is Z on qubit 1 and I on qubit 0.
///
/// ```
/// use qucp_vqe::{PauliOp, PauliString};
/// let p: PauliString = "ZI".parse().unwrap();
/// assert_eq!(p.op(0), PauliOp::I);
/// assert_eq!(p.op(1), PauliOp::Z);
/// assert_eq!(p.to_string(), "ZI");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    ops: Vec<PauliOp>,
}

/// Error parsing a Pauli string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliError {
    /// The offending character.
    pub found: char,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Pauli character `{}`", self.found)
    }
}

impl std::error::Error for ParsePauliError {}

impl PauliString {
    /// Builds from per-qubit operators (`ops[q]` acts on qubit `q`).
    pub fn new(ops: Vec<PauliOp>) -> Self {
        PauliString { ops }
    }

    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            ops: vec![PauliOp::I; n],
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.ops.len()
    }

    /// The operator on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn op(&self, q: usize) -> PauliOp {
        self.ops[q]
    }

    /// Operators indexed by qubit.
    pub fn ops(&self) -> &[PauliOp] {
        &self.ops
    }

    /// Whether the string is the identity.
    pub fn is_identity(&self) -> bool {
        self.ops.iter().all(|&o| o == PauliOp::I)
    }

    /// Bitmask of qubits with a non-identity operator.
    pub fn support_mask(&self) -> usize {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, &o)| o != PauliOp::I)
            .fold(0usize, |m, (q, _)| m | 1 << q)
    }

    /// Qubit-wise commutation: every qubit's operators are compatible.
    /// Strings in the same measurement group must satisfy this.
    pub fn qubit_wise_commutes(&self, other: &PauliString) -> bool {
        self.ops.len() == other.ops.len()
            && self
                .ops
                .iter()
                .zip(&other.ops)
                .all(|(&a, &b)| a.compatible(b))
    }
}

impl std::str::FromStr for PauliString {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut ops = Vec::with_capacity(s.len());
        // Leftmost char = highest qubit: reverse into qubit order.
        for c in s.chars().rev() {
            ops.push(match c {
                'I' | 'i' => PauliOp::I,
                'X' | 'x' => PauliOp::X,
                'Y' | 'y' => PauliOp::Y,
                'Z' | 'z' => PauliOp::Z,
                found => return Err(ParsePauliError { found }),
            });
        }
        Ok(PauliString { ops })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &op in self.ops.iter().rev() {
            let c = match op {
                PauliOp::I => 'I',
                PauliOp::X => 'X',
                PauliOp::Y => 'Y',
                PauliOp::Z => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Greedily partitions Pauli strings into qubit-wise commuting groups —
/// the simultaneous-measurement grouping of Gokhale et al. that the
/// paper applies to the H2 Hamiltonian (two groups: {II, IZ, ZI, ZZ}
/// and {XX}).
pub fn group_commuting(strings: &[PauliString]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, s) in strings.iter().enumerate() {
        let slot = groups
            .iter_mut()
            .find(|g| g.iter().all(|&j| strings[j].qubit_wise_commutes(s)));
        match slot {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["II", "IZ", "ZI", "ZZ", "XX", "XYZI"] {
            let p: PauliString = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = "ZQ".parse::<PauliString>().unwrap_err();
        assert_eq!(err.found, 'Q');
        assert!(err.to_string().contains('Q'));
    }

    #[test]
    fn indexing_convention() {
        let p: PauliString = "XZ".parse().unwrap();
        assert_eq!(p.op(0), PauliOp::Z); // rightmost char = qubit 0
        assert_eq!(p.op(1), PauliOp::X);
        assert_eq!(p.num_qubits(), 2);
    }

    #[test]
    fn support_mask() {
        let p: PauliString = "IZ".parse().unwrap();
        assert_eq!(p.support_mask(), 0b01);
        let p: PauliString = "ZI".parse().unwrap();
        assert_eq!(p.support_mask(), 0b10);
        let p: PauliString = "XX".parse().unwrap();
        assert_eq!(p.support_mask(), 0b11);
        assert_eq!(PauliString::identity(3).support_mask(), 0);
    }

    #[test]
    fn identity_detection() {
        assert!(PauliString::identity(2).is_identity());
        let p: PauliString = "IZ".parse().unwrap();
        assert!(!p.is_identity());
    }

    #[test]
    fn qwc_relation() {
        let iz: PauliString = "IZ".parse().unwrap();
        let zi: PauliString = "ZI".parse().unwrap();
        let zz: PauliString = "ZZ".parse().unwrap();
        let xx: PauliString = "XX".parse().unwrap();
        assert!(iz.qubit_wise_commutes(&zi));
        assert!(iz.qubit_wise_commutes(&zz));
        assert!(zz.qubit_wise_commutes(&zi));
        assert!(!zz.qubit_wise_commutes(&xx));
        assert!(!iz.qubit_wise_commutes(&xx));
        // Identity commutes with everything.
        let ii = PauliString::identity(2);
        assert!(ii.qubit_wise_commutes(&xx));
        assert!(ii.qubit_wise_commutes(&zz));
    }

    #[test]
    fn h2_grouping_gives_two_groups() {
        let strings: Vec<PauliString> = ["II", "IZ", "ZI", "ZZ", "XX"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let groups = group_commuting(&strings);
        assert_eq!(groups.len(), 2, "paper: two commuting groups");
        // II joins the first group; XX stands alone.
        assert_eq!(groups[0], vec![0, 1, 2, 3]);
        assert_eq!(groups[1], vec![4]);
    }

    #[test]
    fn grouping_of_disjoint_supports() {
        let strings: Vec<PauliString> = ["XI", "IX", "ZZ"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let groups = group_commuting(&strings);
        // XI and IX commute qubit-wise; ZZ clashes with both.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 1]);
    }
}
