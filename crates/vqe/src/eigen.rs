//! Dense Hermitian eigensolver for small qubit Hamiltonians — the
//! "theory" reference of the paper's Table III (they use SciPy's
//! eigensolver; we implement Jacobi rotations on the real symmetric
//! embedding of the Hermitian matrix).

use qucp_sim::math::Complex;

use crate::hamiltonian::Hamiltonian;
use crate::pauli::PauliOp;

/// Builds the dense `2^n × 2^n` matrix of a Hamiltonian
/// (row-major, little-endian basis indexing).
#[allow(clippy::needless_range_loop)] // the column index doubles as the basis state
pub fn dense_matrix(h: &Hamiltonian) -> Vec<Vec<Complex>> {
    let n = h.num_qubits();
    let dim = 1usize << n;
    let mut m = vec![vec![Complex::zero(); dim]; dim];
    for (pauli, coeff) in h.terms() {
        // Each Pauli string maps basis state |col⟩ to phase·|row⟩.
        for col in 0..dim {
            let mut row = col;
            let mut phase = Complex::real(*coeff);
            for q in 0..n {
                let bit = col >> q & 1;
                match pauli.op(q) {
                    PauliOp::I => {}
                    PauliOp::X => row ^= 1 << q,
                    PauliOp::Y => {
                        row ^= 1 << q;
                        // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
                        phase *= if bit == 0 {
                            Complex::i()
                        } else {
                            -Complex::i()
                        };
                    }
                    PauliOp::Z => {
                        if bit == 1 {
                            phase = -phase;
                        }
                    }
                }
            }
            m[row][col] += phase;
        }
    }
    m
}

/// All eigenvalues of a Hermitian matrix, ascending.
///
/// Uses cyclic Jacobi on the real symmetric embedding
/// `[[Re H, −Im H], [Im H, Re H]]`, whose spectrum is that of `H` with
/// every eigenvalue doubled.
///
/// # Panics
///
/// Panics if the matrix is empty or not square.
#[allow(clippy::needless_range_loop)] // block-embedding reads clearer with indices
pub fn hermitian_eigenvalues(m: &[Vec<Complex>]) -> Vec<f64> {
    let dim = m.len();
    assert!(dim > 0, "matrix must be non-empty");
    assert!(m.iter().all(|r| r.len() == dim), "matrix must be square");
    let n = 2 * dim;
    let mut a = vec![vec![0.0f64; n]; n];
    for i in 0..dim {
        for j in 0..dim {
            a[i][j] = m[i][j].re;
            a[i + dim][j + dim] = m[i][j].re;
            a[i + dim][j] = m[i][j].im;
            a[i][j + dim] = -m[i][j].im;
        }
    }
    jacobi_eigenvalues(&mut a);
    let mut eig: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
    eig.sort_by(f64::total_cmp);
    // Keep every other one (eigenvalues come in duplicated pairs).
    eig.into_iter().step_by(2).collect()
}

/// The smallest eigenvalue (ground-state energy) of a Hamiltonian.
pub fn ground_state_energy(h: &Hamiltonian) -> f64 {
    let m = dense_matrix(h);
    hermitian_eigenvalues(&m)[0]
}

/// In-place cyclic Jacobi diagonalization of a real symmetric matrix.
#[allow(clippy::needless_range_loop)] // index loops mirror the textbook rotations
fn jacobi_eigenvalues(a: &mut [Vec<f64>]) {
    let n = a.len();
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-22 {
            return;
        }
        for p in 0..n {
            for q in p + 1..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::{h2_exact_ground_energy, h2_hamiltonian};
    use crate::pauli::PauliString;
    use crate::Hamiltonian as H;

    #[test]
    fn pauli_z_matrix() {
        let h = H::new(vec![("Z".parse::<PauliString>().unwrap(), 1.0)]);
        let m = dense_matrix(&h);
        assert!(m[0][0].approx_eq(Complex::one(), 1e-14));
        assert!(m[1][1].approx_eq(Complex::real(-1.0), 1e-14));
        assert!(m[0][1].approx_eq(Complex::zero(), 1e-14));
    }

    #[test]
    fn pauli_x_matrix() {
        let h = H::new(vec![("X".parse::<PauliString>().unwrap(), 2.0)]);
        let m = dense_matrix(&h);
        assert!(m[0][1].approx_eq(Complex::real(2.0), 1e-14));
        assert!(m[1][0].approx_eq(Complex::real(2.0), 1e-14));
    }

    #[test]
    fn pauli_y_matrix() {
        let h = H::new(vec![("Y".parse::<PauliString>().unwrap(), 1.0)]);
        let m = dense_matrix(&h);
        // Y = [[0, -i], [i, 0]].
        assert!(m[1][0].approx_eq(Complex::i(), 1e-14));
        assert!(m[0][1].approx_eq(-Complex::i(), 1e-14));
    }

    #[test]
    fn single_qubit_eigenvalues() {
        for s in ["X", "Y", "Z"] {
            let h = H::new(vec![(s.parse::<PauliString>().unwrap(), 1.0)]);
            let eig = hermitian_eigenvalues(&dense_matrix(&h));
            assert_eq!(eig.len(), 2);
            assert!((eig[0] + 1.0).abs() < 1e-10, "{s}: {eig:?}");
            assert!((eig[1] - 1.0).abs() < 1e-10, "{s}: {eig:?}");
        }
    }

    #[test]
    fn zz_spectrum() {
        let h = H::new(vec![("ZZ".parse::<PauliString>().unwrap(), 1.0)]);
        let eig = hermitian_eigenvalues(&dense_matrix(&h));
        assert_eq!(eig.len(), 4);
        assert!((eig[0] + 1.0).abs() < 1e-10);
        assert!((eig[3] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn h2_ground_energy_matches_analytic() {
        let numeric = ground_state_energy(&h2_hamiltonian());
        let exact = h2_exact_ground_energy();
        assert!(
            (numeric - exact).abs() < 1e-8,
            "numeric {numeric} vs analytic {exact}"
        );
    }

    #[test]
    fn identity_shifts_spectrum() {
        let h = H::new(vec![
            ("Z".parse::<PauliString>().unwrap(), 1.0),
            ("I".parse::<PauliString>().unwrap(), 5.0),
        ]);
        let eig = hermitian_eigenvalues(&dense_matrix(&h));
        assert!((eig[0] - 4.0).abs() < 1e-10);
        assert!((eig[1] - 6.0).abs() < 1e-10);
    }

    #[test]
    fn xx_plus_zz_spectrum() {
        // H = XX + ZZ has eigenvalues {−2? } — check against known:
        // eigenvalues of XX+ZZ are {2, 0, 0, -2}.
        let h = H::new(vec![
            ("XX".parse::<PauliString>().unwrap(), 1.0),
            ("ZZ".parse::<PauliString>().unwrap(), 1.0),
        ]);
        let mut eig = hermitian_eigenvalues(&dense_matrix(&h));
        eig.sort_by(f64::total_cmp);
        assert!((eig[0] + 2.0).abs() < 1e-9, "{eig:?}");
        assert!(eig[1].abs() < 1e-9);
        assert!(eig[2].abs() < 1e-9);
        assert!((eig[3] - 2.0).abs() < 1e-9);
    }
}
