//! Simultaneous measurement of qubit-wise commuting Pauli groups:
//! basis-rotation circuits and energy estimation from counts.

use qucp_circuit::Circuit;
use qucp_sim::Counts;

use crate::hamiltonian::Hamiltonian;
use crate::pauli::{PauliOp, PauliString};

/// The measurement basis of one qubit within a commuting group.
fn group_basis(strings: &[&PauliString], qubit: usize) -> PauliOp {
    for s in strings {
        match s.op(qubit) {
            PauliOp::I => continue,
            op => return op,
        }
    }
    PauliOp::Z
}

/// Appends the basis rotations that map the group's common eigenbasis
/// onto the computational basis: `H` for X, `S† H` for Y, nothing for
/// Z/I. Returns the full measurement circuit.
///
/// # Panics
///
/// Panics if the strings do not share the ansatz register width.
pub fn measurement_circuit(ansatz: &Circuit, strings: &[&PauliString]) -> Circuit {
    let n = ansatz.width();
    assert!(
        strings.iter().all(|s| s.num_qubits() == n),
        "Pauli strings must match the ansatz width"
    );
    let mut c = ansatz.clone();
    for q in 0..n {
        match group_basis(strings, q) {
            PauliOp::X => {
                c.h(q);
            }
            PauliOp::Y => {
                c.sdg(q).h(q);
            }
            PauliOp::Z | PauliOp::I => {}
        }
    }
    c
}

/// Expectation of a Pauli string from counts measured in the group's
/// rotated basis: the Z-parity over the string's support.
pub fn expectation_from_counts(counts: &Counts, string: &PauliString) -> f64 {
    counts.expectation_z(string.support_mask())
}

/// Expectation from exact outcome probabilities (noiseless baseline).
pub fn expectation_from_probabilities(probs: &[f64], string: &PauliString) -> f64 {
    let mask = string.support_mask();
    probs
        .iter()
        .enumerate()
        .map(|(idx, &p)| {
            let parity = (idx & mask).count_ones() % 2;
            if parity == 0 {
                p
            } else {
                -p
            }
        })
        .sum()
}

/// The energy contribution of one commuting group from its measured
/// counts: `Σ c_P ⟨P⟩`.
pub fn group_energy(h: &Hamiltonian, group: &[usize], counts: &Counts) -> f64 {
    group
        .iter()
        .map(|&i| {
            let (p, c) = &h.terms()[i];
            c * expectation_from_counts(counts, p)
        })
        .sum()
}

/// The energy contribution of one group from exact probabilities.
pub fn group_energy_exact(h: &Hamiltonian, group: &[usize], probs: &[f64]) -> f64 {
    group
        .iter()
        .map(|&i| {
            let (p, c) = &h.terms()[i];
            c * expectation_from_probabilities(probs, p)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::tied_ansatz;
    use crate::hamiltonian::h2_hamiltonian;
    use qucp_circuit::Gate;
    use qucp_sim::noiseless_probabilities;

    #[test]
    fn z_group_needs_no_rotation() {
        let ansatz = tied_ansatz(2, 2, 0.3);
        let strings: Vec<PauliString> = ["II", "IZ", "ZI", "ZZ"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let refs: Vec<&PauliString> = strings.iter().collect();
        let mc = measurement_circuit(&ansatz, &refs);
        assert_eq!(mc.gate_count(), ansatz.gate_count());
    }

    #[test]
    fn x_group_appends_hadamards() {
        let ansatz = tied_ansatz(2, 2, 0.3);
        let xx: PauliString = "XX".parse().unwrap();
        let mc = measurement_circuit(&ansatz, &[&xx]);
        assert_eq!(mc.gate_count(), ansatz.gate_count() + 2);
        let tail = &mc.gates()[mc.gate_count() - 2..];
        assert!(matches!(tail[0], Gate::H(_)));
        assert!(matches!(tail[1], Gate::H(_)));
    }

    #[test]
    fn y_basis_rotation() {
        let ansatz = Circuit::new(1);
        let y: PauliString = "Y".parse().unwrap();
        let mc = measurement_circuit(&ansatz, &[&y]);
        assert_eq!(mc.gates(), &[Gate::Sdg(0), Gate::H(0)]);
    }

    #[test]
    fn expectation_of_plus_state_x() {
        // |+⟩ measured in the X basis: rotated by H, outcome always 0,
        // so ⟨X⟩ = +1.
        let mut plus = Circuit::new(1);
        plus.h(0);
        let x: PauliString = "X".parse().unwrap();
        let mc = measurement_circuit(&plus, &[&x]);
        let probs = noiseless_probabilities(&mc);
        assert!((expectation_from_probabilities(&probs, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_zero_state_z() {
        let c = Circuit::new(1);
        let z: PauliString = "Z".parse().unwrap();
        let probs = noiseless_probabilities(&c);
        assert!((expectation_from_probabilities(&probs, &z) - 1.0).abs() < 1e-12);
        // |1⟩ gives −1.
        let mut c1 = Circuit::new(1);
        c1.x(0);
        let probs1 = noiseless_probabilities(&c1);
        assert!((expectation_from_probabilities(&probs1, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_term_contributes_its_coefficient() {
        let h = h2_hamiltonian();
        let mut counts = Counts::new(2);
        counts.record(0);
        // Group 0 contains II with coefficient −1.0523…; measuring |00⟩
        // gives ⟨IZ⟩ = ⟨ZI⟩ = ⟨ZZ⟩ = +1.
        let e = group_energy(&h, &[0, 1, 2, 3], &counts);
        let expected =
            -1.052373245772859 + 0.39793742484318045 - 0.39793742484318045 - 0.01128010425623538;
        assert!((e - expected).abs() < 1e-12);
    }

    #[test]
    fn counts_and_probability_expectations_agree() {
        let zz: PauliString = "ZZ".parse().unwrap();
        let mut counts = Counts::new(2);
        for _ in 0..3 {
            counts.record(0b00);
        }
        counts.record(0b01);
        let from_counts = expectation_from_counts(&counts, &zz);
        let probs = counts.distribution();
        let from_probs = expectation_from_probabilities(&probs, &zz);
        assert!((from_counts - from_probs).abs() < 1e-12);
        assert!((from_counts - 0.5).abs() < 1e-12);
    }
}
