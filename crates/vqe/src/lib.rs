//! # qucp-vqe
//!
//! The Variational Quantum Eigensolver substrate of the paper's
//! Sec. IV-C: the parity-mapped H2 Hamiltonian (five Pauli terms),
//! qubit-wise-commuting measurement grouping (PG), the RyRz
//! hardware-efficient ansatz, energy estimation from counts, an exact
//! Hermitian eigensolver for the theory reference, and the
//! Table III / Fig. 5 experiment runner comparing independent (PG)
//! against parallel (QuCP + PG) measurement execution.
//!
//! ```
//! use qucp_vqe::{h2_hamiltonian, ground_state_energy};
//!
//! let h = h2_hamiltonian();
//! assert_eq!(h.commuting_groups().len(), 2);
//! let e = ground_state_energy(&h);
//! assert!((e + 1.857275).abs() < 1e-4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ansatz;
mod campaign;
mod eigen;
mod error;
mod hamiltonian;
mod measurement;
mod pauli;
mod runner;

pub use ansatz::{hardware_efficient, parameter_count, tied_ansatz};
pub use campaign::{VqeCampaign, VqeCampaignOutput};
pub use eigen::{dense_matrix, ground_state_energy, hermitian_eigenvalues};
pub use error::VqeError;
pub use hamiltonian::{h2_exact_ground_energy, h2_hamiltonian, Hamiltonian};
pub use measurement::{
    expectation_from_counts, expectation_from_probabilities, group_energy, group_energy_exact,
    measurement_circuit,
};
pub use pauli::{group_commuting, ParsePauliError, PauliOp, PauliString};
pub use runner::{run_h2_experiment, VqeExperiment, VqePoint, VqeReport};
