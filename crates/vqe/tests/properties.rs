//! Property-based tests for Pauli algebra, the eigensolver, and energy
//! estimation.

use proptest::prelude::*;
use qucp_circuit::Circuit;
use qucp_sim::noiseless_probabilities;
use qucp_vqe::{
    dense_matrix, expectation_from_probabilities, group_commuting, hermitian_eigenvalues,
    tied_ansatz, Hamiltonian, PauliOp, PauliString,
};

fn arb_pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0u8..4, n).prop_map(|ops| {
        PauliString::new(
            ops.into_iter()
                .map(|o| match o {
                    0 => PauliOp::I,
                    1 => PauliOp::X,
                    2 => PauliOp::Y,
                    _ => PauliOp::Z,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_display_round_trip(p in arb_pauli_string(4)) {
        let round: PauliString = p.to_string().parse().unwrap();
        prop_assert_eq!(round, p);
    }

    #[test]
    fn qwc_is_symmetric_and_reflexive(a in arb_pauli_string(3), b in arb_pauli_string(3)) {
        prop_assert!(a.qubit_wise_commutes(&a));
        prop_assert_eq!(a.qubit_wise_commutes(&b), b.qubit_wise_commutes(&a));
    }

    #[test]
    fn grouping_covers_all_and_is_internally_commuting(
        strings in proptest::collection::vec(arb_pauli_string(3), 1..12)
    ) {
        let groups = group_commuting(&strings);
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, strings.len());
        for g in &groups {
            for (i, &a) in g.iter().enumerate() {
                for &b in &g[i + 1..] {
                    prop_assert!(strings[a].qubit_wise_commutes(&strings[b]));
                }
            }
        }
    }

    #[test]
    fn eigenvalues_bound_pauli_expectations(
        p in arb_pauli_string(2),
        coeff in -3.0..3.0f64,
    ) {
        // A single-term Hamiltonian c·P has spectrum {−|c|, …, +|c|}
        // (or exactly {c} when P = I).
        let h = Hamiltonian::new(vec![(p.clone(), coeff)]);
        let eig = hermitian_eigenvalues(&dense_matrix(&h));
        for &e in &eig {
            prop_assert!(e >= -coeff.abs() - 1e-9);
            prop_assert!(e <= coeff.abs() + 1e-9);
        }
        if p.is_identity() {
            for &e in &eig {
                prop_assert!((e - coeff).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn trace_of_non_identity_pauli_matrix_is_zero(p in arb_pauli_string(2)) {
        prop_assume!(!p.is_identity());
        let h = Hamiltonian::new(vec![(p, 1.0)]);
        let m = dense_matrix(&h);
        let mut tr = qucp_sim::math::Complex::zero();
        for (i, row) in m.iter().enumerate() {
            tr += row[i];
        }
        prop_assert!(tr.abs() < 1e-9);
    }

    #[test]
    fn z_expectations_bounded(theta in -3.2..3.2f64, mask in 0usize..4) {
        let ansatz: Circuit = tied_ansatz(2, 2, theta);
        let probs = noiseless_probabilities(&ansatz);
        let p = PauliString::new(
            (0..2)
                .map(|q| if mask >> q & 1 == 1 { PauliOp::Z } else { PauliOp::I })
                .collect(),
        );
        let e = expectation_from_probabilities(&probs, &p);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
        if p.is_identity() {
            prop_assert!((e - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn variational_energy_at_least_ground(theta in -3.2..3.2f64) {
        // Noiseless ansatz energy must respect the variational principle.
        use qucp_vqe::{ground_state_energy, h2_hamiltonian, measurement_circuit, group_energy_exact};
        let h = h2_hamiltonian();
        let groups = h.commuting_groups();
        let ansatz = tied_ansatz(2, 2, theta);
        let mut energy = 0.0;
        for group in &groups {
            let strings: Vec<&PauliString> = group.iter().map(|&i| &h.terms()[i].0).collect();
            let mc = measurement_circuit(&ansatz, &strings);
            let probs = noiseless_probabilities(&mc);
            energy += group_energy_exact(&h, group, &probs);
        }
        let ground = ground_state_energy(&h);
        prop_assert!(energy >= ground - 1e-9, "E(θ) = {energy} below ground {ground}");
    }
}
