//! Shared runtime configuration and error types, plus the legacy
//! one-shot [`BatchScheduler`] — now a thin deprecated wrapper over the
//! event-driven [`Service`](crate::Service).

use std::error::Error;
use std::fmt;

use qucp_core::queue::QueueStats;
use qucp_core::{CoreError, Strategy};
use qucp_device::Device;
use qucp_sim::{ShotParallelism, TrajectoryKernel};

use crate::job::{Job, JobResult};
use crate::service::{JobRequest, Service};

/// How the programs of a planned batch are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One scoped thread per program (the default).
    #[default]
    Concurrent,
    /// In program order on the calling thread. Exists to assert that
    /// concurrent execution is deterministic: both modes must produce
    /// bit-for-bit identical reports.
    Serial,
}

/// Base runtime configuration shared by the [`Service`] (as builder
/// defaults) and the legacy [`BatchScheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Hard cap on jobs per batch (1 = dedicated mode).
    pub max_parallel: usize,
    /// Default EFS fidelity-threshold gate (Fig. 4). `None` disables
    /// the gate for jobs without a per-job override.
    pub fidelity_threshold: Option<f64>,
    /// Base RNG seed; batch `b`, program `i` derive their trajectory
    /// seeds from `(seed, b, i)` only.
    pub seed: u64,
    /// Run the cancellation peephole pass before mapping.
    pub optimize: bool,
    /// Concurrent or serial per-batch execution.
    pub mode: ExecutionMode,
    /// Intra-program shot parallelism: how each program's trajectory
    /// loop spreads its shots over worker threads, layered *under* the
    /// per-batch concurrency of [`ExecutionMode`]. Sharded counts are
    /// deterministic in the shard count, never the thread count; the
    /// serial default keeps every report bit-for-bit identical to the
    /// pre-sharding runtime.
    pub shot_parallelism: ShotParallelism,
    /// Default per-shot trajectory algorithm (see
    /// [`TrajectoryKernel`]). The [`Replay`] default keeps every
    /// report bit-for-bit identical to the pre-kernel runtime;
    /// [`SurvivalSkip`] trades that historical stream for much cheaper
    /// shots while sampling the identical distribution.
    ///
    /// [`Replay`]: TrajectoryKernel::Replay
    /// [`SurvivalSkip`]: TrajectoryKernel::SurvivalSkip
    pub trajectory_kernel: TrajectoryKernel,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_parallel: 4,
            fidelity_threshold: None,
            seed: 0x5EED,
            optimize: true,
            mode: ExecutionMode::Concurrent,
            shot_parallelism: ShotParallelism::Serial,
            trajectory_kernel: TrajectoryKernel::Replay,
        }
    }
}

/// Why a recalibration snapshot was rejected (see
/// [`RuntimeError::InvalidCalibration`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationFault {
    /// The snapshot contains a NaN or infinite entry (error rate,
    /// duration or coherence time).
    NonFinite,
    /// The snapshot calibrates a different number of qubits than the
    /// device has.
    QubitCountMismatch {
        /// Qubits the device has.
        expected: usize,
        /// Qubits the snapshot calibrates.
        got: usize,
    },
    /// The snapshot is missing entries for links of the device's
    /// coupling topology.
    MissingLinks,
}

impl fmt::Display for CalibrationFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationFault::NonFinite => write!(f, "non-finite entries"),
            CalibrationFault::QubitCountMismatch { expected, got } => {
                write!(f, "calibrates {got} qubits, device has {expected}")
            }
            CalibrationFault::MissingLinks => {
                write!(f, "missing entries for links of the device topology")
            }
        }
    }
}

/// Errors of the scheduling runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// `max_parallel` was zero.
    ZeroParallel,
    /// The service was built without any registered device.
    NoDevices,
    /// A job (or the service default) requested zero measurement shots.
    ZeroShots,
    /// A submitted circuit had zero width — nothing to place.
    EmptyCircuit,
    /// A time input failed its context's finiteness contract. The
    /// contract is deliberately asymmetric: **job arrivals must be
    /// finite** (an arrival is a timestamp that enters waiting-time
    /// arithmetic), while **tick horizons only reject NaN** — a horizon
    /// is a comparison bound, so `+∞` means "drain everything pending"
    /// and `−∞` is a valid no-op (see
    /// [`Service::tick`](crate::Service::tick)).
    NonFiniteTime {
        /// The offending value.
        value: f64,
    },
    /// A fidelity threshold was NaN, infinite or negative.
    InvalidThreshold {
        /// The offending value.
        value: f64,
    },
    /// A recalibration snapshot was rejected before it could reach the
    /// device (and poison the planning caches): it carried non-finite
    /// entries or did not match the device's topology.
    InvalidCalibration {
        /// Name of the device the snapshot was meant for.
        device: String,
        /// What disqualified the snapshot.
        fault: CalibrationFault,
    },
    /// One `advance_drift` call would schedule more steps than the
    /// per-advance bound — almost always a clock-unit mismatch or a
    /// degenerate drift interval. The drift trajectory is a pure
    /// function of every step, so runaway advances are refused (state
    /// untouched) rather than truncated. See
    /// [`MAX_DRIFT_STEPS_PER_ADVANCE`](crate::MAX_DRIFT_STEPS_PER_ADVANCE).
    DriftHorizonTooFar {
        /// Steps the advance would have to apply per device.
        steps: u64,
        /// The per-advance bound.
        max: u64,
    },
    /// A single job cannot be placed on any registered device even
    /// alone.
    JobUnplaceable {
        /// The job's identifier.
        job_id: u64,
        /// The planning error that rejected it.
        source: CoreError,
    },
    /// A planning or execution stage failed.
    Core(CoreError),
    /// Internal invariant violation: the pending store's indexes
    /// disagree about a job that must exist. Surfacing the typed error
    /// instead of panicking keeps a corrupted queue diagnosable from a
    /// daemon client; it indicates a runtime bug, never caller misuse.
    QueueCorrupted {
        /// Submission index of the job that vanished from the store.
        seq: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ZeroParallel => write!(f, "max_parallel must be positive"),
            RuntimeError::NoDevices => write!(f, "at least one device must be registered"),
            RuntimeError::ZeroShots => write!(f, "shot budget must be positive"),
            RuntimeError::EmptyCircuit => write!(f, "cannot schedule a zero-width circuit"),
            RuntimeError::NonFiniteTime { value } => {
                write!(
                    f,
                    "invalid time {value}: arrivals must be finite; tick horizons may be \
                     +inf (drain) or -inf (no-op) but never NaN"
                )
            }
            RuntimeError::InvalidThreshold { value } => {
                write!(f, "fidelity threshold must be finite and >= 0, got {value}")
            }
            RuntimeError::InvalidCalibration { device, fault } => {
                write!(f, "recalibration of {device} rejected: {fault}")
            }
            RuntimeError::DriftHorizonTooFar { steps, max } => {
                write!(
                    f,
                    "advance_drift would apply {steps} steps per device (bound: {max}); \
                     check the drift interval against the clock unit"
                )
            }
            RuntimeError::JobUnplaceable { job_id, source } => {
                write!(f, "job {job_id} cannot be placed: {source}")
            }
            RuntimeError::Core(e) => write!(f, "pipeline failed: {e}"),
            RuntimeError::QueueCorrupted { seq } => {
                write!(
                    f,
                    "pending queue corrupted: job seq {seq} vanished from the store"
                )
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::JobUnplaceable { source, .. } => Some(source),
            RuntimeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

/// One dispatched batch of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Batch position in dispatch order.
    pub batch_index: usize,
    /// Name of the device that executed the batch.
    pub device: String,
    /// Ids of the jobs the batch carried, in program order.
    pub job_ids: Vec<u64>,
    /// Simulated start time (ns).
    pub start: f64,
    /// Simulated completion time (ns): start + merged makespan.
    pub completion: f64,
    /// Merged-schedule makespan of the batch (ns).
    pub makespan: f64,
    /// Physical qubits the batch occupied.
    pub used_qubits: usize,
    /// Cross-program one-hop CNOT overlaps in the merged schedule.
    pub conflict_count: usize,
}

/// The complete outcome of serving a job stream (legacy shape; the
/// [`ServiceReport`](crate::ServiceReport) adds per-device stats and
/// the event log).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Queue statistics, directly comparable with
    /// [`simulate_queue`](qucp_core::queue::simulate_queue) (times in
    /// ns).
    pub stats: QueueStats,
    /// Every dispatched batch, in order.
    pub batches: Vec<BatchReport>,
    /// Per-job results, in input order.
    pub job_results: Vec<JobResult>,
}

/// The legacy one-shot entry point: FIFO service of a pre-collected job
/// slice on a single device.
///
/// Since the service redesign this is a compatibility veneer: it pins
/// the refactor by reproducing the seed scheduler's output bit-for-bit
/// through `Service` + `Fifo` + a single registered device. New code
/// should build a [`Service`](crate::Service) directly.
#[derive(Debug)]
pub struct BatchScheduler {
    device: Device,
    strategy: Strategy,
    cfg: RuntimeConfig,
}

impl BatchScheduler {
    /// Creates a scheduler for `device` running every batch under
    /// `strategy`.
    pub fn new(device: Device, strategy: Strategy, cfg: RuntimeConfig) -> Self {
        BatchScheduler {
            device,
            strategy,
            cfg,
        }
    }

    /// The device this scheduler dispatches to.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Serves `jobs` to completion and reports queue statistics plus
    /// per-job results, exactly as the pre-service scheduler did:
    /// strict FIFO admission, head-only EFS gate, one device.
    ///
    /// Deterministic: the report depends only on the jobs and the
    /// configuration (including seed), never on thread timing.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ZeroParallel`] on a zero batch cap;
    /// [`RuntimeError::JobUnplaceable`] when a job cannot run even in a
    /// dedicated batch; [`RuntimeError::Core`] on backend failures. The
    /// service-era validations also apply: zero-shot jobs and
    /// non-finite arrivals are rejected with typed errors instead of
    /// misbehaving downstream.
    #[deprecated(
        since = "0.1.0",
        note = "build a qucp_runtime::Service (ServiceBuilder) instead; this wrapper only covers \
                FIFO admission on a single device"
    )]
    pub fn run(&self, jobs: &[Job]) -> Result<RunReport, RuntimeError> {
        let mut service = Service::builder()
            .device(self.device.clone())
            .strategy(self.strategy.clone())
            .config(self.cfg.clone())
            .build()?;
        for job in jobs {
            service.submit(JobRequest::from_job(job))?;
        }
        let report = service.run_until_drained()?;
        Ok(RunReport {
            stats: report.stats,
            batches: report.batches,
            job_results: report.job_results,
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::job::synthetic_jobs;
    use qucp_core::strategy;
    use qucp_device::ibm;

    fn quick_cfg(max_parallel: usize, mode: ExecutionMode) -> RuntimeConfig {
        RuntimeConfig {
            max_parallel,
            fidelity_threshold: None,
            seed: 42,
            optimize: true,
            mode,
            ..RuntimeConfig::default()
        }
    }

    fn sched(max_parallel: usize, mode: ExecutionMode) -> BatchScheduler {
        BatchScheduler::new(
            ibm::toronto(),
            strategy::qucp(4.0),
            quick_cfg(max_parallel, mode),
        )
    }

    fn small_jobs(n: usize) -> Vec<Job> {
        synthetic_jobs(n, 200.0, 128, 7)
    }

    #[test]
    fn serves_every_job_exactly_once() {
        let jobs = small_jobs(8);
        let report = sched(3, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert_eq!(report.job_results.len(), 8);
        for (i, r) in report.job_results.iter().enumerate() {
            assert_eq!(r.job_id, i as u64);
            assert_eq!(r.result.counts.shots(), 128);
            assert!(r.waiting >= 0.0);
            assert!(r.turnaround >= r.waiting);
        }
        let batched: usize = report.batches.iter().map(|b| b.job_ids.len()).sum();
        assert_eq!(batched, 8);
    }

    #[test]
    fn dedicated_mode_runs_one_job_per_batch() {
        let jobs = small_jobs(5);
        let report = sched(1, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert_eq!(report.stats.batches, 5);
        assert!(report.batches.iter().all(|b| b.job_ids.len() == 1));
    }

    #[test]
    fn concurrent_equals_serial_bit_for_bit() {
        let jobs = small_jobs(9);
        let conc = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        let serial = sched(4, ExecutionMode::Serial).run(&jobs).unwrap();
        assert_eq!(conc, serial);
    }

    #[test]
    fn concurrent_run_is_reproducible() {
        let jobs = small_jobs(10);
        let a = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        let b = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn packing_beats_dedicated_turnaround() {
        let jobs = small_jobs(12);
        let solo = sched(1, ExecutionMode::Concurrent).run(&jobs).unwrap();
        let packed = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert!(
            packed.stats.mean_turnaround < solo.stats.mean_turnaround,
            "packed {} !< dedicated {}",
            packed.stats.mean_turnaround,
            solo.stats.mean_turnaround
        );
        assert!(packed.stats.batches < solo.stats.batches);
        assert!(packed.stats.mean_throughput > solo.stats.mean_throughput);
    }

    #[test]
    fn zero_parallel_is_rejected() {
        let jobs = small_jobs(2);
        let err = sched(0, ExecutionMode::Concurrent).run(&jobs).unwrap_err();
        assert!(matches!(err, RuntimeError::ZeroParallel));
    }

    #[test]
    fn oversized_job_is_unplaceable() {
        let mut jobs = small_jobs(1);
        jobs[0].circuit = qucp_circuit::Circuit::new(64);
        let err = sched(2, ExecutionMode::Concurrent).run(&jobs).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::JobUnplaceable { job_id: 0, .. }
        ));
    }

    #[test]
    fn oversized_job_is_unplaceable_with_threshold_gate_too() {
        // The threshold probe runs before packing; the error contract
        // must not change when the gate is on.
        let mut cfg = quick_cfg(4, ExecutionMode::Concurrent);
        cfg.fidelity_threshold = Some(0.1);
        let mut jobs = small_jobs(1);
        jobs[0].circuit = qucp_circuit::Circuit::new(64);
        let err = BatchScheduler::new(ibm::toronto(), strategy::qucp(4.0), cfg)
            .run(&jobs)
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::JobUnplaceable { job_id: 0, .. }
        ));
    }

    #[test]
    fn fidelity_threshold_zero_degenerates_to_dedicated() {
        let mut cfg = quick_cfg(4, ExecutionMode::Concurrent);
        cfg.fidelity_threshold = Some(0.0);
        let s = BatchScheduler::new(ibm::toronto(), strategy::qucp(4.0), cfg);
        // A homogeneous burst: every batch head admits exactly one copy
        // under a zero threshold (paper: "when the fidelity threshold is
        // zero … only one circuit is executed each time").
        let jobs = small_jobs(4);
        let report = s.run(&jobs).unwrap();
        assert_eq!(report.stats.batches, 4);
    }

    #[test]
    fn late_arrivals_wait_for_their_turn() {
        let mut jobs = small_jobs(2);
        // Second job arrives long after the first batch would finish.
        jobs[1].arrival = 1e9;
        let report = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert_eq!(report.stats.batches, 2);
        assert_eq!(report.job_results[1].waiting, 0.0);
        assert!(report.batches[1].start >= 1e9);
    }

    #[test]
    fn zero_shot_jobs_are_rejected_with_typed_error() {
        let mut jobs = small_jobs(1);
        jobs[0].shots = 0;
        let err = sched(2, ExecutionMode::Concurrent).run(&jobs).unwrap_err();
        assert!(matches!(err, RuntimeError::ZeroShots));
    }

    #[test]
    fn non_finite_arrivals_are_rejected_with_typed_error() {
        let mut jobs = small_jobs(1);
        jobs[0].arrival = f64::NAN;
        let err = sched(2, ExecutionMode::Concurrent).run(&jobs).unwrap_err();
        assert!(matches!(err, RuntimeError::NonFiniteTime { .. }));
    }
}
